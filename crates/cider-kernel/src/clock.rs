//! Virtual time.
//!
//! The simulator never reads the host clock: every kernel operation
//! *charges* virtual nanoseconds to the [`VirtualClock`], scaled by the
//! active [`DeviceProfile`](crate::profile::DeviceProfile). Benchmarks
//! measure elapsed virtual time, which makes every experiment exactly
//! reproducible and lets one host machine model two different devices
//! (the Nexus 7 and the iPad mini).

use std::fmt;

use cider_trace::{CounterId, Metrics};

/// Name of the counter tracking individual clock charges.
pub const CHARGES_COUNTER: &str = "clock/charges";
/// Name of the counter accumulating total charged nanoseconds.
pub const ADVANCED_NS_COUNTER: &str = "clock/advanced_ns";

/// A monotonically increasing virtual clock, in nanoseconds.
///
/// The clock keeps its own [`Metrics`] registry so tests and reports can
/// ask *how* time accrued (`clock/charges`, `clock/advanced_ns`) by
/// name, the same way every other subsystem's counters are read. The
/// two counters are registered once at construction; every
/// [`VirtualClock::advance`] — the single hottest operation in the
/// simulator — updates them through [`CounterId`]s, with no by-name
/// map walk on the charge path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualClock {
    now_ns: u64,
    metrics: Metrics,
    charges: CounterId,
    advanced_ns: CounterId,
}

impl Default for VirtualClock {
    fn default() -> VirtualClock {
        VirtualClock::new()
    }
}

impl VirtualClock {
    /// A clock starting at zero.
    pub fn new() -> VirtualClock {
        let mut metrics = Metrics::new();
        let charges = metrics.register_counter(CHARGES_COUNTER);
        let advanced_ns = metrics.register_counter(ADVANCED_NS_COUNTER);
        VirtualClock {
            now_ns: 0,
            metrics,
            charges,
            advanced_ns,
        }
    }

    /// Current virtual time in nanoseconds since boot.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances the clock by `ns` nanoseconds.
    #[inline]
    pub fn advance(&mut self, ns: u64) {
        self.now_ns += ns;
        self.metrics.incr_fast(self.charges);
        self.metrics.add_fast(self.advanced_ns, ns);
    }

    /// The clock's own metric counters ([`CHARGES_COUNTER`],
    /// [`ADVANCED_NS_COUNTER`]).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

impl fmt::Display for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.now_ns)
    }
}

/// A span of virtual time, produced by [`Stopwatch`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct VirtualDuration {
    /// Elapsed virtual nanoseconds.
    pub ns: u64,
}

impl VirtualDuration {
    /// Zero-length duration.
    pub const ZERO: VirtualDuration = VirtualDuration { ns: 0 };

    /// Builds a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> VirtualDuration {
        VirtualDuration { ns }
    }

    /// The duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.ns as f64 / 1_000.0
    }

    /// The duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.ns as f64 / 1_000_000.0
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.ns)
        }
    }
}

impl std::ops::Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration {
            ns: self.ns + rhs.ns,
        }
    }
}

impl std::iter::Sum for VirtualDuration {
    fn sum<I: Iterator<Item = VirtualDuration>>(iter: I) -> VirtualDuration {
        iter.fold(VirtualDuration::ZERO, |a, b| a + b)
    }
}

/// Measures elapsed virtual time between two clock observations.
///
/// # Example
///
/// ```
/// use cider_kernel::clock::{Stopwatch, VirtualClock};
///
/// let mut clock = VirtualClock::new();
/// let sw = Stopwatch::start(&clock);
/// clock.advance(1500);
/// assert_eq!(sw.elapsed(&clock).ns, 1500);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start_ns: u64,
}

impl Stopwatch {
    /// Starts timing at the clock's current instant.
    pub fn start(clock: &VirtualClock) -> Stopwatch {
        Stopwatch {
            start_ns: clock.now_ns(),
        }
    }

    /// Virtual time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self, clock: &VirtualClock) -> VirtualDuration {
        VirtualDuration {
            ns: clock.now_ns() - self.start_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_counts_charges() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(100);
        c.advance(50);
        assert_eq!(c.now_ns(), 150);
        assert_eq!(c.metrics().counter(CHARGES_COUNTER), 2);
        assert_eq!(c.metrics().counter(ADVANCED_NS_COUNTER), 150);
    }

    #[test]
    fn stopwatch_measures_spans() {
        let mut c = VirtualClock::new();
        c.advance(10);
        let sw = Stopwatch::start(&c);
        c.advance(90);
        assert_eq!(sw.elapsed(&c), VirtualDuration::from_nanos(90));
    }

    #[test]
    fn duration_display_scales_units() {
        assert_eq!(VirtualDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(VirtualDuration::from_nanos(1500).to_string(), "1.500us");
        assert_eq!(
            VirtualDuration::from_nanos(2_500_000).to_string(),
            "2.500ms"
        );
    }

    #[test]
    fn duration_sum() {
        let total: VirtualDuration = [10u64, 20, 30]
            .iter()
            .map(|&n| VirtualDuration::from_nanos(n))
            .sum();
        assert_eq!(total.ns, 60);
    }
}
