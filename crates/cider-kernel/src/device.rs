//! Kernel device registry and the `device_add` hook.
//!
//! The paper adds "a small hook in the Linux device add function" so that
//! every registered Linux device also appears as an I/O Kit registry
//! entry (§5.1). [`DeviceRegistry::add`] reproduces that hook point: any
//! number of [`DeviceAddHook`]s observe device registration, and the I/O
//! Kit bridge in `cider-core` installs one to publish device-class
//! instances.

use std::sync::Arc;

use cider_abi::errno::Errno;

use crate::vfs::DeviceId;

/// One registered kernel device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelDevice {
    /// Registry id.
    pub id: DeviceId,
    /// Device name, e.g. `"tegra-dc"`.
    pub name: String,
    /// Device class, e.g. `"display"`, `"input"`, `"gpu"`.
    pub class: String,
    /// Device node path in the VFS, e.g. `"/dev/fb0"`.
    pub node_path: String,
}

/// Observer of device registration — the Cider I/O Kit bridge.
///
/// Hooks are `Send + Sync` so a kernel holding them can migrate to a
/// fleet worker thread; observers needing mutation use a `Mutex`.
pub trait DeviceAddHook: Send + Sync {
    /// Called once for every device added after hook installation, and
    /// retroactively for devices already present when the hook installs.
    fn device_added(&self, dev: &KernelDevice);
}

/// The kernel's table of devices plus registered hooks.
#[derive(Default)]
pub struct DeviceRegistry {
    devices: Vec<KernelDevice>,
    hooks: Vec<Arc<dyn DeviceAddHook>>,
    next_id: u32,
}

impl std::fmt::Debug for DeviceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceRegistry")
            .field("devices", &self.devices)
            .field("hooks", &self.hooks.len())
            .finish()
    }
}

impl DeviceRegistry {
    /// Empty registry.
    pub fn new() -> DeviceRegistry {
        DeviceRegistry::default()
    }

    /// Registers a device, fires all hooks, and returns its id.
    ///
    /// # Errors
    ///
    /// `EEXIST` if a device with the same node path is already registered.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        class: impl Into<String>,
        node_path: impl Into<String>,
    ) -> Result<DeviceId, Errno> {
        let node_path = node_path.into();
        if self.devices.iter().any(|d| d.node_path == node_path) {
            return Err(Errno::EEXIST);
        }
        let id = DeviceId(self.next_id);
        self.next_id += 1;
        let dev = KernelDevice {
            id,
            name: name.into(),
            class: class.into(),
            node_path,
        };
        for hook in self.hooks.clone() {
            hook.device_added(&dev);
        }
        self.devices.push(dev);
        Ok(id)
    }

    /// Installs a hook; it immediately observes all existing devices.
    pub fn add_hook(&mut self, hook: Arc<dyn DeviceAddHook>) {
        for dev in &self.devices {
            hook.device_added(dev);
        }
        self.hooks.push(hook);
    }

    /// Looks up a device by id.
    pub fn get(&self, id: DeviceId) -> Option<&KernelDevice> {
        self.devices.iter().find(|d| d.id == id)
    }

    /// Looks up a device by class name.
    pub fn find_by_class(&self, class: &str) -> Option<&KernelDevice> {
        self.devices.iter().find(|d| d.class == class)
    }

    /// All devices.
    pub fn iter(&self) -> impl Iterator<Item = &KernelDevice> {
        self.devices.iter()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Recorder {
        seen: Mutex<Vec<String>>,
    }

    impl DeviceAddHook for Recorder {
        fn device_added(&self, dev: &KernelDevice) {
            self.seen.lock().unwrap().push(dev.name.clone());
        }
    }

    #[test]
    fn add_and_lookup() {
        let mut r = DeviceRegistry::new();
        let id = r.add("tegra-dc", "display", "/dev/fb0").unwrap();
        assert_eq!(r.get(id).unwrap().class, "display");
        assert_eq!(r.find_by_class("display").unwrap().id, id);
        assert!(r.find_by_class("gpu").is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn duplicate_node_path_rejected() {
        let mut r = DeviceRegistry::new();
        r.add("a", "x", "/dev/a").unwrap();
        assert_eq!(r.add("b", "y", "/dev/a"), Err(Errno::EEXIST));
    }

    #[test]
    fn hooks_fire_for_new_devices() {
        let mut r = DeviceRegistry::new();
        let rec = Arc::new(Recorder::default());
        r.add_hook(rec.clone());
        r.add("touchscreen", "input", "/dev/input/event0").unwrap();
        assert_eq!(*rec.seen.lock().unwrap(), vec!["touchscreen"]);
    }

    #[test]
    fn hooks_observe_existing_devices_retroactively() {
        let mut r = DeviceRegistry::new();
        r.add("gpu", "gpu", "/dev/nvhost").unwrap();
        let rec = Arc::new(Recorder::default());
        r.add_hook(rec.clone());
        assert_eq!(*rec.seen.lock().unwrap(), vec!["gpu"]);
    }
}
