//! Personalities and syscall dispatch tables.
//!
//! "Cider maintains one or more syscall dispatch tables for each persona,
//! and switches among them based on the persona of the calling thread and
//! the syscall number" (paper §4.1). The base kernel owns a table of
//! [`Personality`] objects; each thread carries a `PersonalityId`, and
//! every trap is routed to that personality, which consults its own
//! [`SyscallTable`]s and applies its own calling/error conventions.
//!
//! The vanilla kernel registers only the Linux personality (see
//! `cider_kernel::LinuxPersonality`); the Cider layer
//! registers an XNU personality with four trap-class tables.

use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use cider_abi::convention::CpuFlags;
use cider_abi::errno::Errno;
use cider_abi::ids::Tid;
use cider_abi::signal::{sigframe, Signal};

use crate::kernel::Kernel;

/// Out-of-band payload accompanying a trap's register arguments.
///
/// The simulator does not model raw user memory, so buffers and paths that
/// a real kernel would `copy_from_user` travel next to the registers.
/// Costs are still charged per byte as if copied.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum SyscallData {
    /// No payload.
    #[default]
    None,
    /// A byte buffer travelling into the kernel (write, send).
    Bytes(Vec<u8>),
    /// A path string.
    Path(String),
    /// A path plus argv (execve).
    Exec {
        /// Binary path.
        path: String,
        /// Argument vector.
        argv: Vec<String>,
    },
    /// A set of descriptors (select).
    FdSet(Vec<i32>),
}

/// A trap's full argument set: seven argument registers plus payload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyscallArgs {
    /// Argument registers r0..r6.
    pub regs: [i64; 7],
    /// Out-of-band payload (stands in for user memory).
    pub data: SyscallData,
}

impl SyscallArgs {
    /// No arguments.
    pub fn none() -> SyscallArgs {
        SyscallArgs::default()
    }

    /// Only register arguments.
    pub fn regs(regs: [i64; 7]) -> SyscallArgs {
        SyscallArgs {
            regs,
            data: SyscallData::None,
        }
    }
}

/// Result a trap handler produces before convention encoding, plus any
/// data travelling back to user space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapResult {
    /// Success value or domestic errno.
    pub outcome: Result<i64, Errno>,
    /// Data returned to user space (read buffers etc.).
    pub out_data: Vec<u8>,
}

impl TrapResult {
    /// Success with a value and no data.
    pub fn ok(v: i64) -> TrapResult {
        TrapResult {
            outcome: Ok(v),
            out_data: Vec::new(),
        }
    }

    /// Failure.
    pub fn err(e: Errno) -> TrapResult {
        TrapResult {
            outcome: Err(e),
            out_data: Vec::new(),
        }
    }

    /// Success carrying returned bytes; the value is the byte count.
    pub fn with_data(data: Vec<u8>) -> TrapResult {
        TrapResult {
            outcome: Ok(data.len() as i64),
            out_data: data,
        }
    }
}

/// A syscall handler: a plain function pointer, exactly like an entry in a
/// kernel's `sys_call_table`.
pub type SyscallHandler = fn(&mut Kernel, Tid, &SyscallArgs) -> TrapResult;

/// Errors building a dispatch table.
///
/// Dispatch tables are built once at personality construction; a
/// collision means two handlers claim the same number, which the
/// builder surfaces as data instead of tearing the process down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchError {
    /// Two handlers were installed under the same syscall number.
    Collision {
        /// The contested syscall number.
        nr: i32,
        /// Name of the handler already installed.
        existing: &'static str,
        /// Name of the handler that lost the race.
        rejected: &'static str,
    },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::Collision {
                nr,
                existing,
                rejected,
            } => write!(
                f,
                "syscall {nr} double-registered: {existing} already \
                 installed, rejected {rejected}"
            ),
        }
    }
}

impl std::error::Error for DispatchError {}

/// One dispatch table: syscall number → handler.
#[derive(Default)]
pub struct SyscallTable {
    entries: BTreeMap<i32, (&'static str, SyscallHandler)>,
}

impl fmt::Debug for SyscallTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SyscallTable")
            .field("entries", &self.entries.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl SyscallTable {
    /// Empty table.
    pub fn new() -> SyscallTable {
        SyscallTable::default()
    }

    /// Installs a handler for a syscall number.
    ///
    /// # Errors
    ///
    /// [`DispatchError::Collision`] if the number is already taken; the
    /// existing entry is left untouched.
    pub fn install(
        &mut self,
        nr: i32,
        name: &'static str,
        handler: SyscallHandler,
    ) -> Result<(), DispatchError> {
        if let Some(&(existing, _)) = self.entries.get(&nr) {
            return Err(DispatchError::Collision {
                nr,
                existing,
                rejected: name,
            });
        }
        self.entries.insert(nr, (name, handler));
        Ok(())
    }

    /// Looks up a handler.
    pub fn lookup(&self, nr: i32) -> Option<(&'static str, SyscallHandler)> {
        self.entries.get(&nr).copied()
    }

    /// Iterates `(number, name)` pairs in ascending numeric order.
    ///
    /// The conformance engine uses this as its coverage universe: every
    /// entry is a dispatch target a workload could exercise.
    pub fn entries(&self) -> impl Iterator<Item = (i32, &'static str)> + '_ {
        self.entries.iter().map(|(&nr, &(name, _))| (nr, name))
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The full result of a trap as user space sees it: result register,
/// flags, and any out-of-band data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserTrapResult {
    /// Result register value (convention-specific encoding).
    pub reg: i64,
    /// CPU flags (carry = XNU error).
    pub flags: CpuFlags,
    /// Returned bytes.
    pub out_data: Vec<u8>,
}

/// A kernel ABI personality — the per-persona syscall entry/exit code.
pub trait Personality: fmt::Debug {
    /// Name for diagnostics ("linux", "xnu", "xnu-native").
    fn name(&self) -> &'static str;

    /// Handles one raw trap: decodes the number per this personality's
    /// conventions, dispatches, and encodes the result.
    fn trap(
        &self,
        k: &mut Kernel,
        tid: Tid,
        number: i64,
        args: &SyscallArgs,
    ) -> UserTrapResult;

    /// Size of the signal frame this personality's user space expects —
    /// drives the delivery-cost difference the paper measured.
    fn sigframe_bytes(&self) -> usize {
        sigframe::LINUX_FRAME_BYTES
    }

    /// Translates an internal (Linux-numbered) signal into the raw number
    /// this personality's user space expects, or `None` to drop it.
    fn signal_number(&self, sig: Signal) -> Option<i32> {
        Some(sig.as_raw())
    }

    /// Extra per-signal translation cost in ns (zero for the native
    /// personality; the XNU personality pays for renumbering plus the
    /// larger `siginfo` conversion).
    fn signal_translation_ns(&self) -> u64 {
        0
    }

    /// Human-readable name of a syscall number under this personality's
    /// numbering, for trace labels. `None` for unknown numbers.
    fn syscall_name(&self, number: i64) -> Option<&'static str> {
        let _ = number;
        None
    }

    /// The domestic syscall number a foreign number maps to, when this
    /// personality translates rather than implements (`None` for native
    /// personalities and untranslated numbers). Trace-only metadata;
    /// dispatch itself happens inside [`Personality::trap`].
    fn translate_syscall(&self, number: i64) -> Option<i64> {
        let _ = number;
        None
    }
}

/// A reference-counted personality handle as stored in the kernel.
pub type PersonalityRef = Rc<dyn Personality>;

#[cfg(test)]
mod tests {
    use super::*;

    fn nop(_: &mut Kernel, _: Tid, _: &SyscallArgs) -> TrapResult {
        TrapResult::ok(0)
    }

    #[test]
    fn table_install_and_lookup() {
        let mut t = SyscallTable::new();
        t.install(3, "read", nop).unwrap();
        t.install(4, "write", nop).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(3).unwrap().0, "read");
        assert!(t.lookup(99).is_none());
        assert_eq!(
            t.entries().collect::<Vec<_>>(),
            vec![(3, "read"), (4, "write")]
        );
    }

    #[test]
    fn double_registration_is_typed_error() {
        let mut t = SyscallTable::new();
        t.install(3, "read", nop).unwrap();
        let err = t.install(3, "read2", nop).unwrap_err();
        assert_eq!(
            err,
            DispatchError::Collision {
                nr: 3,
                existing: "read",
                rejected: "read2",
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("double-registered"), "{msg}");
        assert!(msg.contains("read2"), "{msg}");
        // The original entry survives the collision.
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(3).unwrap().0, "read");
    }

    #[test]
    fn trap_result_constructors() {
        assert_eq!(TrapResult::ok(5).outcome, Ok(5));
        assert_eq!(TrapResult::err(Errno::EBADF).outcome, Err(Errno::EBADF));
        let r = TrapResult::with_data(vec![1, 2, 3]);
        assert_eq!(r.outcome, Ok(3));
        assert_eq!(r.out_data, vec![1, 2, 3]);
    }
}
