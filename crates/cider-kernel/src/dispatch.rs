//! Personalities and syscall dispatch tables.
//!
//! "Cider maintains one or more syscall dispatch tables for each persona,
//! and switches among them based on the persona of the calling thread and
//! the syscall number" (paper §4.1). The base kernel owns a table of
//! [`Personality`] objects; each thread carries a `PersonalityId`, and
//! every trap is routed to that personality, which consults its own
//! [`SyscallTable`]s and applies its own calling/error conventions.
//!
//! The vanilla kernel registers only the Linux personality (see
//! `cider_kernel::LinuxPersonality`); the Cider layer
//! registers an XNU personality with four trap-class tables.
//!
//! # Hot-path layout
//!
//! A real kernel's `sys_call_table` is a flat array indexed by syscall
//! number, and so is [`SyscallTable`]: a dense `Vec<Option<SyscallHandler>>`
//! with a parallel name array, so [`SyscallTable::lookup`] is one bounds
//! check and one indexed load. Tables are built exactly once, at
//! personality construction, through [`SyscallTableBuilder`], which
//! surfaces collisions and out-of-range numbers as [`DispatchError`]
//! values instead of tearing the process down.

use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

use cider_abi::convention::CpuFlags;
use cider_abi::errno::Errno;
use cider_abi::ids::Tid;
use cider_abi::signal::{sigframe, Signal};
use cider_abi::SyscallName;

use crate::kernel::Kernel;

/// Out-of-band payload accompanying a trap's register arguments.
///
/// The simulator does not model raw user memory, so buffers and paths that
/// a real kernel would `copy_from_user` travel next to the registers.
/// Costs are still charged per byte as if copied. Payloads are
/// [`Cow`]s: callers that already hold the bytes (benchmarks, the
/// conformance driver, static path pools) lend them to the kernel
/// without an allocation, and owned payloads still work unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum SyscallData<'a> {
    /// No payload.
    #[default]
    None,
    /// A byte buffer travelling into the kernel (write, send).
    Bytes(Cow<'a, [u8]>),
    /// A path string.
    Path(Cow<'a, str>),
    /// A path plus argv (execve).
    Exec {
        /// Binary path.
        path: Cow<'a, str>,
        /// Argument vector.
        argv: Vec<String>,
    },
    /// A set of descriptors (select).
    FdSet(Cow<'a, [i32]>),
}

/// A trap's full argument set: seven argument registers plus payload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyscallArgs<'a> {
    /// Argument registers r0..r6.
    pub regs: [i64; 7],
    /// Out-of-band payload (stands in for user memory).
    pub data: SyscallData<'a>,
}

impl SyscallArgs<'_> {
    /// No arguments.
    pub fn none() -> SyscallArgs<'static> {
        SyscallArgs::default()
    }

    /// Only register arguments.
    pub fn regs(regs: [i64; 7]) -> SyscallArgs<'static> {
        SyscallArgs {
            regs,
            data: SyscallData::None,
        }
    }
}

/// Result a trap handler produces before convention encoding, plus any
/// data travelling back to user space.
///
/// `out_data` is an ordinary `Vec<u8>`; the zero-alloc discipline is
/// that handlers fill it from the kernel's scratch pool
/// ([`Kernel::take_scratch`]) and trap callers hand finished buffers
/// back with [`Kernel::recycle_scratch`], so steady-state traps reuse
/// one buffer instead of allocating per call. The common case — no
/// out-of-band data — is `Vec::new()`, which never allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapResult {
    /// Success value or domestic errno.
    pub outcome: Result<i64, Errno>,
    /// Data returned to user space (read buffers etc.).
    pub out_data: Vec<u8>,
}

impl TrapResult {
    /// Success with a value and no data.
    pub fn ok(v: i64) -> TrapResult {
        TrapResult {
            outcome: Ok(v),
            out_data: Vec::new(),
        }
    }

    /// Failure.
    pub fn err(e: Errno) -> TrapResult {
        TrapResult {
            outcome: Err(e),
            out_data: Vec::new(),
        }
    }

    /// Success carrying returned bytes; the value is the byte count.
    pub fn with_data(data: Vec<u8>) -> TrapResult {
        TrapResult {
            outcome: Ok(data.len() as i64),
            out_data: data,
        }
    }
}

/// A syscall handler: a plain function pointer, exactly like an entry in a
/// kernel's `sys_call_table`.
pub type SyscallHandler =
    for<'a> fn(&mut Kernel, Tid, &SyscallArgs<'a>) -> TrapResult;

/// Capacity a [`SyscallTableBuilder`] reserves by default — comfortably
/// above the largest syscall number either persona installs (XNU
/// `stat64` at 338) while keeping the dense arrays a few KiB.
pub const DEFAULT_TABLE_CAPACITY: usize = 512;

/// Errors building a dispatch table.
///
/// Dispatch tables are built once at personality construction; a
/// collision means two handlers claim the same number, which the
/// builder surfaces as data instead of tearing the process down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchError {
    /// Two handlers were installed under the same syscall number.
    Collision {
        /// The contested syscall number.
        nr: i32,
        /// Name of the handler already installed.
        existing: SyscallName,
        /// Name of the handler that lost the race.
        rejected: SyscallName,
    },
    /// The syscall number falls outside the table's dense range.
    OutOfRange {
        /// The offending syscall number.
        nr: i32,
        /// The table's capacity; valid numbers are `0..capacity`.
        capacity: usize,
        /// Name of the handler that could not be installed.
        rejected: SyscallName,
    },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::Collision {
                nr,
                existing,
                rejected,
            } => write!(
                f,
                "syscall {nr} double-registered: {existing} already \
                 installed, rejected {rejected}"
            ),
            DispatchError::OutOfRange {
                nr,
                capacity,
                rejected,
            } => write!(
                f,
                "syscall {nr} out of range for dense table of capacity \
                 {capacity}, rejected {rejected}"
            ),
        }
    }
}

impl std::error::Error for DispatchError {}

/// Builds a [`SyscallTable`] entry by entry, surfacing collisions and
/// out-of-range numbers as [`DispatchError`]s.
#[derive(Debug, Default)]
pub struct SyscallTableBuilder {
    handlers: Vec<Option<SyscallHandler>>,
    names: Vec<Option<SyscallName>>,
    len: usize,
}

impl SyscallTableBuilder {
    /// A builder with the [`DEFAULT_TABLE_CAPACITY`] dense range.
    pub fn new() -> SyscallTableBuilder {
        SyscallTableBuilder::with_capacity(DEFAULT_TABLE_CAPACITY)
    }

    /// A builder accepting syscall numbers in `0..capacity`.
    pub fn with_capacity(capacity: usize) -> SyscallTableBuilder {
        SyscallTableBuilder {
            handlers: vec![None; capacity],
            names: vec![None; capacity],
            len: 0,
        }
    }

    /// Installs a handler for a syscall number.
    ///
    /// # Errors
    ///
    /// [`DispatchError::Collision`] if the number is already taken (the
    /// existing entry is left untouched), [`DispatchError::OutOfRange`]
    /// if the number falls outside the dense range.
    pub fn install(
        &mut self,
        nr: i32,
        name: impl Into<SyscallName>,
        handler: SyscallHandler,
    ) -> Result<(), DispatchError> {
        let name = name.into();
        let idx = usize::try_from(nr)
            .ok()
            .filter(|&i| i < self.handlers.len())
            .ok_or(DispatchError::OutOfRange {
                nr,
                capacity: self.handlers.len(),
                rejected: name,
            })?;
        if let Some(existing) = self.names[idx] {
            return Err(DispatchError::Collision {
                nr,
                existing,
                rejected: name,
            });
        }
        self.handlers[idx] = Some(handler);
        self.names[idx] = Some(name);
        self.len += 1;
        Ok(())
    }

    /// Finishes the table.
    pub fn build(self) -> SyscallTable {
        SyscallTable {
            handlers: self.handlers,
            names: self.names,
            len: self.len,
        }
    }
}

/// One dispatch table: syscall number → handler, as dense flat arrays
/// indexed by syscall number (the shape of a real `sys_call_table`).
///
/// Built once via [`SyscallTableBuilder`]; lookup is O(1).
#[derive(Default)]
pub struct SyscallTable {
    handlers: Vec<Option<SyscallHandler>>,
    names: Vec<Option<SyscallName>>,
    len: usize,
}

impl fmt::Debug for SyscallTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SyscallTable")
            .field(
                "entries",
                &self.entries().map(|(nr, _)| nr).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl SyscallTable {
    /// Empty table.
    pub fn new() -> SyscallTable {
        SyscallTable::default()
    }

    /// Looks up a handler with its name.
    #[inline]
    pub fn lookup(&self, nr: i32) -> Option<(SyscallName, SyscallHandler)> {
        let idx = usize::try_from(nr).ok()?;
        match self.handlers.get(idx) {
            Some(&Some(handler)) => {
                Some((self.names[idx].expect("parallel arrays"), handler))
            }
            _ => None,
        }
    }

    /// Looks up just the handler — the trap hot path, which does not
    /// need the name.
    #[inline]
    pub fn handler(&self, nr: i32) -> Option<SyscallHandler> {
        let idx = usize::try_from(nr).ok()?;
        self.handlers.get(idx).copied().flatten()
    }

    /// Looks up just the name.
    #[inline]
    pub fn name(&self, nr: i32) -> Option<SyscallName> {
        let idx = usize::try_from(nr).ok()?;
        self.names.get(idx).copied().flatten()
    }

    /// Iterates `(number, name)` pairs in ascending numeric order.
    ///
    /// The conformance engine uses this as its coverage universe: every
    /// entry is a dispatch target a workload could exercise.
    pub fn entries(&self) -> impl Iterator<Item = (i32, SyscallName)> + '_ {
        self.names
            .iter()
            .enumerate()
            .filter_map(|(nr, name)| name.map(|n| (nr as i32, n)))
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The full result of a trap as user space sees it: result register,
/// flags, and any out-of-band data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserTrapResult {
    /// Result register value (convention-specific encoding).
    pub reg: i64,
    /// CPU flags (carry = XNU error).
    pub flags: CpuFlags,
    /// Returned bytes.
    pub out_data: Vec<u8>,
}

/// A kernel ABI personality — the per-persona syscall entry/exit code.
pub trait Personality: fmt::Debug + Send + Sync {
    /// Name for diagnostics ("linux", "xnu", "xnu-native").
    fn name(&self) -> &'static str;

    /// Handles one raw trap: decodes the number per this personality's
    /// conventions, dispatches, and encodes the result.
    fn trap(
        &self,
        k: &mut Kernel,
        tid: Tid,
        number: i64,
        args: &SyscallArgs<'_>,
    ) -> UserTrapResult;

    /// Size of the signal frame this personality's user space expects —
    /// drives the delivery-cost difference the paper measured.
    fn sigframe_bytes(&self) -> usize {
        sigframe::LINUX_FRAME_BYTES
    }

    /// Translates an internal (Linux-numbered) signal into the raw number
    /// this personality's user space expects, or `None` to drop it.
    fn signal_number(&self, sig: Signal) -> Option<i32> {
        Some(sig.as_raw())
    }

    /// Extra per-signal translation cost in ns (zero for the native
    /// personality; the XNU personality pays for renumbering plus the
    /// larger `siginfo` conversion).
    fn signal_translation_ns(&self) -> u64 {
        0
    }

    /// Typed name of a syscall number under this personality's
    /// numbering, for trace labels. `None` for unknown numbers.
    fn syscall_name(&self, number: i64) -> Option<SyscallName> {
        let _ = number;
        None
    }

    /// The domestic syscall number a foreign number maps to, when this
    /// personality translates rather than implements (`None` for native
    /// personalities and untranslated numbers). Trace-only metadata;
    /// dispatch itself happens inside [`Personality::trap`].
    fn translate_syscall(&self, number: i64) -> Option<i64> {
        let _ = number;
        None
    }
}

/// A reference-counted personality handle as stored in the kernel.
pub type PersonalityRef = Arc<dyn Personality>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn nop(_: &mut Kernel, _: Tid, _: &SyscallArgs<'_>) -> TrapResult {
        TrapResult::ok(0)
    }

    #[test]
    fn table_install_and_lookup() {
        let mut b = SyscallTableBuilder::new();
        b.install(3, "read", nop).unwrap();
        b.install(4, "write", nop).unwrap();
        let t = b.build();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.lookup(3).unwrap().0, "read");
        assert!(t.lookup(99).is_none());
        assert!(t.lookup(-3).is_none());
        assert!(t.handler(4).is_some());
        assert_eq!(t.name(4).unwrap(), "write");
        assert_eq!(
            t.entries().collect::<Vec<_>>(),
            vec![(3, SyscallName("read")), (4, SyscallName("write"))]
        );
    }

    #[test]
    fn double_registration_is_typed_error() {
        let mut b = SyscallTableBuilder::new();
        b.install(3, "read", nop).unwrap();
        let err = b.install(3, "read2", nop).unwrap_err();
        assert_eq!(
            err,
            DispatchError::Collision {
                nr: 3,
                existing: SyscallName("read"),
                rejected: SyscallName("read2"),
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("double-registered"), "{msg}");
        assert!(msg.contains("read2"), "{msg}");
        // The original entry survives the collision.
        let t = b.build();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(3).unwrap().0, "read");
    }

    #[test]
    fn out_of_range_numbers_are_typed_errors() {
        let mut b = SyscallTableBuilder::with_capacity(8);
        b.install(7, "edge", nop).unwrap();
        let err = b.install(8, "past_end", nop).unwrap_err();
        assert_eq!(
            err,
            DispatchError::OutOfRange {
                nr: 8,
                capacity: 8,
                rejected: SyscallName("past_end"),
            }
        );
        assert!(err.to_string().contains("out of range"));
        let err = b.install(-1, "negative", nop).unwrap_err();
        assert!(matches!(err, DispatchError::OutOfRange { nr: -1, .. }));
        let t = b.build();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn dense_lookup_agrees_with_reference_btreemap() {
        let mut b = SyscallTableBuilder::with_capacity(64);
        let mut reference = BTreeMap::new();
        for (nr, name) in
            [(1i32, "exit"), (3, "read"), (4, "write"), (63, "dup2")]
        {
            b.install(nr, name, nop).unwrap();
            reference.insert(nr, SyscallName(name));
        }
        let t = b.build();
        for nr in -4..70 {
            assert_eq!(
                t.lookup(nr).map(|(n, _)| n),
                reference.get(&nr).copied(),
                "nr {nr}"
            );
        }
        assert_eq!(
            t.entries().collect::<Vec<_>>(),
            reference.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn trap_result_constructors() {
        assert_eq!(TrapResult::ok(5).outcome, Ok(5));
        assert_eq!(TrapResult::err(Errno::EBADF).outcome, Err(Errno::EBADF));
        let r = TrapResult::with_data(vec![1, 2, 3]);
        assert_eq!(r.outcome, Ok(3));
        assert_eq!(r.out_data, vec![1, 2, 3]);
    }
}
