//! Per-process file-descriptor tables.

use std::collections::BTreeMap;

use cider_abi::errno::Errno;
use cider_abi::ids::Fd;

use crate::ipcobj::{PipeEnd, SocketEnd};
use crate::vfs::{DeviceId, Ino};

/// What an open descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileObject {
    /// A VFS regular file with a seek offset.
    File {
        /// Backing inode.
        ino: Ino,
        /// Current seek offset.
        offset: u64,
        /// Opened writable.
        writable: bool,
        /// Opened readable.
        readable: bool,
    },
    /// One end of a pipe.
    Pipe(PipeEnd),
    /// One end of a connected UNIX-domain socket pair.
    Socket(SocketEnd),
    /// A character device.
    Device(DeviceId),
    /// The console (stdout/stderr sink).
    Console,
}

/// A process's descriptor table.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    entries: BTreeMap<i32, FileObject>,
    next: i32,
}

impl FdTable {
    /// An empty table.
    pub fn new() -> FdTable {
        FdTable {
            entries: BTreeMap::new(),
            next: 0,
        }
    }

    /// A table pre-populated with stdin/stdout/stderr console entries.
    pub fn with_stdio() -> FdTable {
        let mut t = FdTable::new();
        for _ in 0..3 {
            t.insert(FileObject::Console);
        }
        t
    }

    /// Inserts an object at the lowest free descriptor.
    pub fn insert(&mut self, obj: FileObject) -> Fd {
        let mut fd = 0;
        while self.entries.contains_key(&fd) {
            fd += 1;
        }
        self.entries.insert(fd, obj);
        self.next = self.next.max(fd + 1);
        Fd(fd)
    }

    /// Looks up a descriptor.
    ///
    /// # Errors
    ///
    /// `EBADF` if the descriptor is not open.
    pub fn get(&self, fd: Fd) -> Result<&FileObject, Errno> {
        self.entries.get(&fd.0).ok_or(Errno::EBADF)
    }

    /// Mutable lookup.
    ///
    /// # Errors
    ///
    /// `EBADF` if the descriptor is not open.
    pub fn get_mut(&mut self, fd: Fd) -> Result<&mut FileObject, Errno> {
        self.entries.get_mut(&fd.0).ok_or(Errno::EBADF)
    }

    /// Closes a descriptor, returning the object for teardown.
    ///
    /// # Errors
    ///
    /// `EBADF` if the descriptor is not open.
    pub fn remove(&mut self, fd: Fd) -> Result<FileObject, Errno> {
        self.entries.remove(&fd.0).ok_or(Errno::EBADF)
    }

    /// Duplicates `old` to the lowest free descriptor (`dup`).
    ///
    /// # Errors
    ///
    /// `EBADF` if `old` is not open.
    pub fn dup(&mut self, old: Fd) -> Result<Fd, Errno> {
        let obj = self.get(old)?.clone();
        Ok(self.insert(obj))
    }

    /// Duplicates `old` onto `new` (`dup2`), closing `new` first if open.
    ///
    /// # Errors
    ///
    /// `EBADF` if `old` is not open or `new` is negative.
    pub fn dup2(&mut self, old: Fd, new: Fd) -> Result<Fd, Errno> {
        if new.0 < 0 {
            return Err(Errno::EBADF);
        }
        let obj = self.get(old)?.clone();
        self.entries.insert(new.0, obj);
        Ok(new)
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(fd, object)` pairs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &FileObject)> {
        self.entries.iter().map(|(&fd, obj)| (Fd(fd), obj))
    }

    /// Clones the table for `fork`; the caller charges per-entry cost.
    pub fn fork_clone(&self) -> (FdTable, usize) {
        (self.clone(), self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_uses_lowest_free() {
        let mut t = FdTable::with_stdio();
        let fd = t.insert(FileObject::Console);
        assert_eq!(fd, Fd(3));
        t.remove(Fd(1)).unwrap();
        let fd = t.insert(FileObject::Console);
        assert_eq!(fd, Fd(1));
    }

    #[test]
    fn get_and_remove_errors() {
        let mut t = FdTable::new();
        assert_eq!(t.get(Fd(0)).unwrap_err(), Errno::EBADF);
        assert_eq!(t.remove(Fd(5)).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn dup_and_dup2() {
        let mut t = FdTable::with_stdio();
        let d = t.dup(Fd(0)).unwrap();
        assert_eq!(d, Fd(3));
        t.dup2(Fd(0), Fd(10)).unwrap();
        assert!(t.get(Fd(10)).is_ok());
        assert_eq!(t.dup2(Fd(99), Fd(1)).unwrap_err(), Errno::EBADF);
        assert_eq!(t.dup2(Fd(0), Fd(-1)).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn fork_clone_counts_entries() {
        let t = FdTable::with_stdio();
        let (clone, n) = t.fork_clone();
        assert_eq!(n, 3);
        assert_eq!(clone.len(), 3);
    }
}
