//! Per-process file-descriptor tables.

use std::collections::{BTreeMap, BTreeSet};

use cider_abi::errno::Errno;
use cider_abi::ids::Fd;

use crate::ipcobj::{PipeEnd, SocketEnd};
use crate::vfs::{DeviceId, Ino};

/// What an open descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileObject {
    /// A VFS regular file with a seek offset.
    File {
        /// Backing inode.
        ino: Ino,
        /// Current seek offset.
        offset: u64,
        /// Opened writable.
        writable: bool,
        /// Opened readable.
        readable: bool,
    },
    /// One end of a pipe.
    Pipe(PipeEnd),
    /// One end of a connected UNIX-domain socket pair.
    Socket(SocketEnd),
    /// A character device.
    Device(DeviceId),
    /// The console (stdout/stderr sink).
    Console,
}

/// A process's descriptor table.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    entries: BTreeMap<i32, FileObject>,
    cloexec: BTreeSet<i32>,
    next: i32,
}

impl FdTable {
    /// An empty table.
    pub fn new() -> FdTable {
        FdTable {
            entries: BTreeMap::new(),
            cloexec: BTreeSet::new(),
            next: 0,
        }
    }

    /// A table pre-populated with stdin/stdout/stderr console entries.
    pub fn with_stdio() -> FdTable {
        let mut t = FdTable::new();
        for _ in 0..3 {
            t.insert(FileObject::Console);
        }
        t
    }

    /// Inserts an object at the lowest free descriptor.
    pub fn insert(&mut self, obj: FileObject) -> Fd {
        let mut fd = 0;
        while self.entries.contains_key(&fd) {
            fd += 1;
        }
        self.entries.insert(fd, obj);
        self.cloexec.remove(&fd);
        self.next = self.next.max(fd + 1);
        Fd(fd)
    }

    /// Looks up a descriptor.
    ///
    /// # Errors
    ///
    /// `EBADF` if the descriptor is not open.
    pub fn get(&self, fd: Fd) -> Result<&FileObject, Errno> {
        self.entries.get(&fd.0).ok_or(Errno::EBADF)
    }

    /// Mutable lookup.
    ///
    /// # Errors
    ///
    /// `EBADF` if the descriptor is not open.
    pub fn get_mut(&mut self, fd: Fd) -> Result<&mut FileObject, Errno> {
        self.entries.get_mut(&fd.0).ok_or(Errno::EBADF)
    }

    /// Closes a descriptor, returning the object for teardown.
    ///
    /// # Errors
    ///
    /// `EBADF` if the descriptor is not open.
    pub fn remove(&mut self, fd: Fd) -> Result<FileObject, Errno> {
        let obj = self.entries.remove(&fd.0).ok_or(Errno::EBADF)?;
        self.cloexec.remove(&fd.0);
        Ok(obj)
    }

    /// Duplicates `old` to the lowest free descriptor (`dup`).
    ///
    /// # Errors
    ///
    /// `EBADF` if `old` is not open.
    pub fn dup(&mut self, old: Fd) -> Result<Fd, Errno> {
        let obj = self.get(old)?.clone();
        Ok(self.insert(obj))
    }

    /// Duplicates `old` onto `new` (`dup2`), closing `new` first if open.
    ///
    /// # Errors
    ///
    /// `EBADF` if `old` is not open or `new` is negative.
    pub fn dup2(&mut self, old: Fd, new: Fd) -> Result<Fd, Errno> {
        if new.0 < 0 {
            return Err(Errno::EBADF);
        }
        let obj = self.get(old)?.clone();
        self.entries.insert(new.0, obj);
        // POSIX: the duplicate never inherits FD_CLOEXEC.
        self.cloexec.remove(&new.0);
        Ok(new)
    }

    /// Sets or clears the close-on-exec flag (`FD_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// `EBADF` if the descriptor is not open.
    pub fn set_cloexec(&mut self, fd: Fd, on: bool) -> Result<(), Errno> {
        if !self.entries.contains_key(&fd.0) {
            return Err(Errno::EBADF);
        }
        if on {
            self.cloexec.insert(fd.0);
        } else {
            self.cloexec.remove(&fd.0);
        }
        Ok(())
    }

    /// Reads the close-on-exec flag.
    ///
    /// # Errors
    ///
    /// `EBADF` if the descriptor is not open.
    pub fn cloexec(&self, fd: Fd) -> Result<bool, Errno> {
        if !self.entries.contains_key(&fd.0) {
            return Err(Errno::EBADF);
        }
        Ok(self.cloexec.contains(&fd.0))
    }

    /// Closes every descriptor marked close-on-exec, returning the
    /// `(fd, object)` pairs so the caller can tear the objects down.
    /// Called by `execve` after the new image is committed.
    pub fn close_on_exec(&mut self) -> Vec<(Fd, FileObject)> {
        let doomed: Vec<i32> = self.cloexec.iter().copied().collect();
        let mut closed = Vec::with_capacity(doomed.len());
        for fd in doomed {
            if let Some(obj) = self.entries.remove(&fd) {
                closed.push((Fd(fd), obj));
            }
        }
        self.cloexec.clear();
        closed
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(fd, object)` pairs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &FileObject)> {
        self.entries.iter().map(|(&fd, obj)| (Fd(fd), obj))
    }

    /// Clones the table for `fork`; the caller charges per-entry cost.
    pub fn fork_clone(&self) -> (FdTable, usize) {
        (self.clone(), self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_uses_lowest_free() {
        let mut t = FdTable::with_stdio();
        let fd = t.insert(FileObject::Console);
        assert_eq!(fd, Fd(3));
        t.remove(Fd(1)).unwrap();
        let fd = t.insert(FileObject::Console);
        assert_eq!(fd, Fd(1));
    }

    #[test]
    fn get_and_remove_errors() {
        let mut t = FdTable::new();
        assert_eq!(t.get(Fd(0)).unwrap_err(), Errno::EBADF);
        assert_eq!(t.remove(Fd(5)).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn dup_and_dup2() {
        let mut t = FdTable::with_stdio();
        let d = t.dup(Fd(0)).unwrap();
        assert_eq!(d, Fd(3));
        t.dup2(Fd(0), Fd(10)).unwrap();
        assert!(t.get(Fd(10)).is_ok());
        assert_eq!(t.dup2(Fd(99), Fd(1)).unwrap_err(), Errno::EBADF);
        assert_eq!(t.dup2(Fd(0), Fd(-1)).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn fork_clone_counts_entries() {
        let t = FdTable::with_stdio();
        let (clone, n) = t.fork_clone();
        assert_eq!(n, 3);
        assert_eq!(clone.len(), 3);
    }

    #[test]
    fn lowest_free_slot_skips_holes_in_order() {
        let mut t = FdTable::with_stdio();
        let a = t.insert(FileObject::Console); // 3
        let b = t.insert(FileObject::Console); // 4
        assert_eq!((a, b), (Fd(3), Fd(4)));
        t.remove(Fd(0)).unwrap();
        t.remove(Fd(3)).unwrap();
        // Lowest hole first, then the next hole, then the frontier.
        assert_eq!(t.insert(FileObject::Console), Fd(0));
        assert_eq!(t.insert(FileObject::Console), Fd(3));
        assert_eq!(t.insert(FileObject::Console), Fd(5));
    }

    #[test]
    fn cloexec_set_read_and_errors() {
        let mut t = FdTable::with_stdio();
        assert_eq!(t.cloexec(Fd(1)), Ok(false));
        t.set_cloexec(Fd(1), true).unwrap();
        assert_eq!(t.cloexec(Fd(1)), Ok(true));
        t.set_cloexec(Fd(1), false).unwrap();
        assert_eq!(t.cloexec(Fd(1)), Ok(false));
        assert_eq!(t.set_cloexec(Fd(9), true), Err(Errno::EBADF));
        assert_eq!(t.cloexec(Fd(9)), Err(Errno::EBADF));
    }

    #[test]
    fn dup_clears_cloexec_on_duplicate() {
        let mut t = FdTable::with_stdio();
        t.set_cloexec(Fd(0), true).unwrap();
        let d = t.dup(Fd(0)).unwrap();
        assert_eq!(t.cloexec(d), Ok(false), "dup duplicate starts clear");
        assert_eq!(t.cloexec(Fd(0)), Ok(true), "original keeps its flag");
        t.set_cloexec(Fd(2), true).unwrap();
        t.dup2(Fd(0), Fd(2)).unwrap();
        assert_eq!(t.cloexec(Fd(2)), Ok(false), "dup2 target starts clear");
    }

    #[test]
    fn close_on_exec_sweeps_only_flagged_fds() {
        let mut t = FdTable::with_stdio();
        let a = t.insert(FileObject::Console); // 3
        let b = t.insert(FileObject::Console); // 4
        t.set_cloexec(a, true).unwrap();
        t.set_cloexec(b, true).unwrap();
        t.set_cloexec(Fd(1), true).unwrap();
        let closed: Vec<Fd> =
            t.close_on_exec().into_iter().map(|(fd, _)| fd).collect();
        assert_eq!(closed, vec![Fd(1), a, b]);
        assert_eq!(t.len(), 2);
        assert!(t.get(Fd(0)).is_ok() && t.get(Fd(2)).is_ok());
        // Second sweep is a no-op.
        assert!(t.close_on_exec().is_empty());
    }

    #[test]
    fn reused_slot_does_not_inherit_stale_cloexec() {
        let mut t = FdTable::with_stdio();
        t.set_cloexec(Fd(1), true).unwrap();
        t.remove(Fd(1)).unwrap();
        let fd = t.insert(FileObject::Console);
        assert_eq!(fd, Fd(1));
        assert_eq!(t.cloexec(fd), Ok(false));
    }

    #[test]
    fn fork_clone_preserves_cloexec_flags() {
        let mut t = FdTable::with_stdio();
        t.set_cloexec(Fd(2), true).unwrap();
        let (clone, _) = t.fork_clone();
        assert_eq!(clone.cloexec(Fd(2)), Ok(true));
        assert_eq!(clone.cloexec(Fd(0)), Ok(false));
    }
}
