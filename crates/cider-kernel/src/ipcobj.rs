//! Kernel-global pipe and UNIX-socket objects.
//!
//! Descriptors in [`FdTable`](crate::fdtable::FdTable) reference these
//! objects by id; the objects themselves live in the kernel so that both
//! ends observe one shared buffer, as with real pipes.

use std::collections::{BTreeMap, VecDeque};

use cider_abi::errno::Errno;

/// Identifier of a pipe object in the kernel table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PipeId(pub u64);

/// A descriptor's view of a pipe: which object and which direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeEnd {
    /// The pipe object.
    pub id: PipeId,
    /// True for the write end.
    pub write_end: bool,
}

/// Identifier of a socket pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketId(pub u64);

/// A descriptor's view of a socketpair: which pair and which side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketEnd {
    /// The socketpair object.
    pub id: SocketId,
    /// Side 0 or side 1.
    pub side: u8,
}

#[derive(Debug, Default)]
struct PipeObject {
    buf: VecDeque<u8>,
    // Descriptor reference counts per end: `dup` and `fork` both create
    // additional descriptors pointing at the same end, so an end is only
    // really closed when the last descriptor referencing it goes away.
    writers: u32,
    readers: u32,
}

/// Default pipe capacity (64 KiB, as on Linux).
pub const PIPE_CAPACITY: usize = 65536;

#[derive(Debug, Default)]
struct SocketObject {
    // buf[i] holds data travelling *towards* side i.
    buf: [VecDeque<u8>; 2],
    // Descriptor reference counts per side (see `PipeObject`).
    refs: [u32; 2],
}

/// Kernel table of live pipes and socketpairs.
#[derive(Debug, Default)]
pub struct IpcObjects {
    pipes: BTreeMap<u64, PipeObject>,
    sockets: BTreeMap<u64, SocketObject>,
    next_id: u64,
}

impl IpcObjects {
    /// Empty table.
    pub fn new() -> IpcObjects {
        IpcObjects::default()
    }

    /// Allocates a new pipe, returning its id.
    pub fn create_pipe(&mut self) -> PipeId {
        let id = self.next_id;
        self.next_id += 1;
        self.pipes.insert(
            id,
            PipeObject {
                buf: VecDeque::new(),
                writers: 1,
                readers: 1,
            },
        );
        PipeId(id)
    }

    /// Allocates a connected socketpair, returning its id.
    pub fn create_socketpair(&mut self) -> SocketId {
        let id = self.next_id;
        self.next_id += 1;
        self.sockets.insert(
            id,
            SocketObject {
                buf: [VecDeque::new(), VecDeque::new()],
                refs: [1, 1],
            },
        );
        SocketId(id)
    }

    /// Writes to a pipe.
    ///
    /// # Errors
    ///
    /// `EPIPE` if the read end is closed, `EAGAIN` when the buffer is
    /// full (the simulator never blocks the host).
    pub fn pipe_write(
        &mut self,
        id: PipeId,
        data: &[u8],
    ) -> Result<usize, Errno> {
        let p = self.pipes.get_mut(&id.0).ok_or(Errno::EBADF)?;
        if p.readers == 0 {
            return Err(Errno::EPIPE);
        }
        let room = PIPE_CAPACITY.saturating_sub(p.buf.len());
        if room == 0 {
            return Err(Errno::EAGAIN);
        }
        let n = data.len().min(room);
        p.buf.extend(&data[..n]);
        Ok(n)
    }

    /// Reads from a pipe.
    ///
    /// # Errors
    ///
    /// `EAGAIN` when empty but the write end is still open. Returns
    /// `Ok(0)` at EOF (write end closed, buffer drained).
    pub fn pipe_read(
        &mut self,
        id: PipeId,
        buf: &mut [u8],
    ) -> Result<usize, Errno> {
        let p = self.pipes.get_mut(&id.0).ok_or(Errno::EBADF)?;
        if p.buf.is_empty() {
            return if p.writers > 0 {
                Err(Errno::EAGAIN)
            } else {
                Ok(0)
            };
        }
        let n = buf.len().min(p.buf.len());
        for b in buf.iter_mut().take(n) {
            *b = p.buf.pop_front().expect("checked non-empty");
        }
        Ok(n)
    }

    /// Bytes currently readable from a pipe (used by `select`).
    pub fn pipe_readable(&self, id: PipeId) -> usize {
        self.pipes.get(&id.0).map(|p| p.buf.len()).unwrap_or(0)
    }

    /// Drops one descriptor reference to an end; an end counts as closed
    /// when its last reference goes, and the object is destroyed when
    /// both ends are closed.
    pub fn pipe_close(&mut self, end: PipeEnd) {
        if let Some(p) = self.pipes.get_mut(&end.id.0) {
            if end.write_end {
                p.writers = p.writers.saturating_sub(1);
            } else {
                p.readers = p.readers.saturating_sub(1);
            }
            if p.writers == 0 && p.readers == 0 {
                self.pipes.remove(&end.id.0);
            }
        }
    }

    /// Adds a descriptor reference to an end (`dup`, `fork`).
    pub fn pipe_retain(&mut self, end: PipeEnd) {
        if let Some(p) = self.pipes.get_mut(&end.id.0) {
            if end.write_end {
                p.writers += 1;
            } else {
                p.readers += 1;
            }
        }
    }

    /// Sends towards the peer of `from_side`.
    ///
    /// # Errors
    ///
    /// `EPIPE` if the peer closed; `EAGAIN` when the peer's buffer is full.
    pub fn socket_send(
        &mut self,
        id: SocketId,
        from_side: u8,
        data: &[u8],
    ) -> Result<usize, Errno> {
        let s = self.sockets.get_mut(&id.0).ok_or(Errno::EBADF)?;
        let to = (1 - from_side) as usize;
        if s.refs[to] == 0 {
            return Err(Errno::EPIPE);
        }
        let room = PIPE_CAPACITY.saturating_sub(s.buf[to].len());
        if room == 0 {
            return Err(Errno::EAGAIN);
        }
        let n = data.len().min(room);
        s.buf[to].extend(&data[..n]);
        Ok(n)
    }

    /// Receives data queued towards `side`.
    ///
    /// # Errors
    ///
    /// `EAGAIN` when empty with the peer still open; `Ok(0)` at EOF.
    pub fn socket_recv(
        &mut self,
        id: SocketId,
        side: u8,
        buf: &mut [u8],
    ) -> Result<usize, Errno> {
        let s = self.sockets.get_mut(&id.0).ok_or(Errno::EBADF)?;
        let q = &mut s.buf[side as usize];
        if q.is_empty() {
            let peer_open = s.refs[(1 - side) as usize] > 0;
            return if peer_open { Err(Errno::EAGAIN) } else { Ok(0) };
        }
        let n = buf.len().min(q.len());
        for b in buf.iter_mut().take(n) {
            *b = q.pop_front().expect("checked non-empty");
        }
        Ok(n)
    }

    /// Bytes queued towards `side` (used by `select` and the eventpump).
    pub fn socket_readable(&self, id: SocketId, side: u8) -> usize {
        self.sockets
            .get(&id.0)
            .map(|s| s.buf[side as usize].len())
            .unwrap_or(0)
    }

    /// Drops one descriptor reference to a side; destroys the pair when
    /// the last reference to both sides is gone.
    pub fn socket_close(&mut self, end: SocketEnd) {
        if let Some(s) = self.sockets.get_mut(&end.id.0) {
            let side = end.side as usize;
            s.refs[side] = s.refs[side].saturating_sub(1);
            if s.refs[0] == 0 && s.refs[1] == 0 {
                self.sockets.remove(&end.id.0);
            }
        }
    }

    /// Adds a descriptor reference to a side (`dup`, `fork`).
    pub fn socket_retain(&mut self, end: SocketEnd) {
        if let Some(s) = self.sockets.get_mut(&end.id.0) {
            s.refs[end.side as usize] += 1;
        }
    }

    /// Live object count (leak detector for tests).
    pub fn live_objects(&self) -> usize {
        self.pipes.len() + self.sockets.len()
    }

    /// Exports the table — ids, end liveness, and the exact buffered
    /// bytes — as stable `(key, value)` records for whole-device
    /// checkpointing. Buffer contents matter: a restored device must
    /// read back precisely the bytes its crashed predecessor had in
    /// flight.
    pub fn ckpt_records(&self) -> Vec<(String, String)> {
        let mut out = vec![("next_id".to_string(), self.next_id.to_string())];
        for (id, p) in &self.pipes {
            let (a, b) = p.buf.as_slices();
            out.push((
                format!("pipe:{id:06}"),
                format!(
                    "w={} r={} len={} digest={:016x}",
                    p.writers > 0,
                    p.readers > 0,
                    p.buf.len(),
                    crate::kernel::fnv1a_pair(a, b),
                ),
            ));
        }
        for (id, s) in &self.sockets {
            for side in 0..2 {
                let (a, b) = s.buf[side].as_slices();
                out.push((
                    format!("sock:{id:06}/{side}"),
                    format!(
                        "open={} len={} digest={:016x}",
                        s.refs[side] > 0,
                        s.buf[side].len(),
                        crate::kernel::fnv1a_pair(a, b),
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_roundtrip() {
        let mut t = IpcObjects::new();
        let id = t.create_pipe();
        assert_eq!(t.pipe_write(id, b"hello").unwrap(), 5);
        let mut buf = [0u8; 8];
        assert_eq!(t.pipe_read(id, &mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
    }

    #[test]
    fn pipe_empty_gives_eagain_then_eof() {
        let mut t = IpcObjects::new();
        let id = t.create_pipe();
        let mut buf = [0u8; 4];
        assert_eq!(t.pipe_read(id, &mut buf), Err(Errno::EAGAIN));
        t.pipe_close(PipeEnd {
            id,
            write_end: true,
        });
        assert_eq!(t.pipe_read(id, &mut buf), Ok(0));
    }

    #[test]
    fn pipe_write_after_reader_close_is_epipe() {
        let mut t = IpcObjects::new();
        let id = t.create_pipe();
        t.pipe_close(PipeEnd {
            id,
            write_end: false,
        });
        assert_eq!(t.pipe_write(id, b"x"), Err(Errno::EPIPE));
    }

    #[test]
    fn pipe_capacity_enforced() {
        let mut t = IpcObjects::new();
        let id = t.create_pipe();
        let big = vec![0u8; PIPE_CAPACITY + 100];
        assert_eq!(t.pipe_write(id, &big).unwrap(), PIPE_CAPACITY);
        assert_eq!(t.pipe_write(id, b"x"), Err(Errno::EAGAIN));
    }

    #[test]
    fn pipe_destroyed_when_both_ends_close() {
        let mut t = IpcObjects::new();
        let id = t.create_pipe();
        assert_eq!(t.live_objects(), 1);
        t.pipe_close(PipeEnd {
            id,
            write_end: true,
        });
        assert_eq!(t.live_objects(), 1);
        t.pipe_close(PipeEnd {
            id,
            write_end: false,
        });
        assert_eq!(t.live_objects(), 0);
    }

    #[test]
    fn retained_pipe_ends_survive_one_close() {
        let mut t = IpcObjects::new();
        let id = t.create_pipe();
        let w = PipeEnd {
            id,
            write_end: true,
        };
        let r = PipeEnd {
            id,
            write_end: false,
        };
        // A fork duplicates both descriptors: two refs per end.
        t.pipe_retain(w);
        t.pipe_retain(r);
        // The child exits, closing its copies; the parent's stay usable.
        t.pipe_close(w);
        t.pipe_close(r);
        assert_eq!(t.pipe_write(id, b"still here").unwrap(), 10);
        let mut buf = [0u8; 16];
        assert_eq!(t.pipe_read(id, &mut buf).unwrap(), 10);
        t.pipe_close(w);
        t.pipe_close(r);
        assert_eq!(t.live_objects(), 0);
    }

    #[test]
    fn retained_socket_side_survives_one_close() {
        let mut t = IpcObjects::new();
        let id = t.create_socketpair();
        let s0 = SocketEnd { id, side: 0 };
        t.socket_retain(s0);
        t.socket_close(s0);
        // Side 0 still has a live reference: the peer sees no EPIPE.
        t.socket_send(id, 1, b"hi").unwrap();
        t.socket_close(s0);
        assert_eq!(t.socket_send(id, 1, b"x"), Err(Errno::EPIPE));
    }

    #[test]
    fn socketpair_is_bidirectional() {
        let mut t = IpcObjects::new();
        let id = t.create_socketpair();
        t.socket_send(id, 0, b"ping").unwrap();
        t.socket_send(id, 1, b"pong").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(t.socket_recv(id, 1, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"ping");
        assert_eq!(t.socket_recv(id, 0, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn socket_eof_and_epipe() {
        let mut t = IpcObjects::new();
        let id = t.create_socketpair();
        t.socket_close(SocketEnd { id, side: 1 });
        assert_eq!(t.socket_send(id, 0, b"x"), Err(Errno::EPIPE));
        let mut buf = [0u8; 1];
        assert_eq!(t.socket_recv(id, 0, &mut buf), Ok(0));
    }

    #[test]
    fn socket_readable_tracks_queue() {
        let mut t = IpcObjects::new();
        let id = t.create_socketpair();
        assert_eq!(t.socket_readable(id, 1), 0);
        t.socket_send(id, 0, b"abc").unwrap();
        assert_eq!(t.socket_readable(id, 1), 3);
        assert_eq!(t.socket_readable(id, 0), 0);
    }
}
