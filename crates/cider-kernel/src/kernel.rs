//! The kernel façade: processes, traps, signals, and virtual-time
//! accounting, tied together behind typed `sys_*` operations.
//!
//! Two usage levels coexist, mirroring a real system:
//!
//! * **trap level** — [`Kernel::trap`] takes a raw syscall number plus
//!   register arguments and routes them through the calling thread's
//!   [`Personality`](crate::dispatch::Personality), exactly as a binary's
//!   `svc` instruction would. This is the path benchmarks measure.
//! * **typed level** — the `sys_*` methods implement the operations
//!   themselves (and charge syscall entry/exit cost); personalities'
//!   dispatch tables bottom out here.
//!
//! A vanilla kernel has a single Linux personality and no persona
//! machinery; installing any additional personality flips
//! `cider_enabled`, which adds the per-trap persona check the paper
//! measured at 8.5 % of a null syscall.

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use cider_abi::convention::CpuFlags;
use cider_abi::errno::Errno;
use cider_abi::ids::{Fd, Pid, Tid};
use cider_abi::memorystatus::PressureLevel;
use cider_abi::persona::Persona;
use cider_abi::signal::Signal;
use cider_abi::types::{OpenFlags, Stat};
use cider_fault::{FaultLayer, FaultSite};
use cider_sched::Scheduler;
use cider_trace::{EventKind, TraceContext, TraceSink};

use crate::binfmt::{BinaryLoaderRef, ExecImage};
use crate::clock::VirtualClock;
use crate::device::DeviceRegistry;
use crate::dispatch::{
    DispatchError, PersonalityRef, SyscallArgs, SyscallTable,
    SyscallTableBuilder, TrapResult, UserTrapResult,
};
use crate::fdtable::FileObject;
use crate::ipcobj::IpcObjects;
use crate::memorystatus::MemoryStatus;
use crate::process::{
    DeliveredSignal, PersonalityId, Process, ProcessState, SigDisposition,
    Thread, ThreadState, UserCallback, WaitChannel,
};
use crate::profile::DeviceProfile;
use crate::vfs::Vfs;
use crate::warm::WarmStart;

/// A registered program behaviour: the "main" of a simulated binary.
///
/// Behaviours are `Send + Sync` closures so a booted kernel — programs
/// and all — can be handed to a fleet worker thread.
pub type ProgramBehavior = Arc<dyn Fn(&mut Kernel, Tid) -> i32 + Send + Sync>;

/// Typed storage for kernel extensions — state that higher layers
/// (Cider) compile into the kernel. Handlers `take` their state out,
/// operate with both the state and the kernel borrowed, and `insert` it
/// back.
#[derive(Default)]
pub struct Extensions {
    map: HashMap<std::any::TypeId, Box<dyn std::any::Any + Send>>,
}

impl std::fmt::Debug for Extensions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Extensions({} entries)", self.map.len())
    }
}

impl Extensions {
    /// Stores a value, replacing any previous value of the same type.
    pub fn insert<T: Send + 'static>(&mut self, value: T) {
        self.map
            .insert(std::any::TypeId::of::<T>(), Box::new(value));
    }

    /// Removes and returns the value of type `T`.
    pub fn take<T: 'static>(&mut self) -> Option<T> {
        self.map
            .remove(&std::any::TypeId::of::<T>())
            .and_then(|b| b.downcast::<T>().ok())
            .map(|b| *b)
    }

    /// Borrows the value of type `T`.
    pub fn get<T: 'static>(&self) -> Option<&T> {
        self.map
            .get(&std::any::TypeId::of::<T>())
            .and_then(|b| b.downcast_ref::<T>())
    }

    /// Mutably borrows the value of type `T`.
    pub fn get_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.map
            .get_mut(&std::any::TypeId::of::<T>())
            .and_then(|b| b.downcast_mut::<T>())
    }
}

/// Hook invoked after every successful `fork` (Cider uses this for Mach
/// IPC task initialisation).
pub trait ForkHook: Send + Sync {
    /// Observe a completed fork.
    fn post_fork(&self, k: &mut Kernel, parent: Pid, child: Pid);
}

/// Event counters exposed for tests and experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Traps dispatched through `Kernel::trap`.
    pub traps: u64,
    /// Typed syscalls executed.
    pub syscalls: u64,
    /// Successful forks.
    pub forks: u64,
    /// Successful execs.
    pub execs: u64,
    /// Process exits.
    pub exits: u64,
    /// Signals delivered to user space.
    pub signals_delivered: u64,
    /// atfork callbacks run.
    pub atfork_callbacks: u64,
    /// atexit callbacks run.
    pub atexit_callbacks: u64,
    /// Context switches.
    pub context_switches: u64,
    /// Persona checks performed on trap entry.
    pub persona_checks: u64,
}

/// The simulated domestic kernel.
pub struct Kernel {
    /// Virtual clock; all costs land here.
    pub clock: VirtualClock,
    /// Active device cost profile.
    pub profile: DeviceProfile,
    /// The filesystem.
    pub vfs: Vfs,
    /// Pipes and socketpairs.
    pub ipc: IpcObjects,
    /// Device registry with `device_add` hooks.
    pub devices: DeviceRegistry,
    /// Event counters.
    pub counters: KernelCounters,
    /// Extension state compiled into the kernel by higher layers.
    pub extensions: Extensions,
    /// Observability sink. Disabled (a no-op) by default; tracing reads
    /// the virtual clock but never charges it, so enabling it cannot
    /// perturb any measurement.
    pub trace: TraceSink,
    /// Deterministic fault-injection layer. Inactive (empty plan) by
    /// default; an inactive layer takes an early-out with zero side
    /// effects, so fault-free runs are bit-identical to a kernel
    /// without the layer.
    pub faults: FaultLayer,
    /// Virtual-time preemptive scheduler: per-priority run queues,
    /// quantum accounting, and the seeded tie-breaker. The kernel
    /// charges trap time against it and asks for preemption decisions;
    /// the scheduler itself never touches the clock.
    pub sched: Scheduler,
    /// Zygote-style warm-start state: the prelinked dyld shared cache
    /// and copy-on-write fork counters. Disabled by default — the cold
    /// machine the goldens describe; test beds opt in via
    /// [`crate::warm::WarmStart::set_enabled`].
    pub warm: WarmStart,
    /// Jetsam bands, footprint accounting, and pressure-driven kills.
    /// Pure bookkeeping: nothing is tracked (and no cost is charged)
    /// until the app-framework layer registers processes, so untracked
    /// workloads stay byte-identical to a kernel without it.
    pub memorystatus: MemoryStatus,
    /// Wait channels whose `wakeup` was swallowed by the
    /// [`FaultSite::SchedWakeup`] injection; flushed (threads finally
    /// woken) at the next scheduling point so virtual time cannot
    /// deadlock.
    deferred_wakeups: Vec<WaitChannel>,
    procs: BTreeMap<u32, Process>,
    threads: BTreeMap<u32, Thread>,
    next_pid: u32,
    next_tid: u32,
    next_wait_channel: u64,
    personalities: Vec<PersonalityRef>,
    binfmts: Vec<BinaryLoaderRef>,
    fork_hooks: Vec<Arc<dyn ForkHook>>,
    programs: HashMap<String, ProgramBehavior>,
    current: Option<Tid>,
    cider_enabled: bool,
    linux_personality: PersonalityId,
    /// Recycled out-of-band buffers. The simulator runs one trap at a
    /// time, so this kernel-level pool is the "per-thread" scratch
    /// space of a real kernel: handlers draw from it instead of
    /// allocating, and trap callers hand finished `out_data` buffers
    /// back with [`Kernel::recycle_scratch`].
    scratch: Vec<Vec<u8>>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("profile", &self.profile.name)
            .field("clock", &self.clock)
            .field("procs", &self.procs.len())
            .field("threads", &self.threads.len())
            .field("personalities", &self.personalities.len())
            .finish()
    }
}

impl Kernel {
    /// Default scheduler tie-breaker seed. Every boot uses the same
    /// fixed seed so two identical workloads produce byte-identical
    /// context-switch sequences; experiments vary it via
    /// [`Scheduler::reseed`].
    pub const DEFAULT_SCHED_SEED: u64 = 0xC1DE_5EED;

    /// Boots a kernel with the given device profile and a single Linux
    /// personality. No processes exist yet; use [`Kernel::spawn_process`].
    pub fn boot(profile: DeviceProfile) -> Kernel {
        let mut k = Kernel {
            clock: VirtualClock::new(),
            profile,
            vfs: Vfs::new(),
            ipc: IpcObjects::new(),
            devices: DeviceRegistry::new(),
            counters: KernelCounters::default(),
            extensions: Extensions::default(),
            trace: TraceSink::disabled(),
            faults: FaultLayer::inactive(),
            sched: Scheduler::new(Kernel::DEFAULT_SCHED_SEED),
            warm: WarmStart::new(),
            memorystatus: MemoryStatus::new(),
            deferred_wakeups: Vec::new(),
            procs: BTreeMap::new(),
            threads: BTreeMap::new(),
            next_pid: 1,
            next_tid: 1,
            next_wait_channel: 1,
            personalities: Vec::new(),
            binfmts: Vec::new(),
            fork_hooks: Vec::new(),
            programs: HashMap::new(),
            current: None,
            cider_enabled: false,
            linux_personality: 0,
            scratch: Vec::new(),
        };
        let linux = Arc::new(LinuxPersonality::new());
        k.linux_personality = k.register_personality(linux);
        // Registering the first (native) personality does not make the
        // kernel a multi-persona kernel.
        k.cider_enabled = false;
        k.vfs.mkdir_p("/dev").expect("fresh fs");
        k.vfs.mkdir_p("/tmp").expect("fresh fs");
        k
    }

    // ------------------------------------------------------------------
    // Registration APIs used by higher layers.
    // ------------------------------------------------------------------

    /// Registers a personality and returns its id. Multi-persona
    /// bookkeeping costs start only once [`Kernel::enable_cider`] is
    /// called (a native XNU kernel has several trap tables but no
    /// persona machinery).
    pub fn register_personality(
        &mut self,
        p: PersonalityRef,
    ) -> PersonalityId {
        self.personalities.push(p);
        self.personalities.len() - 1
    }

    /// Turns on the per-trap persona check and per-delivery persona
    /// lookup — the costs the paper measured at 8.5 % (null syscall) and
    /// 3 % (signal delivery) on a Cider kernel.
    pub fn enable_cider(&mut self) {
        self.cider_enabled = true;
    }

    /// Turns the persona machinery back off (used when modelling a
    /// native single-persona kernel that still registers extra
    /// personalities for its own trap tables).
    pub fn disable_cider(&mut self) {
        self.cider_enabled = false;
    }

    /// The id of the built-in Linux personality.
    pub fn linux_personality(&self) -> PersonalityId {
        self.linux_personality
    }

    /// Whether multi-persona support (and its per-trap check) is active.
    pub fn cider_enabled(&self) -> bool {
        self.cider_enabled
    }

    /// Registers a binary-format loader (consulted in order).
    pub fn register_binfmt(&mut self, l: BinaryLoaderRef) {
        self.binfmts.push(l);
    }

    /// Registers a post-fork hook.
    pub fn register_fork_hook(&mut self, h: Arc<dyn ForkHook>) {
        self.fork_hooks.push(h);
    }

    /// Registers a program behaviour under a symbol name; binaries whose
    /// loader reports that `entry_symbol` will run it.
    pub fn register_program(
        &mut self,
        symbol: impl Into<String>,
        body: ProgramBehavior,
    ) {
        self.programs.insert(symbol.into(), body);
    }

    // ------------------------------------------------------------------
    // Cost charging.
    // ------------------------------------------------------------------

    /// Charges CPU-bound virtual time, scaled by the device's CPU factor.
    pub fn charge_cpu(&mut self, ns: u64) {
        self.clock.advance(self.profile.cpu_ns(ns));
    }

    /// Charges unscaled virtual time (already device-absolute).
    pub fn charge_raw(&mut self, ns: u64) {
        self.clock.advance(ns);
    }

    fn charge_copy(&mut self, bytes: usize) {
        let ns = (bytes as f64 * self.profile.copy_byte_ns) as u64;
        self.charge_cpu(ns);
    }

    fn charge_path(&mut self, components: usize) {
        self.charge_cpu(self.profile.path_component_ns * components as u64);
    }

    fn enter_syscall(&mut self) {
        self.counters.syscalls += 1;
        self.charge_cpu(self.profile.syscall_entry_exit_ns);
    }

    // ------------------------------------------------------------------
    // Scratch buffers (zero-alloc out-of-band data).
    // ------------------------------------------------------------------

    /// Takes an empty buffer from the scratch pool, or a fresh one if
    /// the pool is dry. Handlers use this for `out_data` they build
    /// (pipe/socket reads, stat encodings, received Mach messages).
    pub fn take_scratch(&mut self) -> Vec<u8> {
        self.scratch.pop().unwrap_or_default()
    }

    /// Returns a finished buffer to the scratch pool. Trap callers that
    /// are done with `out_data` hand it back here so the next trap
    /// reuses the allocation instead of making a new one.
    pub fn recycle_scratch(&mut self, mut buf: Vec<u8>) {
        if buf.capacity() > 0 && self.scratch.len() < 8 {
            buf.clear();
            self.scratch.push(buf);
        }
    }

    // ------------------------------------------------------------------
    // Tracing.
    // ------------------------------------------------------------------

    /// A trace context for a thread at the current virtual instant.
    /// Foreign means the thread's personality is not the built-in Linux
    /// one. Cheap, but only call under `trace.is_enabled()`.
    pub fn trace_ctx(&self, tid: Tid) -> TraceContext {
        match self.thread(tid) {
            Ok(t) => TraceContext::thread(
                self.clock.now_ns(),
                t.pid,
                tid,
                t.personality != self.linux_personality,
            ),
            Err(_) => TraceContext::kernel(self.clock.now_ns()),
        }
    }

    fn trace_vfs(&self, tid: Tid, op: &'static str, bytes: u64) {
        if self.trace.is_enabled() {
            self.trace
                .record(self.trace_ctx(tid), EventKind::VfsOp { op, bytes });
            self.trace.add(&format!("vfs/{op}/bytes"), bytes);
            self.trace.incr(&format!("vfs/{op}/ops"));
        }
    }

    // ------------------------------------------------------------------
    // Fault injection.
    // ------------------------------------------------------------------

    /// Consults the fault layer at a named site. Returns `true` when
    /// the scheduled fault should fire, recording it in the ledger and
    /// the trace. With an inactive layer this is a branch on an empty
    /// map and nothing else — no clock, no counters, no RNG.
    pub fn fault_at(&mut self, site: FaultSite) -> bool {
        if !self.faults.is_active() {
            return false;
        }
        let now = self.clock.now_ns();
        match self.faults.try_inject(site, now) {
            Some(seq) => {
                if self.trace.is_enabled() {
                    self.trace.record(
                        TraceContext::kernel(now),
                        EventKind::FaultInjected {
                            site: site.name(),
                            seq,
                        },
                    );
                    self.trace.incr("fault/injected");
                    self.trace.incr(&format!("fault/{}", site.name()));
                }
                true
            }
            None => false,
        }
    }

    /// Records a recovery action (supervisor respawn, watchdog kick,
    /// fence fallback) in the fault ledger and the trace.
    pub fn trace_recovery(&mut self, action: impl Into<String>) {
        let action = action.into();
        let now = self.clock.now_ns();
        if self.trace.is_enabled() {
            self.trace.record(
                TraceContext::kernel(now),
                EventKind::Recovery {
                    action: action.clone().into(),
                },
            );
            self.trace.incr("recovery/actions");
        }
        self.faults.record_recovery(action, now);
    }

    // ------------------------------------------------------------------
    // Threads and processes.
    // ------------------------------------------------------------------

    /// Creates a fresh process with one thread running the Linux
    /// personality. Returns `(pid, tid)`.
    pub fn spawn_process(&mut self) -> (Pid, Tid) {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        let mut proc = Process::new(pid, None);
        proc.threads.push(tid);
        self.procs.insert(pid.0, proc);
        self.threads.insert(
            tid.0,
            Thread {
                tid,
                pid,
                state: ThreadState::Runnable,
                personality: self.linux_personality,
                sigmask: 0,
                pending: Vec::new(),
                delivered: Vec::new(),
                ext: None,
            },
        );
        self.sched.register(tid, Persona::Domestic);
        if self.current.is_none() {
            self.current = Some(tid);
            self.sched.on_dispatch(tid);
        }
        (pid, tid)
    }

    /// Adds a thread to an existing process (`clone`). The new thread
    /// inherits the creating thread's personality and extension state.
    ///
    /// # Errors
    ///
    /// `ESRCH` if `tid` is unknown.
    pub fn spawn_thread(&mut self, tid: Tid) -> Result<Tid, Errno> {
        self.enter_syscall();
        let parent = self.thread(tid)?;
        let pid = parent.pid;
        let new = Thread {
            tid: Tid(self.next_tid),
            pid,
            state: ThreadState::Runnable,
            personality: parent.personality,
            sigmask: parent.sigmask,
            pending: Vec::new(),
            delivered: Vec::new(),
            ext: parent.ext.as_ref().map(|e| e.clone_ext()),
        };
        let ntid = new.tid;
        self.next_tid += 1;
        self.threads.insert(ntid.0, new);
        self.process_mut(pid)?.threads.push(ntid);
        let persona = self.sched.identity(tid).unwrap_or(Persona::Domestic);
        self.sched.register(ntid, persona);
        Ok(ntid)
    }

    /// Immutable thread lookup.
    ///
    /// # Errors
    ///
    /// `ESRCH` if unknown.
    pub fn thread(&self, tid: Tid) -> Result<&Thread, Errno> {
        self.threads.get(&tid.0).ok_or(Errno::ESRCH)
    }

    /// Mutable thread lookup.
    ///
    /// # Errors
    ///
    /// `ESRCH` if unknown.
    pub fn thread_mut(&mut self, tid: Tid) -> Result<&mut Thread, Errno> {
        self.threads.get_mut(&tid.0).ok_or(Errno::ESRCH)
    }

    /// Immutable process lookup.
    ///
    /// # Errors
    ///
    /// `ESRCH` if unknown.
    pub fn process(&self, pid: Pid) -> Result<&Process, Errno> {
        self.procs.get(&pid.0).ok_or(Errno::ESRCH)
    }

    /// Mutable process lookup.
    ///
    /// # Errors
    ///
    /// `ESRCH` if unknown.
    pub fn process_mut(&mut self, pid: Pid) -> Result<&mut Process, Errno> {
        self.procs.get_mut(&pid.0).ok_or(Errno::ESRCH)
    }

    /// The process owning a thread.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn process_of(&self, tid: Tid) -> Result<&Process, Errno> {
        let pid = self.thread(tid)?.pid;
        self.process(pid)
    }

    fn process_of_mut(&mut self, tid: Tid) -> Result<&mut Process, Errno> {
        let pid = self.thread(tid)?.pid;
        self.process_mut(pid)
    }

    /// Currently scheduled thread.
    pub fn current(&self) -> Option<Tid> {
        self.current
    }

    /// Switches the CPU to another thread, charging a context switch.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown or exited.
    pub fn switch_to(&mut self, tid: Tid) -> Result<(), Errno> {
        let t = self.thread(tid)?;
        if t.state == ThreadState::Exited {
            return Err(Errno::ESRCH);
        }
        self.dispatch_switch(tid);
        Ok(())
    }

    /// The single place "current thread" changes: requeues the outgoing
    /// thread (if still runnable), charges exactly one context switch
    /// when the thread actually changes, and records the switch in the
    /// trace.
    fn dispatch_switch(&mut self, tid: Tid) {
        if self.current == Some(tid) {
            self.sched.on_dispatch(tid);
            return;
        }
        let prev = self.current;
        if let Some(p) = prev {
            if self
                .threads
                .get(&p.0)
                .is_some_and(|t| t.state == ThreadState::Runnable)
            {
                self.sched.requeue(p);
            }
        }
        self.counters.context_switches += 1;
        self.charge_cpu(self.profile.context_switch_ns);
        self.current = Some(tid);
        self.sched.on_dispatch(tid);
        if self.trace.is_enabled() {
            let ctx = self.trace_ctx(tid);
            self.trace.record(
                ctx,
                EventKind::ContextSwitch {
                    from: prev.map_or(0, |t| t.0),
                    to: tid.0,
                },
            );
            self.trace.incr("sched/ctx_switch");
            self.trace
                .observe("sched/runq_depth", self.sched.queued_depth() as u64);
        }
    }

    /// One scheduler step: flushes any fault-deferred wakeups, asks the
    /// run queues for the next thread, and switches to it. With nothing
    /// queued the current thread keeps the CPU. Returns the thread now
    /// running.
    pub fn schedule(&mut self) -> Option<Tid> {
        self.flush_deferred_wakeups();
        let now = self.clock.now_ns();
        if let Some(d) = self.sched.pick_next(now) {
            self.dispatch_switch(d.tid);
        }
        self.current
    }

    /// Allocates a fresh wait channel.
    pub fn new_wait_channel(&mut self) -> WaitChannel {
        let c = WaitChannel(self.next_wait_channel);
        self.next_wait_channel += 1;
        c
    }

    /// Parks a thread on a wait channel.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn block_thread(
        &mut self,
        tid: Tid,
        chan: WaitChannel,
    ) -> Result<(), Errno> {
        self.thread_mut(tid)?.state = ThreadState::Blocked(chan);
        self.sched.on_block(tid);
        Ok(())
    }

    /// Wakes every thread parked on a channel; returns how many.
    ///
    /// Under an armed [`FaultSite::SchedWakeup`] the wakeup is *lost*:
    /// sleepers stay parked and the channel is remembered, to be
    /// flushed at the next scheduling point (or the next wakeup call) —
    /// the supervised recovery that keeps virtual time from
    /// deadlocking.
    pub fn wakeup(&mut self, chan: WaitChannel) -> usize {
        self.flush_deferred_wakeups();
        if self.fault_at(FaultSite::SchedWakeup) {
            self.deferred_wakeups.push(chan);
            return 0;
        }
        self.wake_all(chan)
    }

    fn wake_all(&mut self, chan: WaitChannel) -> usize {
        let mut woken = Vec::new();
        for t in self.threads.values_mut() {
            if t.state == ThreadState::Blocked(chan) {
                t.state = ThreadState::Runnable;
                woken.push(t.tid);
            }
        }
        for &t in &woken {
            self.sched.on_wake(t, self.current);
        }
        woken.len()
    }

    fn flush_deferred_wakeups(&mut self) {
        if self.deferred_wakeups.is_empty() {
            return;
        }
        let chans = std::mem::take(&mut self.deferred_wakeups);
        let mut n = 0;
        for chan in chans {
            n += self.wake_all(chan);
        }
        if n > 0 {
            self.trace_recovery(format!("sched/deferred_wakeup_flush({n})"));
        }
    }

    // ------------------------------------------------------------------
    // Trap entry (register-level path).
    // ------------------------------------------------------------------

    /// Dispatches a raw trap from a thread, as its `svc` instruction
    /// would: persona check (on a Cider kernel), personality lookup, and
    /// personality-specific decode/dispatch/encode.
    pub fn trap(
        &mut self,
        tid: Tid,
        number: i64,
        args: &SyscallArgs,
    ) -> UserTrapResult {
        self.counters.traps += 1;
        let trap_start_ns = self.clock.now_ns();
        let enter_ctx = if self.trace.is_enabled() {
            Some(self.trace_ctx(tid))
        } else {
            None
        };
        if self.cider_enabled {
            // The paper's 8.5 % null-syscall overhead: every trap on a
            // Cider kernel checks the calling thread's persona.
            self.counters.persona_checks += 1;
            self.charge_cpu(self.profile.persona_check_ns);
        }
        let personality = match self.thread(tid) {
            Ok(t) => t.personality,
            Err(e) => {
                return UserTrapResult {
                    reg: -(e.as_raw() as i64),
                    flags: CpuFlags::default(),
                    out_data: Vec::new(),
                }
            }
        };
        let p = self.personalities[personality].clone();
        if let Some(ctx) = enter_ctx {
            self.trace.record(
                ctx,
                EventKind::SyscallEnter {
                    nr: number,
                    translated: p.translate_syscall(number),
                },
            );
        }
        let result = p.trap(self, tid, number, args);
        if let Some(ctx) = enter_ctx {
            let exit_ctx = TraceContext {
                ts_ns: self.clock.now_ns(),
                ..ctx
            };
            self.trace.record(
                exit_ctx,
                EventKind::SyscallExit {
                    nr: number,
                    ret: result.reg,
                },
            );
            // Per-persona, per-syscall virtual latency of the whole trap
            // (persona check included — that's what user space sees).
            let name = p
                .syscall_name(number)
                .map(|n| Cow::Borrowed(n.as_str()))
                .unwrap_or_else(|| Cow::Owned(format!("nr{number}")));
            self.trace.observe(
                &format!("syscall/{}/{name}", ctx.persona_label()),
                exit_ctx.ts_ns - ctx.ts_ns,
            );
            self.trace.incr("kernel/traps");
            if self.cider_enabled {
                self.trace.incr("kernel/persona_checks");
            }
        }
        // Trap-return boundary: charge the trap's elapsed virtual time
        // against the thread's quantum and preempt if the slice expired
        // or a strictly-higher-priority thread woke up during the trap.
        let now = self.clock.now_ns();
        self.sched
            .charge(tid, now.saturating_sub(trap_start_ns), now);
        if self.sched.take_resched() {
            self.schedule();
        }
        result
    }

    /// The personality object a thread traps into.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn personality_of(&self, tid: Tid) -> Result<PersonalityRef, Errno> {
        Ok(self.personalities[self.thread(tid)?.personality].clone())
    }

    /// Looks up a registered personality by id.
    pub fn personality(&self, id: PersonalityId) -> PersonalityRef {
        self.personalities[id].clone()
    }

    // ------------------------------------------------------------------
    // Typed syscall implementations.
    // ------------------------------------------------------------------

    /// `getpid`.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn sys_getpid(&mut self, tid: Tid) -> Result<Pid, Errno> {
        self.enter_syscall();
        Ok(self.thread(tid)?.pid)
    }

    /// `gettid`.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn sys_gettid(&mut self, tid: Tid) -> Result<Tid, Errno> {
        self.enter_syscall();
        self.thread(tid)?;
        Ok(tid)
    }

    /// `open`.
    ///
    /// # Errors
    ///
    /// VFS resolution errors; `EEXIST` with `CREAT|EXCL`.
    pub fn sys_open(
        &mut self,
        tid: Tid,
        path: &str,
        flags: OpenFlags,
    ) -> Result<Fd, Errno> {
        self.enter_syscall();
        self.charge_cpu(self.profile.vfs_op_ns);
        self.trace_vfs(tid, "open", 0);
        let resolved = self.vfs.resolve(path);
        let ino = match resolved {
            Ok(r) => {
                self.charge_path(r.components_walked);
                if flags.contains(OpenFlags::CREAT)
                    && flags.contains(OpenFlags::EXCL)
                {
                    return Err(Errno::EEXIST);
                }
                if flags.contains(OpenFlags::TRUNC) && flags.writable() {
                    let now = self.clock.now_ns();
                    self.vfs.set_time(now);
                    self.vfs.truncate(r.ino, 0)?;
                }
                r.ino
            }
            Err(Errno::ENOENT) if flags.contains(OpenFlags::CREAT) => {
                if self.fault_at(FaultSite::VfsCreate) {
                    return Err(Errno::ENOSPC);
                }
                let now = self.clock.now_ns();
                self.vfs.set_time(now);
                self.vfs.write_file(path, Vec::new())?
            }
            Err(e) => return Err(e),
        };
        if let Some(dev) = self.vfs.device_of(ino) {
            let proc = self.process_of_mut(tid)?;
            return Ok(proc.fds.insert(FileObject::Device(dev)));
        }
        let proc = self.process_of_mut(tid)?;
        Ok(proc.fds.insert(FileObject::File {
            ino,
            offset: 0,
            writable: flags.writable(),
            readable: flags.readable(),
        }))
    }

    /// `close`.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown descriptors.
    pub fn sys_close(&mut self, tid: Tid, fd: Fd) -> Result<(), Errno> {
        self.enter_syscall();
        self.charge_cpu(self.profile.vfs_op_ns / 2);
        self.trace_vfs(tid, "close", 0);
        let obj = self.process_of_mut(tid)?.fds.remove(fd)?;
        match obj {
            FileObject::Pipe(end) => self.ipc.pipe_close(end),
            FileObject::Socket(end) => self.ipc.socket_close(end),
            _ => {}
        }
        Ok(())
    }

    /// `read`. Returns the bytes read (the simulator's stand-in for the
    /// user buffer).
    ///
    /// # Errors
    ///
    /// `EBADF` on a non-readable descriptor; `EAGAIN` on an empty pipe or
    /// socket whose peer is still open.
    pub fn sys_read(
        &mut self,
        tid: Tid,
        fd: Fd,
        len: usize,
    ) -> Result<Vec<u8>, Errno> {
        self.enter_syscall();
        self.trace_vfs(tid, "read", len as u64);
        let obj = self.process_of(tid)?.fds.get(fd)?.clone();
        match obj {
            FileObject::File {
                ino,
                offset,
                readable,
                ..
            } => {
                if !readable {
                    return Err(Errno::EBADF);
                }
                if self.fault_at(FaultSite::VfsRead) {
                    return Err(Errno::EIO);
                }
                let data = self.vfs.read_at(ino, offset, len)?;
                self.charge_copy(data.len());
                if let FileObject::File { offset, .. } =
                    self.process_of_mut(tid)?.fds.get_mut(fd)?
                {
                    *offset += data.len() as u64;
                }
                Ok(data)
            }
            FileObject::Pipe(end) => {
                if end.write_end {
                    return Err(Errno::EBADF);
                }
                let mut buf = self.take_scratch();
                buf.resize(len, 0);
                let n = match self.ipc.pipe_read(end.id, &mut buf) {
                    Ok(n) => n,
                    Err(e) => {
                        self.recycle_scratch(buf);
                        return Err(e);
                    }
                };
                buf.truncate(n);
                self.charge_copy(n);
                Ok(buf)
            }
            FileObject::Socket(end) => {
                let mut buf = self.take_scratch();
                buf.resize(len, 0);
                let n = match self.ipc.socket_recv(end.id, end.side, &mut buf)
                {
                    Ok(n) => n,
                    Err(e) => {
                        self.recycle_scratch(buf);
                        return Err(e);
                    }
                };
                buf.truncate(n);
                self.charge_copy(n);
                Ok(buf)
            }
            FileObject::Device(_) => {
                // Devices deliver nothing by default; drivers that matter
                // (input, framebuffer) are accessed via their subsystems.
                Ok(Vec::new())
            }
            FileObject::Console => Err(Errno::EBADF),
        }
    }

    /// `write`. Returns bytes written.
    ///
    /// # Errors
    ///
    /// `EBADF` on a non-writable descriptor, `EPIPE` on a broken pipe.
    pub fn sys_write(
        &mut self,
        tid: Tid,
        fd: Fd,
        data: &[u8],
    ) -> Result<usize, Errno> {
        self.enter_syscall();
        self.trace_vfs(tid, "write", data.len() as u64);
        let obj = self.process_of(tid)?.fds.get(fd)?.clone();
        match obj {
            FileObject::File {
                ino,
                offset,
                writable,
                ..
            } => {
                if !writable {
                    return Err(Errno::EBADF);
                }
                if self.fault_at(FaultSite::VfsWrite) {
                    return Err(Errno::EIO);
                }
                self.charge_copy(data.len());
                let now = self.clock.now_ns();
                self.vfs.set_time(now);
                let n = self.vfs.write_at(ino, offset, data)?;
                if let FileObject::File { offset, .. } =
                    self.process_of_mut(tid)?.fds.get_mut(fd)?
                {
                    *offset += n as u64;
                }
                Ok(n)
            }
            FileObject::Pipe(end) => {
                if !end.write_end {
                    return Err(Errno::EBADF);
                }
                self.charge_copy(data.len());
                self.ipc.pipe_write(end.id, data)
            }
            FileObject::Socket(end) => {
                self.charge_copy(data.len());
                self.ipc.socket_send(end.id, end.side, data)
            }
            FileObject::Console => {
                self.charge_copy(data.len());
                self.process_of_mut(tid)?.console.extend_from_slice(data);
                Ok(data.len())
            }
            FileObject::Device(_) => Ok(data.len()),
        }
    }

    /// Direct (uncached) storage read of `len` bytes — the PassMark
    /// storage path. Charges flash bandwidth instead of copy cost.
    ///
    /// # Errors
    ///
    /// Same as [`Kernel::sys_read`].
    pub fn sys_read_direct(
        &mut self,
        tid: Tid,
        fd: Fd,
        len: usize,
    ) -> Result<Vec<u8>, Errno> {
        let cost = self.profile.storage_cost_ns(len as u64, false);
        self.charge_raw(cost);
        self.sys_read(tid, fd, len)
    }

    /// Direct (uncached) storage write — the PassMark storage path.
    ///
    /// # Errors
    ///
    /// Same as [`Kernel::sys_write`].
    pub fn sys_write_direct(
        &mut self,
        tid: Tid,
        fd: Fd,
        data: &[u8],
    ) -> Result<usize, Errno> {
        let cost = self.profile.storage_cost_ns(data.len() as u64, true);
        self.charge_raw(cost);
        self.sys_write(tid, fd, data)
    }

    /// `unlink`.
    ///
    /// # Errors
    ///
    /// VFS errors (`ENOENT`, `ENOTEMPTY`).
    pub fn sys_unlink(&mut self, tid: Tid, path: &str) -> Result<(), Errno> {
        self.enter_syscall();
        self.thread(tid)?;
        self.charge_cpu(self.profile.vfs_op_ns);
        self.trace_vfs(tid, "unlink", 0);
        if let Ok(r) = self.vfs.resolve(path) {
            self.charge_path(r.components_walked);
        }
        self.vfs.unlink(path)
    }

    /// `mkdir`.
    ///
    /// # Errors
    ///
    /// VFS errors.
    pub fn sys_mkdir(&mut self, tid: Tid, path: &str) -> Result<(), Errno> {
        self.enter_syscall();
        self.thread(tid)?;
        self.charge_cpu(self.profile.vfs_op_ns);
        self.trace_vfs(tid, "mkdir", 0);
        let now = self.clock.now_ns();
        self.vfs.set_time(now);
        self.vfs.mkdir_p(path).map(|_| ())
    }

    /// `stat`.
    ///
    /// # Errors
    ///
    /// VFS resolution errors.
    pub fn sys_stat(&mut self, tid: Tid, path: &str) -> Result<Stat, Errno> {
        self.enter_syscall();
        self.thread(tid)?;
        self.trace_vfs(tid, "stat", 0);
        let r = self.vfs.resolve(path)?;
        self.charge_path(r.components_walked);
        Ok(self.vfs.stat(r.ino))
    }

    /// `pipe`: returns `(read_fd, write_fd)`.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn sys_pipe(&mut self, tid: Tid) -> Result<(Fd, Fd), Errno> {
        self.enter_syscall();
        self.charge_cpu(self.profile.vfs_op_ns);
        let id = self.ipc.create_pipe();
        let proc = self.process_of_mut(tid)?;
        let r = proc.fds.insert(FileObject::Pipe(crate::ipcobj::PipeEnd {
            id,
            write_end: false,
        }));
        let w = proc.fds.insert(FileObject::Pipe(crate::ipcobj::PipeEnd {
            id,
            write_end: true,
        }));
        Ok((r, w))
    }

    /// `socketpair(AF_UNIX)`.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn sys_socketpair(&mut self, tid: Tid) -> Result<(Fd, Fd), Errno> {
        self.enter_syscall();
        self.charge_cpu(self.profile.vfs_op_ns);
        let id = self.ipc.create_socketpair();
        let proc = self.process_of_mut(tid)?;
        let a =
            proc.fds
                .insert(FileObject::Socket(crate::ipcobj::SocketEnd {
                    id,
                    side: 0,
                }));
        let b =
            proc.fds
                .insert(FileObject::Socket(crate::ipcobj::SocketEnd {
                    id,
                    side: 1,
                }));
        Ok((a, b))
    }

    /// `dup`.
    ///
    /// # Errors
    ///
    /// `EBADF`.
    pub fn sys_dup(&mut self, tid: Tid, fd: Fd) -> Result<Fd, Errno> {
        self.enter_syscall();
        let new = self.process_of_mut(tid)?.fds.dup(fd)?;
        match *self.process_of(tid)?.fds.get(new)? {
            FileObject::Pipe(end) => self.ipc.pipe_retain(end),
            FileObject::Socket(end) => self.ipc.socket_retain(end),
            _ => {}
        }
        Ok(new)
    }

    /// Passes an open descriptor to another process (the `SCM_RIGHTS`
    /// mechanism, used by CiderPress to hand the eventpump its bridge
    /// socket). The descriptor *moves*: it is closed in the sender and
    /// reopened in the receiver (descriptor objects are not refcounted
    /// across processes in the simulator). Returns the descriptor's
    /// number in the receiving process.
    ///
    /// # Errors
    ///
    /// `EBADF` if `fd` is not open in the sender, `ESRCH` for unknown
    /// threads.
    pub fn sys_pass_fd(
        &mut self,
        from: Tid,
        fd: Fd,
        to: Tid,
    ) -> Result<Fd, Errno> {
        self.enter_syscall();
        self.thread(to)?;
        let obj = self.process_of_mut(from)?.fds.remove(fd)?;
        Ok(self.process_of_mut(to)?.fds.insert(obj))
    }

    /// `select` over read descriptors: returns those currently readable.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown fds; `EINVAL` when this kernel's select
    /// implementation cannot handle the descriptor count (the XNU
    /// pathology at 250 fds).
    pub fn sys_select(
        &mut self,
        tid: Tid,
        read_fds: &[Fd],
    ) -> Result<Vec<Fd>, Errno> {
        self.enter_syscall();
        let Some(cost) = self.profile.select_cost_ns(read_fds.len()) else {
            // The implementation "simply failed to complete" (§6.2).
            self.charge_cpu(self.profile.select_per_fd_ns * 1000);
            return Err(Errno::EINVAL);
        };
        self.charge_raw(cost);
        let proc = self.process_of(tid)?;
        let mut ready = Vec::new();
        for &fd in read_fds {
            let obj = proc.fds.get(fd)?;
            let readable = match obj {
                FileObject::Pipe(end) => {
                    !end.write_end && self.ipc.pipe_readable(end.id) > 0
                }
                FileObject::Socket(end) => {
                    self.ipc.socket_readable(end.id, end.side) > 0
                }
                FileObject::File { .. } => true,
                FileObject::Device(_) => false,
                FileObject::Console => false,
            };
            if readable {
                ready.push(fd);
            }
        }
        Ok(ready)
    }

    /// `chdir`.
    ///
    /// # Errors
    ///
    /// VFS resolution errors; `ENOTDIR` if the target is not a directory.
    pub fn sys_chdir(&mut self, tid: Tid, path: &str) -> Result<(), Errno> {
        self.enter_syscall();
        let r = self.vfs.resolve(path)?;
        self.charge_path(r.components_walked);
        if self.vfs.stat(r.ino).file_type
            != cider_abi::types::FileType::Directory
        {
            return Err(Errno::ENOTDIR);
        }
        self.process_of_mut(tid)?.cwd = path.to_string();
        Ok(())
    }

    /// `getcwd`.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn sys_getcwd(&mut self, tid: Tid) -> Result<String, Errno> {
        self.enter_syscall();
        Ok(self.process_of(tid)?.cwd.clone())
    }

    /// `nanosleep` — advances virtual time.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn sys_nanosleep(&mut self, tid: Tid, ns: u64) -> Result<(), Errno> {
        self.enter_syscall();
        self.thread(tid)?;
        self.charge_raw(ns);
        // The sleeper gives up the CPU at expiry: requeue it at the
        // tail of its band so the scheduler arbitrates at the next
        // scheduling point (trap return, or an explicit `schedule`).
        self.sched.yield_now(tid);
        Ok(())
    }

    /// `sched_yield` / `thread_switch(SWITCH_OPTION_NONE)`: requeue the
    /// caller at the tail of its priority band and run the scheduler.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn sys_sched_yield(&mut self, tid: Tid) -> Result<(), Errno> {
        self.enter_syscall();
        self.thread(tid)?;
        self.sched.yield_now(tid);
        self.sched.take_resched();
        self.schedule();
        Ok(())
    }

    /// `swtch_pri` / `thread_switch(SWITCH_OPTION_DEPRESS)`: depress the
    /// caller to the lowest user band until its next dispatch, yield,
    /// and reschedule. Returns whether another thread got the CPU.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn sys_sched_depress(&mut self, tid: Tid) -> Result<bool, Errno> {
        self.enter_syscall();
        self.thread(tid)?;
        self.sched.depress(tid);
        self.sched.take_resched();
        self.schedule();
        Ok(self.current != Some(tid))
    }

    /// `swtch`: give up the CPU only if some other thread is runnable.
    /// Returns whether another thread got the CPU.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn sys_swtch(&mut self, tid: Tid) -> Result<bool, Errno> {
        self.enter_syscall();
        self.thread(tid)?;
        if !self.sched.other_runnable(tid) {
            return Ok(false);
        }
        self.sched.yield_now(tid);
        self.sched.take_resched();
        self.schedule();
        Ok(self.current != Some(tid))
    }

    // ------------------------------------------------------------------
    // fork / exec / exit / wait.
    // ------------------------------------------------------------------

    /// `fork`: duplicates the calling thread's process. Runs atfork
    /// callbacks, duplicates every page-table entry and descriptor, and
    /// fires post-fork hooks. Returns the child pid (and its main tid).
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn sys_fork(&mut self, tid: Tid) -> Result<(Pid, Tid), Errno> {
        self.enter_syscall();
        let parent_pid = self.thread(tid)?.pid;
        self.charge_cpu(self.profile.fork_base_ns);

        // User space: atfork prepare handlers run in the parent first.
        let prepare = self.process(parent_pid)?.callbacks.atfork_prepare.len();
        self.run_user_callbacks(prepare, true);

        // Kernel: duplicate the address space. Eagerly — visiting every
        // PTE now — on the cold machine; lazily when warm start is on:
        // no PTE is copied here, the child pays pte_copy_ns page by
        // page at first write (sys_page_write), and debt dropped by a
        // following exec/exit is never paid at all.
        if self.fault_at(FaultSite::ForkPteCopy) {
            return Err(Errno::ENOMEM);
        }
        let cow = self.warm.is_enabled();
        let (mm, ptes) = if cow {
            self.process(parent_pid)?.mm.fork_duplicate_cow()
        } else {
            self.process(parent_pid)?.mm.fork_duplicate()
        };
        if cow {
            self.warm.stats.cow_forks += 1;
            self.warm.stats.cow_deferred_ptes += ptes;
        } else {
            self.charge_cpu(self.profile.pte_copy_ns * ptes);
        }
        if self.trace.is_enabled() {
            self.trace.record(
                self.trace_ctx(tid),
                EventKind::PageTableCopy {
                    ptes: if cow { 0 } else { ptes },
                },
            );
            if cow {
                self.trace.add("mm/cow_deferred_ptes", ptes);
            } else {
                self.trace.add("mm/forked_ptes", ptes);
            }
            self.trace.incr("kernel/forks");
        }

        // Kernel: clone the descriptor table. Every cloned pipe/socket
        // descriptor is a new reference to the shared end, so the child's
        // later close (or exit) cannot tear the object out from under the
        // parent.
        let (fds, fd_count) = self.process(parent_pid)?.fds.fork_clone();
        for (_, obj) in fds.iter() {
            match *obj {
                FileObject::Pipe(end) => self.ipc.pipe_retain(end),
                FileObject::Socket(end) => self.ipc.socket_retain(end),
                _ => {}
            }
        }
        self.charge_cpu(self.profile.fd_clone_ns * fd_count as u64);

        let child_pid = Pid(self.next_pid);
        self.next_pid += 1;
        let child_tid = Tid(self.next_tid);
        self.next_tid += 1;

        let parent = self.process(parent_pid)?;
        let mut child = Process::new(child_pid, Some(parent_pid));
        child.mm = mm;
        child.fds = fds;
        child.cwd = parent.cwd.clone();
        child.callbacks = parent.callbacks.clone();
        child.program = parent.program.clone();
        child.sig_handlers = parent.sig_handlers.clone();
        child.threads.push(child_tid);

        let child_thread = self.thread(tid)?.fork_clone(child_tid, child_pid);
        self.procs.insert(child_pid.0, child);
        self.threads.insert(child_tid.0, child_thread);
        self.process_mut(parent_pid)?.children.push(child_pid);
        let persona = self.sched.identity(tid).unwrap_or(Persona::Domestic);
        self.sched.register(child_tid, persona);

        // User space: parent + child atfork handlers run after the fork.
        let parent_cbs =
            self.process(parent_pid)?.callbacks.atfork_parent.len();
        let child_cbs = self.process(child_pid)?.callbacks.atfork_child.len();
        self.run_user_callbacks(parent_cbs + child_cbs, true);

        for hook in self.fork_hooks.clone() {
            hook.post_fork(self, parent_pid, child_pid);
        }

        self.counters.forks += 1;
        Ok((child_pid, child_tid))
    }

    /// A user-level store to `addr`: the copy-on-write first-write
    /// fault path. If the containing page is CoW-pending (deferred by a
    /// warm-mode fork), the page materializes here — `pte_copy_ns` is
    /// charged now, and the elapsed time lands on the faulting thread's
    /// quantum exactly as trap time does, so preemption decisions are
    /// identical whether the copy was paid at fork or at fault. Writes
    /// to already-materialized or never-deferred pages are free.
    /// Returns the number of PTEs materialized (0 or 1).
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown, `EFAULT` if `addr` is not
    /// mapped.
    pub fn sys_page_write(
        &mut self,
        tid: Tid,
        addr: u64,
    ) -> Result<u64, Errno> {
        let fault_start_ns = self.clock.now_ns();
        let pid = self.thread(tid)?.pid;
        let materialized = self.process_mut(pid)?.mm.page_write(addr)?;
        if materialized > 0 {
            self.charge_cpu(self.profile.pte_copy_ns * materialized);
            self.warm.stats.cow_faults += materialized;
            if self.trace.is_enabled() {
                self.trace.record(
                    self.trace_ctx(tid),
                    EventKind::PageTableCopy { ptes: materialized },
                );
                self.trace.incr("mm/cow_faults");
            }
        }
        let now = self.clock.now_ns();
        self.sched
            .charge(tid, now.saturating_sub(fault_start_ns), now);
        if self.sched.take_resched() {
            self.schedule();
        }
        Ok(materialized)
    }

    fn run_user_callbacks(&mut self, count: usize, atfork: bool) {
        for _ in 0..count {
            self.charge_cpu(self.profile.user_callback_ns);
            if atfork {
                self.counters.atfork_callbacks += 1;
            } else {
                self.counters.atexit_callbacks += 1;
            }
        }
    }

    /// `execve`: replaces the calling process's image. The old address
    /// space and all registered user callbacks are discarded *without*
    /// running them (the mechanism behind fork+exec(android) being
    /// cheaper than fork+exit for an iOS parent, §6.2).
    ///
    /// # Errors
    ///
    /// `ENOENT` if the path is missing, `ENOEXEC` if no loader claims the
    /// image, plus loader-specific errors.
    pub fn sys_exec(
        &mut self,
        tid: Tid,
        path: &str,
        argv: &[&str],
    ) -> Result<(), Errno> {
        self.enter_syscall();
        self.charge_cpu(self.profile.exec_base_ns);
        let r = self.vfs.resolve(path)?;
        self.charge_path(r.components_walked);
        let bytes = self.vfs.read_file(path)?;
        self.charge_copy(bytes.len().min(4096)); // header inspection

        let loader = self
            .binfmts
            .iter()
            .find(|l| l.can_load(&bytes))
            .cloned()
            .ok_or(Errno::ENOEXEC)?;

        // Tear down the old image: mappings, user callbacks, and any
        // descriptor marked close-on-exec vanish.
        let closed = {
            let proc = self.process_of_mut(tid)?;
            proc.mm.clear();
            proc.callbacks = Default::default();
            proc.fds.close_on_exec()
        };
        for (_, obj) in closed {
            match obj {
                FileObject::Pipe(end) => self.ipc.pipe_close(end),
                FileObject::Socket(end) => self.ipc.socket_close(end),
                _ => {}
            }
        }

        let image = ExecImage {
            path: path.to_string(),
            bytes,
            argv: argv.iter().map(|s| s.to_string()).collect(),
        };
        let loaded = loader.load(self, tid, &image)?;

        let proc = self.process_of_mut(tid)?;
        proc.program.path = path.to_string();
        proc.program.argv = image.argv.clone();
        proc.program.entry_symbol = loaded.entry_symbol;
        proc.program.format = loaded.format;
        proc.program.dylib_count = loaded.dylib_count;
        self.counters.execs += 1;
        Ok(())
    }

    /// Runs the program behaviour of the calling thread's process (its
    /// "main"), then exits with the returned code. Returns the exit code.
    ///
    /// # Errors
    ///
    /// `ENOEXEC` if the process has no registered behaviour.
    pub fn run_entry(&mut self, tid: Tid) -> Result<i32, Errno> {
        let symbol = self
            .process_of(tid)?
            .program
            .entry_symbol
            .clone()
            .ok_or(Errno::ENOEXEC)?;
        let body =
            self.programs.get(&symbol).cloned().ok_or(Errno::ENOEXEC)?;
        let code = body(self, tid);
        // The program may have exec'd away or already exited.
        if let Ok(p) = self.process_of(tid) {
            if p.state == ProcessState::Running {
                self.sys_exit(tid, code)?;
            }
        }
        Ok(code)
    }

    /// `exit`: runs atexit handlers, closes descriptors, tears down the
    /// address space, and turns the process into a zombie.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the thread is unknown.
    pub fn sys_exit(&mut self, tid: Tid, code: i32) -> Result<(), Errno> {
        self.enter_syscall();
        self.charge_cpu(self.profile.exit_base_ns);
        let pid = self.thread(tid)?.pid;

        // User space: atexit handlers (one per dyld image on iOS).
        let atexit = self.process(pid)?.callbacks.atexit.len();
        self.run_user_callbacks(atexit, false);

        // Close descriptors.
        let fds: Vec<Fd> =
            self.process(pid)?.fds.iter().map(|(fd, _)| fd).collect();
        for fd in fds {
            if let Ok(obj) = self.process_mut(pid)?.fds.remove(fd) {
                match obj {
                    FileObject::Pipe(end) => self.ipc.pipe_close(end),
                    FileObject::Socket(end) => self.ipc.socket_close(end),
                    _ => {}
                }
            }
        }

        let threads = self.process(pid)?.threads.clone();
        for t in threads {
            self.thread_mut(t)?.state = ThreadState::Exited;
            self.sched.remove(t);
        }
        let proc = self.process_mut(pid)?;
        proc.mm.clear();
        proc.state = ProcessState::Zombie(code);
        let parent = proc.parent;
        self.memorystatus.untrack(pid);
        self.counters.exits += 1;

        if let Some(parent) = parent {
            let _ = self.post_signal_process(parent, Signal::SIGCHLD);
        }
        if self.current == Some(tid) {
            self.current = None;
        }
        Ok(())
    }

    /// `waitpid`: reaps a zombie child and returns its exit code.
    ///
    /// # Errors
    ///
    /// `ECHILD` if `child` is not a child of the caller; `EAGAIN` if the
    /// child has not exited yet (the scripted simulator never blocks).
    pub fn sys_waitpid(&mut self, tid: Tid, child: Pid) -> Result<i32, Errno> {
        self.enter_syscall();
        let pid = self.thread(tid)?.pid;
        if !self.process(pid)?.children.contains(&child) {
            return Err(Errno::ECHILD);
        }
        let code = match self.process(child)?.state {
            ProcessState::Zombie(code) => code,
            ProcessState::Running => return Err(Errno::EAGAIN),
        };
        // Reap: remove the zombie and its threads.
        let threads = self.process(child)?.threads.clone();
        for t in threads {
            self.threads.remove(&t.0);
            self.sched.remove(t);
        }
        self.procs.remove(&child.0);
        self.process_mut(pid)?.children.retain(|&c| c != child);
        Ok(code)
    }

    // ------------------------------------------------------------------
    // Memorystatus (jetsam).
    // ------------------------------------------------------------------

    /// `memorystatus_control(SET_PRIORITY)`: parks a running process
    /// in a jetsam band, registering it with the subsystem if needed.
    /// Returns the clamped band.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the caller or target is unknown, or the target is a
    /// zombie.
    pub fn sys_memorystatus_set_priority(
        &mut self,
        tid: Tid,
        target: Pid,
        band: i64,
    ) -> Result<u8, Errno> {
        self.enter_syscall();
        let _ = self.thread(tid)?;
        if self.process(target)?.state != ProcessState::Running {
            return Err(Errno::ESRCH);
        }
        let band = cider_abi::memorystatus::clamp_jetsam_band(band);
        self.memorystatus.track(target, band);
        Ok(band)
    }

    /// `memorystatus_control(GET_LEVEL)`: the current memory-pressure
    /// level derived from the device watermarks.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the calling thread is unknown.
    pub fn sys_memorystatus_get_level(
        &mut self,
        tid: Tid,
    ) -> Result<PressureLevel, Errno> {
        self.enter_syscall();
        let _ = self.thread(tid)?;
        Ok(self.memorystatus.level())
    }

    /// One pass of the memorystatus thread: while the pressure level
    /// leaves a kill window open, jetsam the lowest-band (then
    /// largest-footprint) victim; then consult the
    /// [`FaultSite::JetsamKill`] injection for a spurious kill under a
    /// transient spike. Returns the victims, in kill order.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the calling thread is unknown.
    pub fn sys_jetsam_tick(&mut self, tid: Tid) -> Result<Vec<Pid>, Errno> {
        use cider_abi::memorystatus::JETSAM_PRIORITY_FOREGROUND;
        self.enter_syscall();
        let _ = self.thread(tid)?;
        self.memorystatus.stats.ticks += 1;
        let mut killed = Vec::new();
        while let Some(below) = self.memorystatus.level().kill_below() {
            let Some(victim) = self.memorystatus.select_victim(below) else {
                break;
            };
            self.jetsam_kill(victim, "pressure")?;
            self.memorystatus.stats.pressure_kills += 1;
            killed.push(victim);
        }
        if self.fault_at(FaultSite::JetsamKill) {
            // A transient spike the watermarks never saw: the window
            // reaches the foreground band inclusive.
            if let Some(victim) = self
                .memorystatus
                .select_victim(JETSAM_PRIORITY_FOREGROUND + 1)
            {
                self.jetsam_kill(victim, "fault")?;
                self.memorystatus.stats.fault_kills += 1;
                killed.push(victim);
            }
        }
        Ok(killed)
    }

    /// Kills one jetsam victim through the ordinary exit path (same
    /// zombie a SIGKILL leaves) and counts it in the trace.
    fn jetsam_kill(
        &mut self,
        victim: Pid,
        why: &'static str,
    ) -> Result<(), Errno> {
        let vtid =
            self.process(victim)?.threads.clone().into_iter().find(|t| {
                self.thread(*t)
                    .map(|th| th.state != ThreadState::Exited)
                    .unwrap_or(false)
            });
        match vtid {
            Some(vtid) => {
                self.sys_exit(vtid, 128 + Signal::SIGKILL.as_raw())?;
            }
            // No live thread: drop the bookkeeping entry directly.
            None => self.memorystatus.untrack(victim),
        }
        if self.trace.is_enabled() {
            self.trace.incr("app/jetsam_kill");
            self.trace.incr(&format!("app/jetsam_kill/{why}"));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Signals.
    // ------------------------------------------------------------------

    /// `sigaction`: installs a disposition for a signal (internal Linux
    /// numbering).
    ///
    /// # Errors
    ///
    /// `EINVAL` for SIGKILL/SIGSTOP.
    pub fn sys_sigaction(
        &mut self,
        tid: Tid,
        sig: Signal,
        disp: SigDisposition,
    ) -> Result<(), Errno> {
        self.enter_syscall();
        if sig.is_uncatchable() && disp != SigDisposition::Default {
            return Err(Errno::EINVAL);
        }
        self.process_of_mut(tid)?
            .sig_handlers
            .insert(sig.as_raw(), disp);
        Ok(())
    }

    /// `kill`: posts a signal (internal numbering) to a process. If the
    /// target is the calling thread's own process, pending signals are
    /// delivered synchronously before return, as on syscall exit.
    ///
    /// # Errors
    ///
    /// `ESRCH` for unknown targets.
    pub fn sys_kill(
        &mut self,
        tid: Tid,
        target: Pid,
        sig: Signal,
    ) -> Result<(), Errno> {
        self.enter_syscall();
        self.post_signal_process(target, sig)?;
        if self.thread(tid)?.pid == target {
            self.deliver_pending(tid)?;
        }
        Ok(())
    }

    /// Queues a signal on a process's first live thread.
    ///
    /// # Errors
    ///
    /// `ESRCH` for unknown targets.
    pub fn post_signal_process(
        &mut self,
        target: Pid,
        sig: Signal,
    ) -> Result<(), Errno> {
        let tids = self.process(target)?.threads.clone();
        for t in tids {
            if self.thread(t)?.state != ThreadState::Exited {
                return self.post_signal_thread(t, sig);
            }
        }
        Err(Errno::ESRCH)
    }

    /// Queues a signal on a specific thread.
    ///
    /// # Errors
    ///
    /// `ESRCH` for unknown threads.
    pub fn post_signal_thread(
        &mut self,
        tid: Tid,
        sig: Signal,
    ) -> Result<(), Errno> {
        self.thread_mut(tid)?.pending.push(sig);
        Ok(())
    }

    /// Delivers all unmasked pending signals on a thread, performing the
    /// persona lookup, number translation, and frame construction that
    /// the paper's signal-handler microbenchmark measures. Returns how
    /// many signals reached user space.
    ///
    /// # Errors
    ///
    /// `ESRCH` for unknown threads.
    pub fn deliver_pending(&mut self, tid: Tid) -> Result<usize, Errno> {
        let pending = {
            let t = self.thread_mut(tid)?;
            let taken: Vec<Signal> = t
                .pending
                .iter()
                .copied()
                .filter(|s| t.sigmask & (1 << s.as_raw()) == 0)
                .collect();
            t.pending.retain(|s| t.sigmask & (1 << s.as_raw()) != 0);
            taken
        };
        if pending.is_empty() {
            return Ok(0);
        }
        let personality = self.personality_of(tid)?;
        let pid = self.thread(tid)?.pid;
        let mut delivered = 0;
        for sig in pending {
            if self.cider_enabled {
                // "the added cost of determining the persona of the
                // target thread" (§6.2).
                self.charge_cpu(self.profile.persona_signal_check_ns);
            }
            let disp = self
                .process(pid)?
                .sig_handlers
                .get(&sig.as_raw())
                .copied()
                .unwrap_or_default();
            match disp {
                SigDisposition::Ignore => continue,
                SigDisposition::Default => {
                    if sig == Signal::SIGCHLD || sig == Signal::SIGCONT {
                        continue; // default-ignored
                    }
                    // Default action: terminate the process.
                    self.sys_exit(tid, 128 + sig.as_raw())?;
                    return Ok(delivered);
                }
                SigDisposition::Handler(_) => {
                    let Some(user_number) = personality.signal_number(sig)
                    else {
                        continue; // no foreign equivalent: dropped
                    };
                    self.charge_cpu(self.profile.signal_base_ns);
                    self.charge_cpu(personality.signal_translation_ns());
                    let frame = personality.sigframe_bytes();
                    let frame_ns = (frame as f64
                        * self.profile.signal_frame_byte_ns)
                        as u64;
                    self.charge_cpu(frame_ns);
                    // Handler returns through sigreturn — one more trap.
                    self.charge_cpu(self.profile.syscall_entry_exit_ns);
                    if self.trace.is_enabled() {
                        let ctx = self.trace_ctx(tid);
                        if user_number != sig.as_raw() {
                            self.trace.record(
                                ctx,
                                EventKind::SignalTranslate {
                                    from: sig.as_raw(),
                                    to: user_number,
                                },
                            );
                            self.trace.incr("signal/translations");
                        }
                        self.trace.record(
                            ctx,
                            EventKind::SignalDeliver {
                                signal: user_number,
                                frame_bytes: frame as u64,
                            },
                        );
                        self.trace.incr(&format!(
                            "signal/{}/delivered",
                            ctx.persona_label()
                        ));
                        self.trace.observe(
                            &format!(
                                "signal/{}/frame_bytes",
                                ctx.persona_label()
                            ),
                            frame as u64,
                        );
                    }
                    self.thread_mut(tid)?.delivered.push(DeliveredSignal {
                        internal: sig,
                        user_number,
                        frame_bytes: frame,
                    });
                    self.counters.signals_delivered += 1;
                    delivered += 1;
                }
            }
        }
        Ok(delivered)
    }

    /// Console output captured for a process (its stdout).
    ///
    /// # Errors
    ///
    /// `ESRCH` for unknown processes.
    pub fn console_of(&self, pid: Pid) -> Result<&[u8], Errno> {
        Ok(&self.process(pid)?.console)
    }

    /// Registers user callbacks on a process, as dyld/libSystem do when
    /// loading images. `images` entries each register one atfork triple
    /// and one atexit handler.
    ///
    /// # Errors
    ///
    /// `ESRCH` for unknown processes.
    pub fn register_image_callbacks(
        &mut self,
        pid: Pid,
        images: &[String],
    ) -> Result<(), Errno> {
        let proc = self.process_mut(pid)?;
        for img in images {
            let cb = UserCallback { name: img.clone() };
            proc.callbacks.atfork_prepare.push(cb.clone());
            proc.callbacks.atfork_parent.push(cb.clone());
            proc.callbacks.atfork_child.push(cb.clone());
            proc.callbacks.atexit.push(cb);
        }
        Ok(())
    }

    /// Number of live (non-zombie) processes.
    pub fn live_processes(&self) -> usize {
        self.procs
            .values()
            .filter(|p| p.state == ProcessState::Running)
            .count()
    }

    /// Exports every kernel-owned piece of device state as named,
    /// ordered record sections for whole-device checkpointing
    /// (`cider-ckpt` assembles them into a `StateImage`). Two kernels
    /// that produce identical sections are observably identical: the
    /// records cover the virtual clock, event counters, allocator
    /// cursors, process and thread tables (including fd shapes, memory
    /// summaries, signal state, and console digests), the full VFS
    /// tree with file-content digests, in-flight pipe/socket bytes,
    /// scheduler bands, and fault-injection stream positions.
    ///
    /// Program behaviours (`register_program` closures) and
    /// personality dispatch tables are deliberately absent: they are
    /// code, not state, and are reconstructed by re-booting, which is
    /// why restore is replay-based.
    pub fn ckpt_sections(&self) -> Vec<(String, Vec<(String, String)>)> {
        vec![
            ("clock".to_string(), self.ckpt_clock()),
            ("kernel/counters".to_string(), self.ckpt_counters()),
            ("kernel/ids".to_string(), self.ckpt_ids()),
            ("kernel/procs".to_string(), self.ckpt_procs()),
            ("kernel/threads".to_string(), self.ckpt_threads()),
            ("kernel/vfs".to_string(), self.ckpt_vfs()),
            ("kernel/ipc".to_string(), self.ipc.ckpt_records()),
            ("kernel/warm".to_string(), self.ckpt_warm()),
            (
                "kernel/memorystatus".to_string(),
                vec![(
                    "memorystatus".to_string(),
                    self.memorystatus.ckpt_record(),
                )],
            ),
            ("sched".to_string(), self.sched.ckpt_records()),
            ("faults".to_string(), self.faults.ckpt_records()),
        ]
    }

    fn ckpt_warm(&self) -> Vec<(String, String)> {
        vec![("warm".to_string(), self.warm.ckpt_record())]
    }

    fn ckpt_clock(&self) -> Vec<(String, String)> {
        let m = self.clock.metrics();
        vec![
            ("now_ns".to_string(), self.clock.now_ns().to_string()),
            (
                "charges".to_string(),
                m.counter(crate::clock::CHARGES_COUNTER).to_string(),
            ),
            (
                "advanced_ns".to_string(),
                m.counter(crate::clock::ADVANCED_NS_COUNTER).to_string(),
            ),
            (
                "watchdog_limit_ns".to_string(),
                self.clock.watchdog_limit_ns().to_string(),
            ),
        ]
    }

    fn ckpt_counters(&self) -> Vec<(String, String)> {
        let c = &self.counters;
        [
            ("traps", c.traps),
            ("syscalls", c.syscalls),
            ("forks", c.forks),
            ("execs", c.execs),
            ("exits", c.exits),
            ("signals_delivered", c.signals_delivered),
            ("atfork_callbacks", c.atfork_callbacks),
            ("atexit_callbacks", c.atexit_callbacks),
            ("context_switches", c.context_switches),
            ("persona_checks", c.persona_checks),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
    }

    fn ckpt_ids(&self) -> Vec<(String, String)> {
        vec![
            ("next_pid".to_string(), self.next_pid.to_string()),
            ("next_tid".to_string(), self.next_tid.to_string()),
            (
                "next_wait_channel".to_string(),
                self.next_wait_channel.to_string(),
            ),
            (
                "current".to_string(),
                match self.current {
                    Some(t) => t.0.to_string(),
                    None => "-".to_string(),
                },
            ),
            ("cider_enabled".to_string(), self.cider_enabled.to_string()),
            (
                "linux_personality".to_string(),
                format!("{:?}", self.linux_personality),
            ),
            (
                "personalities".to_string(),
                self.personalities.len().to_string(),
            ),
            ("binfmts".to_string(), self.binfmts.len().to_string()),
            ("programs".to_string(), self.programs.len().to_string()),
            (
                "deferred_wakeups".to_string(),
                self.deferred_wakeups
                    .iter()
                    .map(|w| w.0.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            ),
        ]
    }

    fn ckpt_procs(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (pid, p) in &self.procs {
            let fds: Vec<String> = p
                .fds
                .iter()
                .map(|(fd, obj)| {
                    let ce = p.fds.cloexec(fd).unwrap_or(false);
                    format!("{}={:?}{}", fd.0, obj, if ce { "*" } else { "" })
                })
                .collect();
            let handlers: Vec<String> = p
                .sig_handlers
                .iter()
                .map(|(sig, d)| format!("{sig}={d:?}"))
                .collect();
            // CoW debt is appended only when present, so processes on
            // the cold machine keep their exact historical record
            // bytes.
            let cow = if p.mm.cow_pending_ptes() + p.mm.cow_dirty_pages() > 0 {
                format!(
                    "+cow{}p/{}d",
                    p.mm.cow_pending_ptes(),
                    p.mm.cow_dirty_pages()
                )
            } else {
                String::new()
            };
            out.push((
                format!("pid:{pid:06}"),
                format!(
                    "state={:?} parent={} cwd={} threads={:?} \
                     children={:?} fds=[{}] mm={}/{}p/{}B{} \
                     prog={}({}) fmt={} dylibs={} sig=[{}] \
                     console={:016x}/{}",
                    p.state,
                    p.parent.map(|x| x.0 as i64).unwrap_or(-1),
                    p.cwd,
                    p.threads.iter().map(|t| t.0).collect::<Vec<_>>(),
                    p.children.iter().map(|c| c.0).collect::<Vec<_>>(),
                    fds.join(" "),
                    p.mm.mapping_count(),
                    p.mm.total_ptes(),
                    p.mm.total_bytes(),
                    cow,
                    p.program.path,
                    p.program.argv.join(","),
                    p.program.format,
                    p.program.dylib_count,
                    handlers.join(" "),
                    fnv1a_pair(&p.console, &[]),
                    p.console.len(),
                ),
            ));
        }
        out
    }

    fn ckpt_threads(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (tid, t) in &self.threads {
            out.push((
                format!("tid:{tid:06}"),
                format!(
                    "pid={} state={:?} persona={:?} sigmask={:#x} \
                     pending={:?} delivered={} ext={}",
                    t.pid.0,
                    t.state,
                    t.personality,
                    t.sigmask,
                    t.pending,
                    t.delivered.len(),
                    t.ext.is_some(),
                ),
            ));
        }
        out
    }

    fn ckpt_vfs(&self) -> Vec<(String, String)> {
        let mut out = vec![(
            "node_count".to_string(),
            self.vfs.node_count().to_string(),
        )];
        self.ckpt_vfs_walk("/", 0, &mut out);
        out
    }

    fn ckpt_vfs_walk(
        &self,
        path: &str,
        depth: usize,
        out: &mut Vec<(String, String)>,
    ) {
        // Symlinked directory cycles are impossible to build through
        // the public VFS API today, but a depth cap keeps the walk
        // total even if that ever changes.
        if depth > 32 {
            return;
        }
        let Ok(r) = self.vfs.resolve(path) else {
            return;
        };
        let st = self.vfs.stat(r.ino);
        use cider_abi::types::FileType;
        let detail = match st.file_type {
            FileType::Regular => {
                let digest = self
                    .vfs
                    .read_file(path)
                    .map(|d| fnv1a_pair(&d, &[]))
                    .unwrap_or(0);
                format!(
                    "file mode={:o} size={} digest={digest:016x}",
                    st.mode, st.size
                )
            }
            FileType::Directory => {
                format!("dir mode={:o} entries={}", st.mode, st.size)
            }
            other => format!("{other:?} mode={:o} size={}", st.mode, st.size),
        };
        out.push((path.to_string(), detail));
        if st.file_type == FileType::Directory {
            if let Ok(names) = self.vfs.readdir(path) {
                for name in names {
                    let child = if path == "/" {
                        format!("/{name}")
                    } else {
                        format!("{path}/{name}")
                    };
                    self.ckpt_vfs_walk(&child, depth + 1, out);
                }
            }
        }
    }
}

/// FNV-1a over two byte slices (a `VecDeque`'s halves, or one slice and
/// an empty tail). Kept here so every kernel-side exporter hashes
/// content the same way.
pub(crate) fn fnv1a_pair(a: &[u8], b: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &byte in a.iter().chain(b) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ----------------------------------------------------------------------
// The vanilla Linux personality.
// ----------------------------------------------------------------------

/// The domestic kernel ABI: Linux syscall numbers, negative-errno error
/// convention, Linux signal numbers and frame.
#[derive(Debug)]
pub struct LinuxPersonality {
    table: SyscallTable,
}

impl Default for LinuxPersonality {
    fn default() -> Self {
        Self::new()
    }
}

/// Encodes a domestic [`Stat`] into the byte layout Linux user space
/// reads back from `stat64`: ino (8), mode (4), nlink (4), size (8),
/// blocks (8), mtime sec (8), mtime nsec (8) — 48 bytes. The 24-byte
/// identity prefix (ino/mode/nlink/size) matches the XNU `stat64`
/// layout so conformance diffs can compare the two shapes directly.
pub fn encode_linux_stat64(s: &Stat) -> Vec<u8> {
    use cider_abi::types::{bsd_mode, FileType};
    // Linux's S_IFMT values are numerically identical to BSD's, so the
    // shared constants serve both encodings.
    let type_bits = match s.file_type {
        FileType::Regular => bsd_mode::S_IFREG,
        FileType::Directory => bsd_mode::S_IFDIR,
        FileType::Symlink => bsd_mode::S_IFLNK,
        FileType::CharDevice => bsd_mode::S_IFCHR,
        FileType::Fifo => bsd_mode::S_IFIFO,
        FileType::Socket => bsd_mode::S_IFSOCK,
    };
    let mut out = Vec::with_capacity(48);
    out.extend_from_slice(&s.ino.to_le_bytes());
    out.extend_from_slice(&(type_bits | (s.mode & 0o7777)).to_le_bytes());
    out.extend_from_slice(&s.nlink.to_le_bytes());
    out.extend_from_slice(&s.size.to_le_bytes());
    out.extend_from_slice(&s.blocks.to_le_bytes());
    out.extend_from_slice(&s.mtime_sec.to_le_bytes());
    out.extend_from_slice(&(s.mtime_nsec as u64).to_le_bytes());
    out
}

impl LinuxPersonality {
    /// Builds the personality with its dispatch table.
    ///
    /// # Panics
    ///
    /// Panics if the static table has a collision (a bug by
    /// construction); fallible callers use [`LinuxPersonality::try_new`].
    pub fn new() -> LinuxPersonality {
        LinuxPersonality::try_new()
            .expect("static Linux dispatch table is collision-free")
    }

    /// Builds the personality, surfacing table collisions as
    /// [`DispatchError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`DispatchError::Collision`] if two handlers claim one number.
    pub fn try_new() -> Result<LinuxPersonality, DispatchError> {
        use cider_abi::syscall::LinuxSyscall as L;
        let mut t = SyscallTableBuilder::new();
        t.install(L::Getpid.number(), "getpid", |k, tid, _| {
            match k.sys_getpid(tid) {
                Ok(pid) => TrapResult::ok(pid.as_raw() as i64),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Gettid.number(), "gettid", |k, tid, _| {
            match k.sys_gettid(tid) {
                Ok(t) => TrapResult::ok(t.as_raw() as i64),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Read.number(), "read", |k, tid, args| {
            let fd = Fd(args.regs[0] as i32);
            let len = args.regs[2] as usize;
            match k.sys_read(tid, fd, len) {
                Ok(data) => TrapResult::with_data(data),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Write.number(), "write", |k, tid, args| {
            let fd = Fd(args.regs[0] as i32);
            let crate::dispatch::SyscallData::Bytes(data) = &args.data else {
                return TrapResult::err(Errno::EFAULT);
            };
            match k.sys_write(tid, fd, data) {
                Ok(n) => TrapResult::ok(n as i64),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Open.number(), "open", |k, tid, args| {
            let crate::dispatch::SyscallData::Path(path) = &args.data else {
                return TrapResult::err(Errno::EFAULT);
            };
            let flags = OpenFlags(args.regs[1] as u32);
            match k.sys_open(tid, path, flags) {
                Ok(fd) => TrapResult::ok(fd.as_raw() as i64),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Close.number(), "close", |k, tid, args| {
            match k.sys_close(tid, Fd(args.regs[0] as i32)) {
                Ok(()) => TrapResult::ok(0),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Fork.number(), "fork", |k, tid, _| {
            match k.sys_fork(tid) {
                Ok((pid, _)) => TrapResult::ok(pid.as_raw() as i64),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Exit.number(), "exit", |k, tid, args| {
            match k.sys_exit(tid, args.regs[0] as i32) {
                Ok(()) => TrapResult::ok(0),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Waitpid.number(), "waitpid", |k, tid, args| {
            match k.sys_waitpid(tid, Pid(args.regs[0] as u32)) {
                Ok(code) => TrapResult::ok(code as i64),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Execve.number(), "execve", |k, tid, args| {
            let crate::dispatch::SyscallData::Exec { path, argv } = &args.data
            else {
                return TrapResult::err(Errno::EFAULT);
            };
            let argv: Vec<&str> = argv.iter().map(|s| s.as_str()).collect();
            match k.sys_exec(tid, path, &argv) {
                Ok(()) => TrapResult::ok(0),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Sigaction.number(), "sigaction", |k, tid, args| {
            let Some(sig) = Signal::from_raw(args.regs[0] as i32) else {
                return TrapResult::err(Errno::EINVAL);
            };
            let disp = match args.regs[1] {
                0 => crate::process::SigDisposition::Default,
                1 => crate::process::SigDisposition::Ignore,
                h => crate::process::SigDisposition::Handler(h as u32),
            };
            match k.sys_sigaction(tid, sig, disp) {
                Ok(()) => TrapResult::ok(0),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Kill.number(), "kill", |k, tid, args| {
            let pid = Pid(args.regs[0] as u32);
            let Some(sig) = Signal::from_raw(args.regs[1] as i32) else {
                return TrapResult::err(Errno::EINVAL);
            };
            match k.sys_kill(tid, pid, sig) {
                Ok(()) => TrapResult::ok(0),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Pipe.number(), "pipe", |k, tid, _| {
            match k.sys_pipe(tid) {
                Ok((r, w)) => TrapResult::ok(
                    (r.as_raw() as i64) | ((w.as_raw() as i64) << 32),
                ),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Socketpair.number(), "socketpair", |k, tid, _| match k
            .sys_socketpair(tid)
        {
            Ok((a, b)) => TrapResult::ok(
                (a.as_raw() as i64) | ((b.as_raw() as i64) << 32),
            ),
            Err(e) => TrapResult::err(e),
        })?;
        t.install(L::Dup.number(), "dup", |k, tid, args| {
            match k.sys_dup(tid, Fd(args.regs[0] as i32)) {
                Ok(fd) => TrapResult::ok(fd.as_raw() as i64),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Select.number(), "select", |k, tid, args| {
            let crate::dispatch::SyscallData::FdSet(fds) = &args.data else {
                return TrapResult::err(Errno::EFAULT);
            };
            let fds: Vec<Fd> = fds.iter().map(|&f| Fd(f)).collect();
            match k.sys_select(tid, &fds) {
                Ok(ready) => TrapResult::ok(ready.len() as i64),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Unlink.number(), "unlink", |k, tid, args| {
            let crate::dispatch::SyscallData::Path(path) = &args.data else {
                return TrapResult::err(Errno::EFAULT);
            };
            match k.sys_unlink(tid, path) {
                Ok(()) => TrapResult::ok(0),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Mkdir.number(), "mkdir", |k, tid, args| {
            let crate::dispatch::SyscallData::Path(path) = &args.data else {
                return TrapResult::err(Errno::EFAULT);
            };
            match k.sys_mkdir(tid, path) {
                Ok(()) => TrapResult::ok(0),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::Chdir.number(), "chdir", |k, tid, args| {
            let crate::dispatch::SyscallData::Path(path) = &args.data else {
                return TrapResult::err(Errno::EFAULT);
            };
            match k.sys_chdir(tid, path) {
                Ok(()) => TrapResult::ok(0),
                Err(e) => TrapResult::err(e),
            }
        })?;
        t.install(L::SchedYield.number(), "sched_yield", |k, tid, _| match k
            .sys_sched_yield(tid)
        {
            Ok(()) => TrapResult::ok(0),
            Err(e) => TrapResult::err(e),
        })?;
        t.install(L::Nanosleep.number(), "nanosleep", |k, tid, args| match k
            .sys_nanosleep(tid, args.regs[0] as u64)
        {
            Ok(()) => TrapResult::ok(0),
            Err(e) => TrapResult::err(e),
        })?;
        t.install(L::Stat64.number(), "stat64", |k, tid, args| {
            let crate::dispatch::SyscallData::Path(path) = &args.data else {
                return TrapResult::err(Errno::EFAULT);
            };
            match k.sys_stat(tid, path) {
                Ok(stat) => {
                    let mut r = TrapResult::ok(0);
                    r.out_data = encode_linux_stat64(&stat);
                    r
                }
                Err(e) => TrapResult::err(e),
            }
        })?;
        Ok(LinuxPersonality { table: t.build() })
    }

    /// The dispatch table (exposed for introspection in tests).
    pub fn table(&self) -> &SyscallTable {
        &self.table
    }
}

impl crate::dispatch::Personality for LinuxPersonality {
    fn name(&self) -> &'static str {
        "linux"
    }

    fn syscall_name(&self, number: i64) -> Option<cider_abi::SyscallName> {
        self.table.name(number as i32)
    }

    fn trap(
        &self,
        k: &mut Kernel,
        tid: Tid,
        number: i64,
        args: &SyscallArgs<'_>,
    ) -> UserTrapResult {
        let Some(handler) = self.table.handler(number as i32) else {
            return UserTrapResult {
                reg: -(Errno::ENOSYS.as_raw() as i64),
                flags: CpuFlags::default(),
                out_data: Vec::new(),
            };
        };
        let result = handler(k, tid, args);
        let (reg, flags) =
            cider_abi::convention::SyscallOutcome::from(result.outcome)
                .encode_linux();
        UserTrapResult {
            reg,
            flags,
            out_data: result.out_data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cider_abi::syscall::LinuxSyscall as L;

    fn kernel() -> Kernel {
        Kernel::boot(DeviceProfile::nexus7())
    }

    #[test]
    fn boot_and_spawn() {
        let mut k = kernel();
        let (pid, tid) = k.spawn_process();
        assert_eq!(k.sys_getpid(tid).unwrap(), pid);
        assert_eq!(k.current(), Some(tid));
        assert!(!k.cider_enabled());
    }

    #[test]
    fn null_syscall_charges_entry_cost() {
        let mut k = kernel();
        let (_, tid) = k.spawn_process();
        let before = k.clock.now_ns();
        k.sys_getpid(tid).unwrap();
        let cost = k.clock.now_ns() - before;
        assert_eq!(cost, 400);
    }

    #[test]
    fn trap_path_linux_getpid() {
        let mut k = kernel();
        let (pid, tid) = k.spawn_process();
        let r = k.trap(tid, L::Getpid.number() as i64, &SyscallArgs::none());
        assert_eq!(r.reg, pid.as_raw() as i64);
        assert!(!r.flags.carry);
        assert_eq!(k.counters.traps, 1);
        // Vanilla kernel: no persona checks.
        assert_eq!(k.counters.persona_checks, 0);
    }

    #[test]
    fn trap_unknown_syscall_is_enosys() {
        let mut k = kernel();
        let (_, tid) = k.spawn_process();
        let r = k.trap(tid, 9876, &SyscallArgs::none());
        assert_eq!(r.reg, -(Errno::ENOSYS.as_raw() as i64));
    }

    #[test]
    fn file_io_through_syscalls() {
        let mut k = kernel();
        let (_, tid) = k.spawn_process();
        k.sys_mkdir(tid, "/data").unwrap();
        let fd = k
            .sys_open(tid, "/data/f", OpenFlags::RDWR | OpenFlags::CREAT)
            .unwrap();
        assert_eq!(k.sys_write(tid, fd, b"hello").unwrap(), 5);
        k.sys_close(tid, fd).unwrap();
        let fd = k.sys_open(tid, "/data/f", OpenFlags::RDONLY).unwrap();
        assert_eq!(k.sys_read(tid, fd, 16).unwrap(), b"hello");
        // Reading past EOF yields empty.
        assert!(k.sys_read(tid, fd, 16).unwrap().is_empty());
        k.sys_close(tid, fd).unwrap();
        assert_eq!(k.sys_stat(tid, "/data/f").unwrap().size, 5);
    }

    #[test]
    fn write_to_readonly_fd_fails() {
        let mut k = kernel();
        let (_, tid) = k.spawn_process();
        k.vfs.write_file("/tmp/f", vec![1]).unwrap();
        let fd = k.sys_open(tid, "/tmp/f", OpenFlags::RDONLY).unwrap();
        assert_eq!(k.sys_write(tid, fd, b"x"), Err(Errno::EBADF));
    }

    #[test]
    fn console_capture() {
        let mut k = kernel();
        let (pid, tid) = k.spawn_process();
        k.sys_write(tid, Fd::STDOUT, b"hello, world\n").unwrap();
        assert_eq!(k.console_of(pid).unwrap(), b"hello, world\n");
    }

    #[test]
    fn pipe_between_processes() {
        let mut k = kernel();
        let (_, tid) = k.spawn_process();
        let (r, w) = k.sys_pipe(tid).unwrap();
        assert_eq!(k.sys_write(tid, w, b"ping").unwrap(), 4);
        assert_eq!(k.sys_read(tid, r, 16).unwrap(), b"ping");
        assert_eq!(k.sys_read(tid, r, 16), Err(Errno::EAGAIN));
    }

    #[test]
    fn select_reports_readable() {
        let mut k = kernel();
        let (_, tid) = k.spawn_process();
        let (r, w) = k.sys_pipe(tid).unwrap();
        assert!(k.sys_select(tid, &[r]).unwrap().is_empty());
        k.sys_write(tid, w, b"x").unwrap();
        assert_eq!(k.sys_select(tid, &[r]).unwrap(), vec![r]);
    }

    #[test]
    fn select_fails_on_xnu_at_250() {
        let mut k = Kernel::boot(DeviceProfile::ipad_mini());
        let (_, tid) = k.spawn_process();
        let fds: Vec<Fd> =
            (0..250).map(|_| k.sys_pipe(tid).unwrap().0).collect();
        assert_eq!(k.sys_select(tid, &fds), Err(Errno::EINVAL));
        assert!(k.sys_select(tid, &fds[..100]).is_ok());
    }

    #[test]
    fn fork_duplicates_process_state() {
        let mut k = kernel();
        let (pid, tid) = k.spawn_process();
        k.sys_mkdir(tid, "/w").unwrap();
        k.sys_chdir(tid, "/w").unwrap();
        let (child_pid, child_tid) = k.sys_fork(tid).unwrap();
        assert_ne!(child_pid, pid);
        assert_eq!(k.sys_getcwd(child_tid).unwrap(), "/w");
        assert_eq!(k.process(child_pid).unwrap().parent, Some(pid));
        assert_eq!(k.counters.forks, 1);
    }

    #[test]
    fn fork_cost_scales_with_address_space() {
        let mut k = kernel();
        let (small_pid, small_tid) = k.spawn_process();
        let (_big_pid, big_tid) = k.spawn_process();
        // Give the big process 90 MB of mappings, like an iOS binary.
        {
            let p = k.process_mut(k.thread(big_tid).unwrap().pid).unwrap();
            p.mm.map(
                90 * 1024 * 1024,
                crate::mm::Prot::RX,
                crate::mm::MappingKind::Dylib,
                "frameworks",
            )
            .unwrap();
        }
        let _ = small_pid;
        let t0 = k.clock.now_ns();
        k.sys_fork(small_tid).unwrap();
        let small_cost = k.clock.now_ns() - t0;
        let t1 = k.clock.now_ns();
        k.sys_fork(big_tid).unwrap();
        let big_cost = k.clock.now_ns() - t1;
        // ~23 000 extra PTEs at 43 ns ≈ 1 ms extra (§6.2).
        let extra = big_cost - small_cost;
        assert!(
            (900_000..1_100_000).contains(&extra),
            "extra fork cost {extra} ns"
        );
    }

    #[test]
    fn atfork_and_atexit_callbacks_charged() {
        let mut k = kernel();
        let (pid, tid) = k.spawn_process();
        let images: Vec<String> =
            (0..115).map(|i| format!("lib{i}.dylib")).collect();
        k.register_image_callbacks(pid, &images).unwrap();
        let t0 = k.clock.now_ns();
        let (child_pid, child_tid) = k.sys_fork(tid).unwrap();
        let fork_cost = k.clock.now_ns() - t0;
        assert_eq!(k.counters.atfork_callbacks, 345);
        // 345 × 5.4 µs ≈ 1.86 ms of user callback work.
        assert!(fork_cost > 1_800_000, "fork cost {fork_cost}");
        let t1 = k.clock.now_ns();
        k.sys_exit(child_tid, 0).unwrap();
        let exit_cost = k.clock.now_ns() - t1;
        assert_eq!(k.counters.atexit_callbacks, 115);
        assert!(exit_cost > 600_000, "exit cost {exit_cost}");
        assert_eq!(k.sys_waitpid(tid, child_pid).unwrap(), 0);
    }

    #[test]
    fn exec_discards_callbacks_without_running_them() {
        let mut k = kernel();
        let (pid, tid) = k.spawn_process();
        k.register_image_callbacks(pid, &["a".into(), "b".into()])
            .unwrap();

        #[derive(Debug)]
        struct RawLoader;
        impl crate::binfmt::BinaryLoader for RawLoader {
            fn name(&self) -> &'static str {
                "raw"
            }
            fn can_load(&self, image: &[u8]) -> bool {
                image.starts_with(b"RAW")
            }
            fn load(
                &self,
                _k: &mut Kernel,
                _tid: Tid,
                _image: &ExecImage,
            ) -> Result<crate::binfmt::LoadedProgram, Errno> {
                Ok(crate::binfmt::LoadedProgram {
                    format: "raw",
                    ..Default::default()
                })
            }
        }
        k.register_binfmt(Arc::new(RawLoader));
        k.vfs.write_file("/tmp/prog", b"RAWdata".to_vec()).unwrap();
        k.sys_exec(tid, "/tmp/prog", &[]).unwrap();
        assert_eq!(k.counters.atexit_callbacks, 0);
        assert_eq!(k.process(pid).unwrap().callbacks.atexit.len(), 0);
        assert_eq!(k.process(pid).unwrap().program.format, "raw");
    }

    #[test]
    fn exec_unknown_format_is_enoexec() {
        let mut k = kernel();
        let (_, tid) = k.spawn_process();
        k.vfs.write_file("/tmp/junk", b"????".to_vec()).unwrap();
        assert_eq!(k.sys_exec(tid, "/tmp/junk", &[]), Err(Errno::ENOEXEC));
    }

    #[test]
    fn signal_handler_delivery_and_cost() {
        let mut k = kernel();
        let (pid, tid) = k.spawn_process();
        k.sys_sigaction(tid, Signal::SIGUSR1, SigDisposition::Handler(1))
            .unwrap();
        let t0 = k.clock.now_ns();
        k.sys_kill(tid, pid, Signal::SIGUSR1).unwrap();
        let cost = k.clock.now_ns() - t0;
        let t = k.thread(tid).unwrap();
        assert_eq!(t.delivered.len(), 1);
        assert_eq!(t.delivered[0].user_number, Signal::SIGUSR1.as_raw());
        assert_eq!(
            t.delivered[0].frame_bytes,
            cider_abi::signal::sigframe::LINUX_FRAME_BYTES
        );
        // kill + delivery + frame + sigreturn ≈ 5 µs on the Nexus 7.
        assert!((4_000..8_000).contains(&cost), "signal cost {cost}");
    }

    #[test]
    fn default_sigterm_kills_process() {
        let mut k = kernel();
        let (pid, tid) = k.spawn_process();
        k.sys_kill(tid, pid, Signal::SIGTERM).unwrap();
        assert_eq!(
            k.process(pid).unwrap().state,
            ProcessState::Zombie(128 + 15)
        );
    }

    #[test]
    fn masked_signals_stay_pending() {
        let mut k = kernel();
        let (pid, tid) = k.spawn_process();
        k.sys_sigaction(tid, Signal::SIGUSR1, SigDisposition::Handler(1))
            .unwrap();
        k.thread_mut(tid).unwrap().sigmask = 1 << Signal::SIGUSR1.as_raw();
        k.sys_kill(tid, pid, Signal::SIGUSR1).unwrap();
        assert_eq!(k.thread(tid).unwrap().delivered.len(), 0);
        assert_eq!(k.thread(tid).unwrap().pending.len(), 1);
        k.thread_mut(tid).unwrap().sigmask = 0;
        k.deliver_pending(tid).unwrap();
        assert_eq!(k.thread(tid).unwrap().delivered.len(), 1);
    }

    #[test]
    fn sigchld_ignored_by_default() {
        let mut k = kernel();
        let (_pid, tid) = k.spawn_process();
        let (child_pid, child_tid) = k.sys_fork(tid).unwrap();
        k.sys_exit(child_tid, 3).unwrap();
        // Parent got SIGCHLD queued; delivering it is a no-op.
        k.deliver_pending(tid).unwrap();
        assert_eq!(k.sys_waitpid(tid, child_pid).unwrap(), 3);
    }

    #[test]
    fn waitpid_errors() {
        let mut k = kernel();
        let (_, tid) = k.spawn_process();
        assert_eq!(k.sys_waitpid(tid, Pid(99)), Err(Errno::ECHILD));
        let (child_pid, _) = k.sys_fork(tid).unwrap();
        assert_eq!(k.sys_waitpid(tid, child_pid), Err(Errno::EAGAIN));
    }

    #[test]
    fn program_registry_runs_entry() {
        let mut k = kernel();
        let (pid, tid) = k.spawn_process();
        k.register_program(
            "hello",
            Arc::new(|k: &mut Kernel, tid| {
                let _ = k.sys_write(tid, Fd::STDOUT, b"hello, world\n");
                0
            }),
        );
        k.process_mut(pid).unwrap().program.entry_symbol =
            Some("hello".into());
        assert_eq!(k.run_entry(tid).unwrap(), 0);
        assert_eq!(k.console_of(pid).unwrap(), b"hello, world\n");
        assert_eq!(k.process(pid).unwrap().state, ProcessState::Zombie(0));
    }

    #[test]
    fn context_switch_charges_once_per_switch() {
        let mut k = kernel();
        let (_, t1) = k.spawn_process();
        let (_, t2) = k.spawn_process();
        k.switch_to(t1).unwrap();
        let before = k.counters.context_switches;
        k.switch_to(t1).unwrap(); // no-op
        k.switch_to(t2).unwrap();
        assert_eq!(k.counters.context_switches, before + 1);
    }

    #[test]
    fn wait_channels_block_and_wake() {
        let mut k = kernel();
        let (_, t1) = k.spawn_process();
        let (_, t2) = k.spawn_process();
        let c = k.new_wait_channel();
        k.block_thread(t1, c).unwrap();
        k.block_thread(t2, c).unwrap();
        assert_eq!(k.thread(t1).unwrap().state, ThreadState::Blocked(c));
        assert_eq!(k.wakeup(c), 2);
        assert_eq!(k.thread(t1).unwrap().state, ThreadState::Runnable);
    }

    #[test]
    fn spawn_thread_inherits_personality() {
        let mut k = kernel();
        let (pid, tid) = k.spawn_process();
        let t2 = k.spawn_thread(tid).unwrap();
        assert_eq!(k.thread(t2).unwrap().pid, pid);
        assert_eq!(
            k.thread(t2).unwrap().personality,
            k.thread(tid).unwrap().personality
        );
        assert_eq!(k.process(pid).unwrap().threads.len(), 2);
    }

    #[test]
    fn extensions_store_typed_state() {
        #[derive(Debug, PartialEq)]
        struct Marker(u32);
        let mut k = kernel();
        assert!(k.extensions.get::<Marker>().is_none());
        k.extensions.insert(Marker(7));
        assert_eq!(k.extensions.get::<Marker>(), Some(&Marker(7)));
        k.extensions.get_mut::<Marker>().unwrap().0 = 9;
        let taken = k.extensions.take::<Marker>().unwrap();
        assert_eq!(taken, Marker(9));
        assert!(k.extensions.get::<Marker>().is_none());
        // Re-insert replaces cleanly.
        k.extensions.insert(Marker(1));
        k.extensions.insert(Marker(2));
        assert_eq!(k.extensions.get::<Marker>(), Some(&Marker(2)));
    }

    #[test]
    fn pass_fd_moves_between_processes() {
        let mut k = kernel();
        let (_, t1) = k.spawn_process();
        let (p2, t2) = k.spawn_process();
        let (r, w) = k.sys_pipe(t1).unwrap();
        let moved = k.sys_pass_fd(t1, r, t2).unwrap();
        // Gone from the sender, live in the receiver.
        assert_eq!(k.sys_read(t1, r, 1), Err(Errno::EBADF));
        k.sys_write(t1, w, b"q").unwrap();
        assert_eq!(k.sys_read(t2, moved, 4).unwrap(), b"q");
        let _ = p2;
        // Errors: bad fd, bad target thread.
        assert_eq!(k.sys_pass_fd(t1, Fd(99), t2), Err(Errno::EBADF));
        assert_eq!(k.sys_pass_fd(t1, w, Tid(4242)), Err(Errno::ESRCH));
        // Failed pass must not have consumed the descriptor.
        assert!(k.sys_write(t1, w, b"still open").is_ok());
    }

    #[test]
    fn chdir_rejects_files_and_missing_paths() {
        let mut k = kernel();
        let (_, tid) = k.spawn_process();
        k.vfs.write_file("/tmp/f", vec![1]).unwrap();
        assert_eq!(k.sys_chdir(tid, "/tmp/f"), Err(Errno::ENOTDIR));
        assert_eq!(k.sys_chdir(tid, "/nope"), Err(Errno::ENOENT));
        assert_eq!(k.sys_getcwd(tid).unwrap(), "/");
    }

    #[test]
    fn nanosleep_advances_virtual_time_exactly() {
        let mut k = kernel();
        let (_, tid) = k.spawn_process();
        let t0 = k.clock.now_ns();
        k.sys_nanosleep(tid, 5_000_000).unwrap();
        let elapsed = k.clock.now_ns() - t0;
        // Sleep plus the syscall entry/exit.
        assert_eq!(elapsed, 5_000_000 + 400);
    }

    #[test]
    fn open_excl_and_trunc_semantics() {
        let mut k = kernel();
        let (_, tid) = k.spawn_process();
        let fd = k
            .sys_open(
                tid,
                "/tmp/x",
                OpenFlags::RDWR | OpenFlags::CREAT | OpenFlags::EXCL,
            )
            .unwrap();
        k.sys_write(tid, fd, b"12345").unwrap();
        k.sys_close(tid, fd).unwrap();
        // EXCL on an existing file fails.
        assert_eq!(
            k.sys_open(
                tid,
                "/tmp/x",
                OpenFlags::RDWR | OpenFlags::CREAT | OpenFlags::EXCL
            ),
            Err(Errno::EEXIST)
        );
        // TRUNC empties it.
        let fd = k
            .sys_open(tid, "/tmp/x", OpenFlags::RDWR | OpenFlags::TRUNC)
            .unwrap();
        k.sys_close(tid, fd).unwrap();
        assert_eq!(k.sys_stat(tid, "/tmp/x").unwrap().size, 0);
    }

    #[test]
    fn direct_storage_io_charges_bandwidth() {
        let mut k = kernel();
        let (_, tid) = k.spawn_process();
        let fd = k
            .sys_open(tid, "/tmp/big", OpenFlags::RDWR | OpenFlags::CREAT)
            .unwrap();
        let data = vec![0u8; 1024 * 1024];
        let t0 = k.clock.now_ns();
        k.sys_write_direct(tid, fd, &data).unwrap();
        let direct_cost = k.clock.now_ns() - t0;
        let t1 = k.clock.now_ns();
        k.sys_write(tid, fd, &data).unwrap();
        let cached_cost = k.clock.now_ns() - t1;
        assert!(direct_cost > cached_cost * 10);
    }
}
