//! Deterministic domestic-kernel simulator for the Cider reproduction.
//!
//! This crate stands in for the Android device's Linux kernel in *"Cider:
//! Native Execution of iOS Apps on Android"* (ASPLOS 2014). It provides
//! processes and threads, address spaces with explicit page-table
//! accounting, a VFS with overlay mounts, pipes and UNIX sockets,
//! `select`, signals, `fork`/`exec`/`exit`/`wait`, a device registry with
//! the `device_add` hook Cider's I/O Kit bridge uses, and — crucially — a
//! **virtual clock**: every operation charges nanoseconds scaled by a
//! [`profile::DeviceProfile`], so experiments are exactly
//! reproducible and one host can model both the Nexus 7 and the iPad mini.
//!
//! The kernel is extensible exactly where Cider extends Linux:
//! [`Personality`](dispatch::Personality) objects add per-persona syscall
//! dispatch tables, [`BinaryLoader`](binfmt::BinaryLoader)s add binary
//! formats (Mach-O), [`ForkHook`](kernel::ForkHook)s add Mach task
//! initialisation, and [`ThreadExt`](process::ThreadExt) slots carry
//! persona state.
//!
//! # Example
//!
//! ```
//! use cider_kernel::kernel::Kernel;
//! use cider_kernel::profile::DeviceProfile;
//!
//! let mut k = Kernel::boot(DeviceProfile::nexus7());
//! let (pid, tid) = k.spawn_process();
//! assert_eq!(k.sys_getpid(tid)?, pid);
//! # Ok::<(), cider_abi::errno::Errno>(())
//! ```

pub mod binfmt;
pub mod clock;
pub mod device;
pub mod dispatch;
pub mod fdtable;
pub mod ipcobj;
pub mod kernel;
pub mod memorystatus;
pub mod mm;
pub mod process;
pub mod profile;
pub mod vfs;
pub mod warm;

pub use clock::{Stopwatch, VirtualClock, VirtualDuration};
pub use kernel::{Extensions, Kernel, KernelCounters, LinuxPersonality};
pub use memorystatus::{MemoryStatus, MemoryStatusStats};
pub use profile::{DeviceProfile, Toolchain};
pub use warm::{BakedImage, SharedCacheImage, WarmStart, WarmStats};
