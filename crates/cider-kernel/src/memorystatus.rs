//! The memorystatus subsystem: per-process jetsam bands, footprint
//! accounting, and pressure-driven kills.
//!
//! iOS has no swap; when free memory runs low the kernel's
//! memorystatus thread walks the jetsam priority bands from the bottom
//! and kills processes until pressure clears
//! (`bsd/kern/kern_memorystatus.c`). The framework layer above parks
//! every app in a band matching its lifecycle state, so backgrounded
//! and suspended apps die first and the foreground app dies only under
//! critical pressure.
//!
//! This module is pure bookkeeping over virtual state: it never
//! touches the clock and draws no randomness of its own. Nothing is
//! tracked until a caller registers a process, so every existing
//! workload — and every pinned golden — is byte-identical to a kernel
//! without the subsystem. The kill itself (performed by
//! [`crate::kernel::Kernel::sys_jetsam_tick`]) reuses the ordinary
//! `exit` path, so a jetsammed process leaves the same zombie a
//! SIGKILL would.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cider_abi::ids::Pid;
use cider_abi::memorystatus::{PressureLevel, JETSAM_PRIORITY_MAX};

/// Per-process memorystatus record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ProcEntry {
    /// Jetsam priority band the process currently sits in.
    band: u8,
    /// Tracked footprint, bytes.
    footprint: u64,
}

/// Monotonic counters, part of the `kernel/memorystatus` checkpoint
/// section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStatusStats {
    /// Jetsam passes executed.
    pub ticks: u64,
    /// Processes killed by pressure-driven passes.
    pub pressure_kills: u64,
    /// Processes killed by the [`cider_fault::FaultSite::JetsamKill`]
    /// injection (spurious kills under transient spikes).
    pub fault_kills: u64,
    /// High-water mark of the total tracked footprint.
    pub peak_footprint: u64,
}

/// Device-wide memorystatus state owned by the kernel.
#[derive(Debug, Clone)]
pub struct MemoryStatus {
    /// Warn watermark: total footprint at or above this makes the
    /// idle/suspended bands eligible. `u64::MAX` = unset.
    warn_bytes: u64,
    /// Critical watermark: everything below the daemon band becomes
    /// eligible. `u64::MAX` = unset.
    critical_bytes: u64,
    entries: BTreeMap<u32, ProcEntry>,
    /// Memorystatus counters.
    pub stats: MemoryStatusStats,
}

impl Default for MemoryStatus {
    fn default() -> MemoryStatus {
        MemoryStatus::new()
    }
}

impl MemoryStatus {
    /// Empty subsystem with unset watermarks: nothing tracked, nothing
    /// killable.
    pub fn new() -> MemoryStatus {
        MemoryStatus {
            warn_bytes: u64::MAX,
            critical_bytes: u64::MAX,
            entries: BTreeMap::new(),
            stats: MemoryStatusStats::default(),
        }
    }

    /// Sets the pressure watermarks. `warn` must not exceed
    /// `critical`; values are swapped if it does.
    pub fn set_watermarks(&mut self, warn: u64, critical: u64) {
        self.warn_bytes = warn.min(critical);
        self.critical_bytes = warn.max(critical);
    }

    /// Registers (or re-bands) a process. Footprint is preserved on
    /// re-registration.
    pub fn track(&mut self, pid: Pid, band: u8) {
        let band = band.min(JETSAM_PRIORITY_MAX);
        self.entries
            .entry(pid.0)
            .and_modify(|e| e.band = band)
            .or_insert(ProcEntry { band, footprint: 0 });
    }

    /// Forgets a process (exit or jetsam). Idempotent.
    pub fn untrack(&mut self, pid: Pid) {
        self.entries.remove(&pid.0);
    }

    /// Whether the process is tracked.
    pub fn is_tracked(&self, pid: Pid) -> bool {
        self.entries.contains_key(&pid.0)
    }

    /// The process's current band, if tracked.
    pub fn band(&self, pid: Pid) -> Option<u8> {
        self.entries.get(&pid.0).map(|e| e.band)
    }

    /// The process's tracked footprint, if tracked.
    pub fn footprint(&self, pid: Pid) -> Option<u64> {
        self.entries.get(&pid.0).map(|e| e.footprint)
    }

    /// Adds to a tracked process's footprint. Untracked pids are
    /// ignored (the kernel never double-books untracked memory).
    pub fn charge_footprint(&mut self, pid: Pid, bytes: u64) {
        if let Some(e) = self.entries.get_mut(&pid.0) {
            e.footprint = e.footprint.saturating_add(bytes);
        }
        let total = self.total_footprint();
        if total > self.stats.peak_footprint {
            self.stats.peak_footprint = total;
        }
    }

    /// Releases part of a tracked process's footprint.
    pub fn release_footprint(&mut self, pid: Pid, bytes: u64) {
        if let Some(e) = self.entries.get_mut(&pid.0) {
            e.footprint = e.footprint.saturating_sub(bytes);
        }
    }

    /// Total tracked footprint, bytes.
    pub fn total_footprint(&self) -> u64 {
        self.entries.values().map(|e| e.footprint).sum()
    }

    /// Number of tracked processes.
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }

    /// Current pressure level from the watermarks.
    pub fn level(&self) -> PressureLevel {
        let total = self.total_footprint();
        if total >= self.critical_bytes {
            PressureLevel::Critical
        } else if total >= self.warn_bytes {
            PressureLevel::Warn
        } else {
            PressureLevel::Normal
        }
    }

    /// Picks the next jetsam victim among bands strictly below
    /// `below`: lowest band first, then largest footprint, then lowest
    /// pid — a total order, so selection is deterministic.
    pub fn select_victim(&self, below: u8) -> Option<Pid> {
        self.entries
            .iter()
            .filter(|(_, e)| e.band < below)
            .min_by_key(|(pid, e)| (e.band, u64::MAX - e.footprint, **pid))
            .map(|(pid, _)| Pid(*pid))
    }

    /// One-line deterministic record for the `kernel/memorystatus`
    /// checkpoint section.
    pub fn ckpt_record(&self) -> String {
        let mut procs = String::new();
        for (pid, e) in &self.entries {
            let _ = write!(procs, "{pid}:b{}:{}B,", e.band, e.footprint);
        }
        if procs.is_empty() {
            procs.push('-');
        }
        let wm = if self.warn_bytes == u64::MAX {
            "unset".to_string()
        } else {
            format!("{}/{}", self.warn_bytes, self.critical_bytes)
        };
        format!(
            "level={} wm={wm} procs={procs} ticks={} pkills={} fkills={} \
             peak={}",
            self.level().name(),
            self.stats.ticks,
            self.stats.pressure_kills,
            self.stats.fault_kills,
            self.stats.peak_footprint,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untracked_subsystem_is_inert() {
        let m = MemoryStatus::new();
        assert_eq!(m.level(), PressureLevel::Normal);
        assert_eq!(m.select_victim(JETSAM_PRIORITY_MAX), None);
        assert_eq!(m.total_footprint(), 0);
        assert!(m.ckpt_record().contains("level=normal wm=unset procs=-"));
    }

    #[test]
    fn watermarks_drive_the_level() {
        let mut m = MemoryStatus::new();
        m.set_watermarks(100, 200);
        m.track(Pid(1), 10);
        assert_eq!(m.level(), PressureLevel::Normal);
        m.charge_footprint(Pid(1), 100);
        assert_eq!(m.level(), PressureLevel::Warn);
        m.charge_footprint(Pid(1), 100);
        assert_eq!(m.level(), PressureLevel::Critical);
        m.release_footprint(Pid(1), 150);
        assert_eq!(m.level(), PressureLevel::Normal);
        assert_eq!(m.stats.peak_footprint, 200);
    }

    #[test]
    fn victim_order_is_band_then_footprint_then_pid() {
        let mut m = MemoryStatus::new();
        m.track(Pid(1), 10); // foreground: survives below=10
        m.track(Pid(2), 3);
        m.track(Pid(3), 3);
        m.track(Pid(4), 2);
        m.charge_footprint(Pid(2), 50);
        m.charge_footprint(Pid(3), 90);
        // Lowest band wins regardless of footprint.
        assert_eq!(m.select_victim(10), Some(Pid(4)));
        m.untrack(Pid(4));
        // Same band: biggest footprint dies first.
        assert_eq!(m.select_victim(10), Some(Pid(3)));
        m.untrack(Pid(3));
        assert_eq!(m.select_victim(10), Some(Pid(2)));
        m.untrack(Pid(2));
        // The foreground app is out of the window.
        assert_eq!(m.select_victim(10), None);
        assert_eq!(m.select_victim(11), Some(Pid(1)));
    }

    #[test]
    fn ckpt_record_is_deterministic() {
        let mut m = MemoryStatus::new();
        m.set_watermarks(64, 128);
        m.track(Pid(7), 3);
        m.charge_footprint(Pid(7), 42);
        let a = m.ckpt_record();
        let b = m.clone().ckpt_record();
        assert_eq!(a, b);
        assert!(a.contains("7:b3:42B"));
        assert!(a.contains("wm=64/128"));
    }
}
