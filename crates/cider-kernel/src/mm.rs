//! Address spaces and page tables.
//!
//! Every process owns an [`AddressSpace`]: an ordered set of
//! [`Mapping`]s. `fork` duplicates the page-table entries of every mapping
//! one by one — the mechanism behind the paper's observation that an iOS
//! process (90 MB of dyld-mapped libraries) pays "almost 1 ms of extra
//! overhead" per fork compared to a Linux process.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use cider_abi::errno::Errno;

/// Page size used throughout the simulator (4 KiB, as on both devices).
pub const PAGE_SIZE: u64 = 4096;

/// Memory protection bits of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prot {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl Prot {
    /// `r-x` — text segments.
    pub const RX: Prot = Prot {
        read: true,
        write: false,
        exec: true,
    };
    /// `rw-` — data segments, heaps, stacks.
    pub const RW: Prot = Prot {
        read: true,
        write: true,
        exec: false,
    };
    /// `r--` — read-only data.
    pub const R: Prot = Prot {
        read: true,
        write: false,
        exec: false,
    };
}

impl fmt::Display for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.exec { 'x' } else { '-' }
        )
    }
}

/// What backs a mapping; used by diagnostics and by the dyld accounting.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// Main binary text/data.
    Binary,
    /// A dynamically loaded library.
    Dylib,
    /// The dyld shared cache (one giant prelinked mapping).
    SharedCache,
    /// Anonymous memory (heap, stack).
    Anonymous,
    /// Graphics / IOSurface memory shared with the GPU.
    Graphics,
}

/// One contiguous virtual-memory mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// Start address (page-aligned).
    pub start: u64,
    /// Length in bytes (page-aligned).
    pub len: u64,
    /// Protection.
    pub prot: Prot,
    /// Backing kind.
    pub kind: MappingKind,
    /// Diagnostic name (library path, `[heap]`, ...).
    pub name: String,
}

impl Mapping {
    /// Number of page-table entries this mapping occupies.
    pub fn pte_count(&self) -> u64 {
        self.len.div_ceil(PAGE_SIZE)
    }

    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// A process's virtual address space.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    maps: BTreeMap<u64, Mapping>,
    next_free: u64,
    /// Copy-on-write debt per mapping start: PTEs whose duplication was
    /// deferred at `fork` time and is still owed. Empty outside a CoW
    /// child.
    cow_pending: BTreeMap<u64, u64>,
    /// Page addresses already materialized by a first write (so repeat
    /// writes to the same page are free, as on real hardware).
    cow_dirty: BTreeSet<u64>,
}

/// Base of the mmap allocation area.
const MMAP_BASE: u64 = 0x4000_0000;

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace {
            maps: BTreeMap::new(),
            next_free: MMAP_BASE,
            cow_pending: BTreeMap::new(),
            cow_dirty: BTreeSet::new(),
        }
    }

    /// Maps `len` bytes at a kernel-chosen address.
    ///
    /// # Errors
    ///
    /// Returns `ENOMEM` if `len` is zero (nothing to map).
    pub fn map(
        &mut self,
        len: u64,
        prot: Prot,
        kind: MappingKind,
        name: impl Into<String>,
    ) -> Result<u64, Errno> {
        if len == 0 {
            return Err(Errno::ENOMEM);
        }
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let start = self.next_free;
        self.next_free += len + PAGE_SIZE; // guard page
        self.maps.insert(
            start,
            Mapping {
                start,
                len,
                prot,
                kind,
                name: name.into(),
            },
        );
        Ok(start)
    }

    /// Maps at a caller-fixed address (used by binary loaders).
    ///
    /// # Errors
    ///
    /// Returns `EINVAL` on overlap with an existing mapping or an
    /// unaligned address.
    pub fn map_fixed(
        &mut self,
        start: u64,
        len: u64,
        prot: Prot,
        kind: MappingKind,
        name: impl Into<String>,
    ) -> Result<(), Errno> {
        if !start.is_multiple_of(PAGE_SIZE) || len == 0 {
            return Err(Errno::EINVAL);
        }
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let end = start + len;
        let overlaps = self
            .maps
            .range(..end)
            .next_back()
            .map(|(_, m)| m.end() > start)
            .unwrap_or(false);
        if overlaps {
            return Err(Errno::EINVAL);
        }
        self.maps.insert(
            start,
            Mapping {
                start,
                len,
                prot,
                kind,
                name: name.into(),
            },
        );
        self.next_free = self.next_free.max(end + PAGE_SIZE);
        Ok(())
    }

    /// Unmaps the mapping starting exactly at `start`.
    ///
    /// # Errors
    ///
    /// Returns `EINVAL` if no mapping starts there.
    pub fn unmap(&mut self, start: u64) -> Result<Mapping, Errno> {
        let m = self.maps.remove(&start).ok_or(Errno::EINVAL)?;
        self.cow_pending.remove(&start);
        let gone: Vec<u64> =
            self.cow_dirty.range(start..m.end()).copied().collect();
        for page in gone {
            self.cow_dirty.remove(&page);
        }
        Ok(m)
    }

    /// Iterates over all mappings in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Mapping> {
        self.maps.values()
    }

    /// Looks up the mapping containing `addr`.
    pub fn find(&self, addr: u64) -> Option<&Mapping> {
        self.maps
            .range(..=addr)
            .next_back()
            .map(|(_, m)| m)
            .filter(|m| addr < m.end())
    }

    /// Number of mappings.
    pub fn mapping_count(&self) -> usize {
        self.maps.len()
    }

    /// Total page-table entries across all mappings — the unit `fork`
    /// duplication cost scales with.
    ///
    /// Shared-cache mappings are excluded: XNU "treats the shared cache
    /// in a special way" (paper §6.2) — the shared region lives outside
    /// the per-process page tables, so `fork` on a real iOS device does
    /// not duplicate its entries. The Cider prototype has no shared
    /// cache, so its iOS processes pay for every dylib page.
    pub fn total_ptes(&self) -> u64 {
        self.maps
            .values()
            .filter(|m| m.kind != MappingKind::SharedCache)
            .map(Mapping::pte_count)
            .sum()
    }

    /// Total mapped bytes.
    pub fn total_bytes(&self) -> u64 {
        self.maps.values().map(|m| m.len).sum()
    }

    /// Duplicates the address space for `fork`, visiting every PTE.
    /// Returns the new space and the number of PTEs copied (the caller
    /// charges `pte_copy_ns` per entry).
    pub fn fork_duplicate(&self) -> (AddressSpace, u64) {
        let ptes = self.total_ptes();
        let mut child = self.clone();
        // An eager fork copies everything up front, so the child starts
        // with no outstanding CoW debt even if the parent carried some.
        child.cow_pending.clear();
        child.cow_dirty.clear();
        (child, ptes)
    }

    /// Duplicates the address space for a copy-on-write `fork`: no PTE
    /// is copied now; instead every mapping's PTE count is recorded as
    /// debt the child pays page by page on first write. Returns the
    /// child space and the number of PTEs whose copy was deferred.
    ///
    /// Shared-cache mappings are excluded exactly as in
    /// [`AddressSpace::total_ptes`] — their entries were never going to
    /// be duplicated in the first place.
    pub fn fork_duplicate_cow(&self) -> (AddressSpace, u64) {
        let mut child = self.clone();
        child.cow_pending.clear();
        child.cow_dirty.clear();
        let mut deferred = 0;
        for m in self.maps.values() {
            if m.kind == MappingKind::SharedCache {
                continue;
            }
            let ptes = m.pte_count();
            child.cow_pending.insert(m.start, ptes);
            deferred += ptes;
        }
        (child, deferred)
    }

    /// Records a user-level store to `addr`. If the containing page is
    /// CoW-pending, it is materialized: the debt for its mapping drops
    /// by one and the page joins the dirty set. Returns the number of
    /// PTEs materialized by this write (0 or 1) — the caller charges
    /// `pte_copy_ns` per entry, which is how deferred fork cost lands
    /// on the faulting thread.
    ///
    /// # Errors
    ///
    /// Returns `EFAULT` when `addr` is not mapped.
    pub fn page_write(&mut self, addr: u64) -> Result<u64, Errno> {
        let m = self.find(addr).ok_or(Errno::EFAULT)?;
        let (start, page) = (m.start, addr - addr % PAGE_SIZE);
        if self.cow_dirty.contains(&page) {
            return Ok(0);
        }
        match self.cow_pending.get_mut(&start) {
            Some(pending) if *pending > 0 => {
                *pending -= 1;
                if *pending == 0 {
                    self.cow_pending.remove(&start);
                }
                self.cow_dirty.insert(page);
                Ok(1)
            }
            _ => Ok(0),
        }
    }

    /// Outstanding CoW debt: PTEs deferred at fork time and not yet
    /// paid for by a first write (never charged if `exec`/`exit` drops
    /// the space first — that is the warm-start win).
    pub fn cow_pending_ptes(&self) -> u64 {
        self.cow_pending.values().sum()
    }

    /// Pages materialized by first writes since the CoW fork.
    pub fn cow_dirty_pages(&self) -> u64 {
        self.cow_dirty.len() as u64
    }

    /// Drops everything, as `exec` does before loading the new image.
    /// Outstanding CoW debt vanishes unpaid.
    pub fn clear(&mut self) {
        self.maps.clear();
        self.next_free = MMAP_BASE;
        self.cow_pending.clear();
        self.cow_dirty.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_rounds_to_pages_and_counts_ptes() {
        let mut a = AddressSpace::new();
        let start = a
            .map(5000, Prot::RW, MappingKind::Anonymous, "[heap]")
            .unwrap();
        let m = a.find(start).unwrap();
        assert_eq!(m.len, 2 * PAGE_SIZE);
        assert_eq!(m.pte_count(), 2);
        assert_eq!(a.total_ptes(), 2);
    }

    #[test]
    fn map_zero_fails() {
        let mut a = AddressSpace::new();
        assert_eq!(
            a.map(0, Prot::RW, MappingKind::Anonymous, "x"),
            Err(Errno::ENOMEM)
        );
    }

    #[test]
    fn fixed_mapping_rejects_overlap() {
        let mut a = AddressSpace::new();
        a.map_fixed(0x1000, 0x2000, Prot::RX, MappingKind::Binary, "bin")
            .unwrap();
        assert_eq!(
            a.map_fixed(0x2000, 0x1000, Prot::RW, MappingKind::Binary, "d"),
            Err(Errno::EINVAL)
        );
        // Adjacent is fine.
        a.map_fixed(0x3000, 0x1000, Prot::RW, MappingKind::Binary, "d")
            .unwrap();
    }

    #[test]
    fn fixed_mapping_rejects_unaligned() {
        let mut a = AddressSpace::new();
        assert_eq!(
            a.map_fixed(0x1001, 0x1000, Prot::RW, MappingKind::Binary, "b"),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn find_resolves_addresses() {
        let mut a = AddressSpace::new();
        let s = a
            .map(PAGE_SIZE, Prot::R, MappingKind::Dylib, "libfoo")
            .unwrap();
        assert!(a.find(s).is_some());
        assert!(a.find(s + PAGE_SIZE - 1).is_some());
        assert!(a.find(s + PAGE_SIZE).is_none());
    }

    #[test]
    fn fork_duplicate_reports_pte_work() {
        let mut a = AddressSpace::new();
        // 90 MB of dylibs, as dyld maps for an iOS process.
        a.map(90 * 1024 * 1024, Prot::RX, MappingKind::Dylib, "frameworks")
            .unwrap();
        let (b, ptes) = a.fork_duplicate();
        assert_eq!(ptes, 90 * 1024 * 1024 / PAGE_SIZE);
        assert_eq!(b.total_ptes(), a.total_ptes());
    }

    #[test]
    fn unmap_and_clear() {
        let mut a = AddressSpace::new();
        let s = a
            .map(PAGE_SIZE, Prot::RW, MappingKind::Anonymous, "x")
            .unwrap();
        assert!(a.unmap(s).is_ok());
        assert_eq!(a.unmap(s), Err(Errno::EINVAL));
        a.map(PAGE_SIZE, Prot::RW, MappingKind::Anonymous, "y")
            .unwrap();
        a.clear();
        assert_eq!(a.mapping_count(), 0);
    }

    #[test]
    fn prot_display() {
        assert_eq!(Prot::RX.to_string(), "r-x");
        assert_eq!(Prot::RW.to_string(), "rw-");
    }

    #[test]
    fn cow_fork_defers_all_ptes_and_pays_per_first_write() {
        let mut a = AddressSpace::new();
        let s = a
            .map(4 * PAGE_SIZE, Prot::RW, MappingKind::Anonymous, "[heap]")
            .unwrap();
        let (mut child, deferred) = a.fork_duplicate_cow();
        assert_eq!(deferred, 4);
        assert_eq!(child.cow_pending_ptes(), 4);
        // First write to a page costs one PTE, the second is free.
        assert_eq!(child.page_write(s).unwrap(), 1);
        assert_eq!(child.page_write(s + 1).unwrap(), 0);
        assert_eq!(child.page_write(s + PAGE_SIZE).unwrap(), 1);
        assert_eq!(child.cow_pending_ptes(), 2);
        assert_eq!(child.cow_dirty_pages(), 2);
        // The parent carries no debt and pays nothing on writes.
        assert_eq!(a.cow_pending_ptes(), 0);
        assert_eq!(a.page_write(s).unwrap(), 0);
    }

    #[test]
    fn cow_fork_excludes_shared_cache_like_eager_fork() {
        let mut a = AddressSpace::new();
        a.map(8 * PAGE_SIZE, Prot::RX, MappingKind::SharedCache, "cache")
            .unwrap();
        a.map(2 * PAGE_SIZE, Prot::RW, MappingKind::Anonymous, "[heap]")
            .unwrap();
        let (child, deferred) = a.fork_duplicate_cow();
        assert_eq!(deferred, a.total_ptes());
        assert_eq!(deferred, 2);
        assert_eq!(child.cow_pending_ptes(), 2);
    }

    #[test]
    fn cow_debt_matches_eager_cost_and_dies_with_the_space() {
        let mut a = AddressSpace::new();
        let s = a
            .map(6 * PAGE_SIZE, Prot::RW, MappingKind::Anonymous, "x")
            .unwrap();
        let (_, eager) = a.fork_duplicate();
        let (mut child, deferred) = a.fork_duplicate_cow();
        assert_eq!(eager, deferred);
        child.page_write(s).unwrap();
        // pending + dirty always accounts for every deferred PTE.
        assert_eq!(child.cow_pending_ptes() + child.cow_dirty_pages(), 6);
        child.clear();
        assert_eq!(child.cow_pending_ptes(), 0);
        assert_eq!(child.cow_dirty_pages(), 0);
    }

    #[test]
    fn page_write_faults_on_unmapped_and_unmap_drops_debt() {
        let mut a = AddressSpace::new();
        assert_eq!(a.page_write(0x1234), Err(Errno::EFAULT));
        let s = a
            .map(2 * PAGE_SIZE, Prot::RW, MappingKind::Anonymous, "x")
            .unwrap();
        let (mut child, _) = a.fork_duplicate_cow();
        child.page_write(s).unwrap();
        child.unmap(s).unwrap();
        assert_eq!(child.cow_pending_ptes(), 0);
        assert_eq!(child.cow_dirty_pages(), 0);
    }

    #[test]
    fn eager_fork_of_a_cow_child_clears_inherited_debt() {
        let mut a = AddressSpace::new();
        a.map(3 * PAGE_SIZE, Prot::RW, MappingKind::Anonymous, "x")
            .unwrap();
        let (child, _) = a.fork_duplicate_cow();
        let (grandchild, ptes) = child.fork_duplicate();
        assert_eq!(ptes, 3);
        assert_eq!(grandchild.cow_pending_ptes(), 0);
    }
}
