//! Address spaces and page tables.
//!
//! Every process owns an [`AddressSpace`]: an ordered set of
//! [`Mapping`]s. `fork` duplicates the page-table entries of every mapping
//! one by one — the mechanism behind the paper's observation that an iOS
//! process (90 MB of dyld-mapped libraries) pays "almost 1 ms of extra
//! overhead" per fork compared to a Linux process.

use std::collections::BTreeMap;
use std::fmt;

use cider_abi::errno::Errno;

/// Page size used throughout the simulator (4 KiB, as on both devices).
pub const PAGE_SIZE: u64 = 4096;

/// Memory protection bits of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prot {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl Prot {
    /// `r-x` — text segments.
    pub const RX: Prot = Prot {
        read: true,
        write: false,
        exec: true,
    };
    /// `rw-` — data segments, heaps, stacks.
    pub const RW: Prot = Prot {
        read: true,
        write: true,
        exec: false,
    };
    /// `r--` — read-only data.
    pub const R: Prot = Prot {
        read: true,
        write: false,
        exec: false,
    };
}

impl fmt::Display for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.exec { 'x' } else { '-' }
        )
    }
}

/// What backs a mapping; used by diagnostics and by the dyld accounting.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// Main binary text/data.
    Binary,
    /// A dynamically loaded library.
    Dylib,
    /// The dyld shared cache (one giant prelinked mapping).
    SharedCache,
    /// Anonymous memory (heap, stack).
    Anonymous,
    /// Graphics / IOSurface memory shared with the GPU.
    Graphics,
}

/// One contiguous virtual-memory mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// Start address (page-aligned).
    pub start: u64,
    /// Length in bytes (page-aligned).
    pub len: u64,
    /// Protection.
    pub prot: Prot,
    /// Backing kind.
    pub kind: MappingKind,
    /// Diagnostic name (library path, `[heap]`, ...).
    pub name: String,
}

impl Mapping {
    /// Number of page-table entries this mapping occupies.
    pub fn pte_count(&self) -> u64 {
        self.len.div_ceil(PAGE_SIZE)
    }

    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// A process's virtual address space.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    maps: BTreeMap<u64, Mapping>,
    next_free: u64,
}

/// Base of the mmap allocation area.
const MMAP_BASE: u64 = 0x4000_0000;

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace {
            maps: BTreeMap::new(),
            next_free: MMAP_BASE,
        }
    }

    /// Maps `len` bytes at a kernel-chosen address.
    ///
    /// # Errors
    ///
    /// Returns `ENOMEM` if `len` is zero (nothing to map).
    pub fn map(
        &mut self,
        len: u64,
        prot: Prot,
        kind: MappingKind,
        name: impl Into<String>,
    ) -> Result<u64, Errno> {
        if len == 0 {
            return Err(Errno::ENOMEM);
        }
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let start = self.next_free;
        self.next_free += len + PAGE_SIZE; // guard page
        self.maps.insert(
            start,
            Mapping {
                start,
                len,
                prot,
                kind,
                name: name.into(),
            },
        );
        Ok(start)
    }

    /// Maps at a caller-fixed address (used by binary loaders).
    ///
    /// # Errors
    ///
    /// Returns `EINVAL` on overlap with an existing mapping or an
    /// unaligned address.
    pub fn map_fixed(
        &mut self,
        start: u64,
        len: u64,
        prot: Prot,
        kind: MappingKind,
        name: impl Into<String>,
    ) -> Result<(), Errno> {
        if !start.is_multiple_of(PAGE_SIZE) || len == 0 {
            return Err(Errno::EINVAL);
        }
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let end = start + len;
        let overlaps = self
            .maps
            .range(..end)
            .next_back()
            .map(|(_, m)| m.end() > start)
            .unwrap_or(false);
        if overlaps {
            return Err(Errno::EINVAL);
        }
        self.maps.insert(
            start,
            Mapping {
                start,
                len,
                prot,
                kind,
                name: name.into(),
            },
        );
        self.next_free = self.next_free.max(end + PAGE_SIZE);
        Ok(())
    }

    /// Unmaps the mapping starting exactly at `start`.
    ///
    /// # Errors
    ///
    /// Returns `EINVAL` if no mapping starts there.
    pub fn unmap(&mut self, start: u64) -> Result<Mapping, Errno> {
        self.maps.remove(&start).ok_or(Errno::EINVAL)
    }

    /// Iterates over all mappings in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Mapping> {
        self.maps.values()
    }

    /// Looks up the mapping containing `addr`.
    pub fn find(&self, addr: u64) -> Option<&Mapping> {
        self.maps
            .range(..=addr)
            .next_back()
            .map(|(_, m)| m)
            .filter(|m| addr < m.end())
    }

    /// Number of mappings.
    pub fn mapping_count(&self) -> usize {
        self.maps.len()
    }

    /// Total page-table entries across all mappings — the unit `fork`
    /// duplication cost scales with.
    ///
    /// Shared-cache mappings are excluded: XNU "treats the shared cache
    /// in a special way" (paper §6.2) — the shared region lives outside
    /// the per-process page tables, so `fork` on a real iOS device does
    /// not duplicate its entries. The Cider prototype has no shared
    /// cache, so its iOS processes pay for every dylib page.
    pub fn total_ptes(&self) -> u64 {
        self.maps
            .values()
            .filter(|m| m.kind != MappingKind::SharedCache)
            .map(Mapping::pte_count)
            .sum()
    }

    /// Total mapped bytes.
    pub fn total_bytes(&self) -> u64 {
        self.maps.values().map(|m| m.len).sum()
    }

    /// Duplicates the address space for `fork`, visiting every PTE.
    /// Returns the new space and the number of PTEs copied (the caller
    /// charges `pte_copy_ns` per entry).
    pub fn fork_duplicate(&self) -> (AddressSpace, u64) {
        let ptes = self.total_ptes();
        (self.clone(), ptes)
    }

    /// Drops everything, as `exec` does before loading the new image.
    pub fn clear(&mut self) {
        self.maps.clear();
        self.next_free = MMAP_BASE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_rounds_to_pages_and_counts_ptes() {
        let mut a = AddressSpace::new();
        let start = a
            .map(5000, Prot::RW, MappingKind::Anonymous, "[heap]")
            .unwrap();
        let m = a.find(start).unwrap();
        assert_eq!(m.len, 2 * PAGE_SIZE);
        assert_eq!(m.pte_count(), 2);
        assert_eq!(a.total_ptes(), 2);
    }

    #[test]
    fn map_zero_fails() {
        let mut a = AddressSpace::new();
        assert_eq!(
            a.map(0, Prot::RW, MappingKind::Anonymous, "x"),
            Err(Errno::ENOMEM)
        );
    }

    #[test]
    fn fixed_mapping_rejects_overlap() {
        let mut a = AddressSpace::new();
        a.map_fixed(0x1000, 0x2000, Prot::RX, MappingKind::Binary, "bin")
            .unwrap();
        assert_eq!(
            a.map_fixed(0x2000, 0x1000, Prot::RW, MappingKind::Binary, "d"),
            Err(Errno::EINVAL)
        );
        // Adjacent is fine.
        a.map_fixed(0x3000, 0x1000, Prot::RW, MappingKind::Binary, "d")
            .unwrap();
    }

    #[test]
    fn fixed_mapping_rejects_unaligned() {
        let mut a = AddressSpace::new();
        assert_eq!(
            a.map_fixed(0x1001, 0x1000, Prot::RW, MappingKind::Binary, "b"),
            Err(Errno::EINVAL)
        );
    }

    #[test]
    fn find_resolves_addresses() {
        let mut a = AddressSpace::new();
        let s = a
            .map(PAGE_SIZE, Prot::R, MappingKind::Dylib, "libfoo")
            .unwrap();
        assert!(a.find(s).is_some());
        assert!(a.find(s + PAGE_SIZE - 1).is_some());
        assert!(a.find(s + PAGE_SIZE).is_none());
    }

    #[test]
    fn fork_duplicate_reports_pte_work() {
        let mut a = AddressSpace::new();
        // 90 MB of dylibs, as dyld maps for an iOS process.
        a.map(90 * 1024 * 1024, Prot::RX, MappingKind::Dylib, "frameworks")
            .unwrap();
        let (b, ptes) = a.fork_duplicate();
        assert_eq!(ptes, 90 * 1024 * 1024 / PAGE_SIZE);
        assert_eq!(b.total_ptes(), a.total_ptes());
    }

    #[test]
    fn unmap_and_clear() {
        let mut a = AddressSpace::new();
        let s = a
            .map(PAGE_SIZE, Prot::RW, MappingKind::Anonymous, "x")
            .unwrap();
        assert!(a.unmap(s).is_ok());
        assert_eq!(a.unmap(s), Err(Errno::EINVAL));
        a.map(PAGE_SIZE, Prot::RW, MappingKind::Anonymous, "y")
            .unwrap();
        a.clear();
        assert_eq!(a.mapping_count(), 0);
    }

    #[test]
    fn prot_display() {
        assert_eq!(Prot::RX.to_string(), "r-x");
        assert_eq!(Prot::RW.to_string(), "rw-");
    }
}
