//! Processes, threads, and the user-space callback registries that drive
//! the paper's fork/exit cost analysis.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

use cider_abi::ids::{Pid, Tid};
use cider_abi::signal::Signal;

use crate::fdtable::FdTable;
use crate::mm::AddressSpace;

/// Index into the kernel's personality table; selects which syscall
/// dispatch tables and conventions a thread's traps use.
pub type PersonalityId = usize;

/// Extension state a higher layer (Cider) attaches to a thread — persona
/// bookkeeping lives here without the base kernel knowing its shape.
pub trait ThreadExt: fmt::Debug + Send {
    /// Upcast for downcasting by the owning layer.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Clone for `fork`/`clone` — personas are "inherited on fork or
    /// clone" (paper §4.1).
    fn clone_ext(&self) -> Box<dyn ThreadExt>;
}

/// Scheduler state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run.
    Runnable,
    /// Parked on a wait channel (psynch, Mach receive, ...).
    Blocked(WaitChannel),
    /// Terminated.
    Exited,
}

/// An opaque wait-queue identifier, analogous to an XNU `event_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WaitChannel(pub u64);

/// One kernel thread.
#[derive(Debug)]
pub struct Thread {
    /// Thread id.
    pub tid: Tid,
    /// Owning process.
    pub pid: Pid,
    /// Scheduler state.
    pub state: ThreadState,
    /// Which personality's dispatch tables this thread traps into.
    pub personality: PersonalityId,
    /// Blocked-signal mask (bit = Linux signal number).
    pub sigmask: u64,
    /// Signals queued for this thread, in Linux numbering.
    pub pending: Vec<Signal>,
    /// Log of signals actually delivered, as the raw number user space saw
    /// and the frame size pushed (observable by tests and benches).
    pub delivered: Vec<DeliveredSignal>,
    /// Extension slot for higher layers (Cider persona state).
    pub ext: Option<Box<dyn ThreadExt>>,
}

/// Record of one signal delivery as user space observed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredSignal {
    /// Internal (Linux-numbered) signal.
    pub internal: Signal,
    /// The raw number presented to user space after any persona
    /// translation.
    pub user_number: i32,
    /// Signal-frame bytes pushed on the user stack.
    pub frame_bytes: usize,
}

impl Thread {
    pub(crate) fn fork_clone(&self, tid: Tid, pid: Pid) -> Thread {
        Thread {
            tid,
            pid,
            state: ThreadState::Runnable,
            personality: self.personality,
            sigmask: self.sigmask,
            pending: Vec::new(),
            delivered: Vec::new(),
            ext: self.ext.as_ref().map(|e| e.clone_ext()),
        }
    }
}

/// Disposition of a signal in a process's handler table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SigDisposition {
    /// Default action (terminate for most; SIGCHLD ignored).
    #[default]
    Default,
    /// Explicitly ignored.
    Ignore,
    /// A user handler is installed (we track the registration id).
    Handler(u32),
}

/// Process lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessState {
    /// Alive.
    Running,
    /// Exited, waiting to be reaped; holds the exit code.
    Zombie(i32),
}

/// A registered user-space callback (atfork / atexit handler). The paper
/// measured 115 dylibs each registering fork and exit handlers; invoking
/// them is the bulk of the iOS `fork+exit` overhead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserCallback {
    /// Diagnostic name (usually the registering library).
    pub name: String,
}

/// The user-space callback tables dyld and libSystem maintain.
#[derive(Debug, Clone, Default)]
pub struct UserCallbacks {
    /// `pthread_atfork` prepare handlers (run in parent before fork).
    pub atfork_prepare: Vec<UserCallback>,
    /// `pthread_atfork` parent handlers (run in parent after fork).
    pub atfork_parent: Vec<UserCallback>,
    /// `pthread_atfork` child handlers (run in child after fork).
    pub atfork_child: Vec<UserCallback>,
    /// `atexit` handlers (run at exit; dyld registers one per image).
    pub atexit: Vec<UserCallback>,
}

impl UserCallbacks {
    /// Total atfork handlers across the three phases.
    pub fn atfork_total(&self) -> usize {
        self.atfork_prepare.len()
            + self.atfork_parent.len()
            + self.atfork_child.len()
    }
}

/// Information about the program image a process is executing.
#[derive(Debug, Clone, Default)]
pub struct ProgramInfo {
    /// Path of the executed binary.
    pub path: String,
    /// Arguments.
    pub argv: Vec<String>,
    /// Behaviour key looked up in the kernel's program registry.
    pub entry_symbol: Option<String>,
    /// Name of the binary format that loaded it ("elf", "macho").
    pub format: &'static str,
    /// Dynamic libraries mapped at load time.
    pub dylib_count: u32,
}

/// One process.
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent, if any.
    pub parent: Option<Pid>,
    /// Address space.
    pub mm: AddressSpace,
    /// Descriptor table.
    pub fds: FdTable,
    /// Current working directory.
    pub cwd: String,
    /// Threads belonging to this process.
    pub threads: Vec<Tid>,
    /// Children (live or zombie).
    pub children: Vec<Pid>,
    /// Lifecycle state.
    pub state: ProcessState,
    /// Registered user callbacks.
    pub callbacks: UserCallbacks,
    /// Program image info.
    pub program: ProgramInfo,
    /// Signal dispositions, keyed by Linux signal number.
    pub sig_handlers: BTreeMap<i32, SigDisposition>,
    /// Bytes written to the console by this process (stdout capture).
    pub console: Vec<u8>,
}

impl Process {
    pub(crate) fn new(pid: Pid, parent: Option<Pid>) -> Process {
        Process {
            pid,
            parent,
            mm: AddressSpace::new(),
            fds: FdTable::with_stdio(),
            cwd: "/".to_string(),
            threads: Vec::new(),
            children: Vec::new(),
            state: ProcessState::Running,
            callbacks: UserCallbacks::default(),
            program: ProgramInfo::default(),
            sig_handlers: BTreeMap::new(),
            console: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn callbacks_totals() {
        let mut cb = UserCallbacks::default();
        for i in 0..115 {
            let name = format!("lib{i}");
            cb.atfork_prepare.push(UserCallback { name: name.clone() });
            cb.atfork_parent.push(UserCallback { name: name.clone() });
            cb.atfork_child.push(UserCallback { name: name.clone() });
            cb.atexit.push(UserCallback { name });
        }
        assert_eq!(cb.atfork_total(), 345);
        assert_eq!(cb.atexit.len(), 115);
    }

    #[test]
    fn thread_fork_clone_inherits_personality_and_mask() {
        let t = Thread {
            tid: Tid(1),
            pid: Pid(1),
            state: ThreadState::Runnable,
            personality: 2,
            sigmask: 0b1010,
            pending: vec![Signal::SIGUSR1],
            delivered: vec![],
            ext: None,
        };
        let c = t.fork_clone(Tid(9), Pid(5));
        assert_eq!(c.personality, 2);
        assert_eq!(c.sigmask, 0b1010);
        // Pending signals are not inherited across fork.
        assert!(c.pending.is_empty());
        assert_eq!(c.state, ThreadState::Runnable);
    }

    #[test]
    fn new_process_has_stdio() {
        let p = Process::new(Pid(1), None);
        assert_eq!(p.fds.len(), 3);
        assert_eq!(p.state, ProcessState::Running);
        assert_eq!(p.cwd, "/");
    }
}
