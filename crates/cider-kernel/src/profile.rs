//! Device cost profiles.
//!
//! A [`DeviceProfile`] collects the per-operation virtual-time costs of one
//! physical device (CPU speed, storage bandwidth, GPU throughput, and the
//! kernel-implementation quirks the paper observed, such as XNU's
//! pathological `select`). The two profiles used by the evaluation are
//! [`DeviceProfile::nexus7`] and [`DeviceProfile::ipad_mini`].
//!
//! Costs fall into two kinds:
//!
//! * **mechanical costs** — charged per unit of real work the simulator
//!   performs (one page-table entry copied, one dylib mapped, one user
//!   callback invoked). The paper's headline overheads *emerge* from these.
//! * **calibrated constants** — raw hardware characteristics (a divide
//!   latency, flash bandwidth) that cannot emerge from simulation and are
//!   instead taken from the devices' public spec sheets and lmbench numbers.
//!   They are documented per-field and recorded in `EXPERIMENTS.md`.

/// Which compiler produced a binary. The paper's basic-ops microbenchmarks
/// showed GCC 4.4.1 generating a better integer-divide sequence than Xcode
/// 4.2.1 (Figure 5, leftmost group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Toolchain {
    /// Linux GCC 4.4.1 (domestic binaries).
    #[default]
    Gcc,
    /// Xcode 4.2.1 / clang (foreign binaries).
    Xcode,
}

impl Toolchain {
    /// Latency multiplier for one basic-op class relative to GCC output.
    pub fn basic_op_factor(self, op: BasicOp) -> f64 {
        match (self, op) {
            // "the Linux compiler generated more optimized code than the
            // iOS compiler" for integer divide (§6.2).
            (Toolchain::Xcode, BasicOp::IntDiv) => 1.55,
            _ => 1.0,
        }
    }
}

/// The lmbench basic CPU operations (Figure 5, first group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasicOp {
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Double-precision add.
    DoubleAdd,
    /// Double-precision multiply.
    DoubleMul,
    /// Double-precision "bogomflops" kernel.
    DoubleBogomflops,
}

impl BasicOp {
    /// All basic ops in Figure 5 order.
    pub const ALL: [BasicOp; 5] = [
        BasicOp::IntMul,
        BasicOp::IntDiv,
        BasicOp::DoubleAdd,
        BasicOp::DoubleMul,
        BasicOp::DoubleBogomflops,
    ];

    /// Stable lower-case name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            BasicOp::IntMul => "int mul",
            BasicOp::IntDiv => "int div",
            BasicOp::DoubleAdd => "double add",
            BasicOp::DoubleMul => "double mul",
            BasicOp::DoubleBogomflops => "double bogomflops",
        }
    }
}

/// How the kernel's `select` implementation scales with descriptor count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectModel {
    /// Linux: one linear scan over the fd set.
    Linear,
    /// XNU (as measured on the iPad mini): superlinear growth, and the
    /// call fails outright at `fail_at` descriptors (§6.2: "The test simply
    /// failed to complete for 250 file descriptors").
    Superlinear {
        /// Descriptor count at which the call stops completing.
        fail_at: usize,
    },
}

/// Storage (flash) characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageModel {
    /// Sequential read bandwidth, bytes per virtual second.
    pub read_bytes_per_sec: u64,
    /// Sequential write bandwidth, bytes per virtual second.
    pub write_bytes_per_sec: u64,
    /// Fixed per-operation latency, ns.
    pub op_latency_ns: u64,
}

/// Per-device virtual-time cost profile.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Multiplier applied to all CPU-bound costs (1.0 = Nexus 7's
    /// 1.3 GHz Tegra 3; larger = slower CPU).
    pub cpu_scale: f64,
    /// Multiplier applied to GPU command costs (smaller = faster GPU; the
    /// iPad mini's SGX543MP2 outperforms the Tegra 3's GPU).
    pub gpu_scale: f64,
    /// Base latency of entering + leaving the kernel for a trap, ns.
    /// Calibrated to lmbench's null-syscall on the Nexus 7 (~0.4 µs).
    pub syscall_entry_exit_ns: u64,
    /// Cost of the per-trap persona check Cider adds ("extra persona
    /// checking and handling code run on every syscall entry", §6.2) —
    /// charged only when the Cider extension is active.
    pub persona_check_ns: u64,
    /// Cost of determining the persona of a signal's target thread,
    /// charged per delivery on a Cider-enabled kernel.
    pub persona_signal_check_ns: u64,
    /// Fixed cost of `fork` excluding PTE duplication, fd cloning, and
    /// user callbacks (task allocation, COW arming).
    pub fork_base_ns: u64,
    /// Fixed cost of `exec` excluding image mapping and linking.
    pub exec_base_ns: u64,
    /// Fixed cost of `exit` excluding atexit handlers.
    pub exit_base_ns: u64,
    /// Cost of cloning one descriptor-table entry during `fork`.
    pub fd_clone_ns: u64,
    /// Cost of duplicating one page-table entry during `fork`, ns.
    /// ~43 ns reproduces the paper's "almost 1 ms of extra overhead" for
    /// the 90 MB / ~23 000-PTE iOS address space.
    pub pte_copy_ns: u64,
    /// Cost of one user-space callback invocation (atfork / atexit
    /// handler). 115 dylibs × 3 atfork + 115 atexit handlers at ~5.4 µs
    /// reproduce the paper's "2.5 ms of extra overhead" (§6.2).
    pub user_callback_ns: u64,
    /// Cost of one context switch between threads, ns.
    pub context_switch_ns: u64,
    /// Cost of delivering a signal, excluding frame construction, ns.
    pub signal_base_ns: u64,
    /// Cost per byte of signal-frame construction, ns (multiplied by the
    /// persona's frame size).
    pub signal_frame_byte_ns: f64,
    /// VFS path-component resolution cost, ns per component.
    pub path_component_ns: u64,
    /// Base cost of a VFS operation (open/close/create/unlink), ns.
    pub vfs_op_ns: u64,
    /// Per-byte cost of copying data across the user/kernel boundary, ns.
    pub copy_byte_ns: f64,
    /// Per-fd cost of one `select` scan, ns.
    pub select_per_fd_ns: u64,
    /// Select scaling model of the kernel implementation.
    pub select_model: SelectModel,
    /// Latency of one basic CPU op (GCC code generation), ns.
    pub basic_op_ns: fn(BasicOp) -> f64,
    /// Storage characteristics.
    pub storage: StorageModel,
    /// Whether the dynamic linker has a prelinked shared cache ("iOS's
    /// dyld stores common libraries prelinked on disk in a shared cache",
    /// §6.2). True only on real iOS devices; the Cider prototype does not
    /// support it.
    pub shared_dyld_cache: bool,
    /// Cost of mapping one dylib's segments during exec, ns (excluding the
    /// VFS walk, which is charged per path component and per byte).
    pub dylib_map_ns: u64,
}

fn nexus7_basic_op(op: BasicOp) -> f64 {
    // lmbench-style latencies for a 1.3 GHz Cortex-A9 (Tegra 3), ns/op.
    match op {
        BasicOp::IntMul => 3.1,
        BasicOp::IntDiv => 13.8,
        BasicOp::DoubleAdd => 3.8,
        BasicOp::DoubleMul => 4.6,
        BasicOp::DoubleBogomflops => 11.5,
    }
}

fn ipad_mini_basic_op(op: BasicOp) -> f64 {
    // 1 GHz dual Cortex-A9 (Apple A5): same microarchitecture run ~30 %
    // slower by clock ("the iPad mini's CPU is not as fast as the Nexus
    // 7's CPU for basic math operations", §6.2).
    nexus7_basic_op(op) * 1.3
}

impl DeviceProfile {
    /// The Google Nexus 7 (2012): 1.3 GHz quad Tegra 3, 1 GB RAM, 16 GB
    /// flash, Android 4.2 — the paper's Cider device.
    pub fn nexus7() -> DeviceProfile {
        DeviceProfile {
            name: "Nexus 7",
            cpu_scale: 1.0,
            gpu_scale: 1.0,
            syscall_entry_exit_ns: 400,
            persona_check_ns: 34,
            persona_signal_check_ns: 150,
            fork_base_ns: 210_000,
            exec_base_ns: 320_000,
            exit_base_ns: 20_000,
            fd_clone_ns: 120,
            pte_copy_ns: 43,
            user_callback_ns: 5_400,
            context_switch_ns: 6_000,
            signal_base_ns: 2_800,
            signal_frame_byte_ns: 1.6,
            path_component_ns: 900,
            vfs_op_ns: 2_400,
            copy_byte_ns: 0.35,
            select_per_fd_ns: 110,
            select_model: SelectModel::Linear,
            basic_op_ns: nexus7_basic_op,
            storage: StorageModel {
                // Kingston eMMC in the 2012 Nexus 7: quick reads, famously
                // slow writes.
                read_bytes_per_sec: 28 * 1024 * 1024,
                write_bytes_per_sec: 7 * 1024 * 1024,
                op_latency_ns: 90_000,
            },
            shared_dyld_cache: false,
            dylib_map_ns: 9_000,
        }
    }

    /// The iPad mini (1st gen): 1 GHz dual A5, 512 MB RAM, iOS 6.1.2 —
    /// the paper's native-iOS comparison device.
    pub fn ipad_mini() -> DeviceProfile {
        DeviceProfile {
            name: "iPad mini",
            cpu_scale: 1.3,
            // SGX543MP2 comfortably beats the Tegra 3 GPU.
            gpu_scale: 0.55,
            syscall_entry_exit_ns: 520,
            // The native XNU kernel has no persona machinery; these are
            // never charged on the iPad configuration.
            persona_check_ns: 0,
            persona_signal_check_ns: 0,
            fork_base_ns: 160_000,
            exec_base_ns: 170_000,
            exit_base_ns: 26_000,
            fd_clone_ns: 150,
            pte_copy_ns: 56,
            user_callback_ns: 7_000,
            context_switch_ns: 7_800,
            // XNU routes signals through the Mach exception machinery
            // before the BSD layer delivers them — far slower than Linux
            // (§6.2: the iPad takes 175 % longer than Cider iOS).
            signal_base_ns: 8_500,
            signal_frame_byte_ns: 2.9,
            path_component_ns: 1_200,
            vfs_op_ns: 3_100,
            copy_byte_ns: 0.45,
            select_per_fd_ns: 440,
            select_model: SelectModel::Superlinear { fail_at: 250 },
            basic_op_ns: ipad_mini_basic_op,
            storage: StorageModel {
                // Apple's flash controller: similar reads, far better
                // writes than the Nexus 7 (§6.3 storage group).
                read_bytes_per_sec: 30 * 1024 * 1024,
                write_bytes_per_sec: 22 * 1024 * 1024,
                op_latency_ns: 80_000,
            },
            shared_dyld_cache: true,
            dylib_map_ns: 11_000,
        }
    }

    /// CPU-scaled cost: multiplies a Nexus-7-relative cost by this
    /// device's CPU factor.
    pub fn cpu_ns(&self, base_ns: u64) -> u64 {
        (base_ns as f64 * self.cpu_scale) as u64
    }

    /// Cost of one `select` scan over `nfds` descriptors, or `None` when
    /// the kernel's implementation fails at that size.
    pub fn select_cost_ns(&self, nfds: usize) -> Option<u64> {
        match self.select_model {
            SelectModel::Linear => {
                Some(self.cpu_ns(self.select_per_fd_ns * nfds as u64))
            }
            SelectModel::Superlinear { fail_at } => {
                if nfds >= fail_at {
                    return None;
                }
                // Quadratic-ish term models XNU's per-fd re-registration.
                let linear = self.select_per_fd_ns * nfds as u64;
                let quad = (nfds * nfds) as u64 * self.select_per_fd_ns / 64;
                Some(self.cpu_ns(linear + quad))
            }
        }
    }

    /// Storage-transfer cost for `bytes` in one direction.
    pub fn storage_cost_ns(&self, bytes: u64, write: bool) -> u64 {
        let bw = if write {
            self.storage.write_bytes_per_sec
        } else {
            self.storage.read_bytes_per_sec
        };
        self.storage.op_latency_ns + bytes.saturating_mul(1_000_000_000) / bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nexus7_faster_cpu_than_ipad() {
        let n = DeviceProfile::nexus7();
        let i = DeviceProfile::ipad_mini();
        for op in BasicOp::ALL {
            assert!((n.basic_op_ns)(op) < (i.basic_op_ns)(op), "{op:?}");
        }
        assert!(n.cpu_scale < i.cpu_scale);
    }

    #[test]
    fn ipad_faster_gpu_and_writes() {
        let n = DeviceProfile::nexus7();
        let i = DeviceProfile::ipad_mini();
        assert!(i.gpu_scale < n.gpu_scale);
        assert!(i.storage.write_bytes_per_sec > n.storage.write_bytes_per_sec);
    }

    #[test]
    fn xcode_penalizes_int_div_only() {
        for op in BasicOp::ALL {
            let f = Toolchain::Xcode.basic_op_factor(op);
            if op == BasicOp::IntDiv {
                assert!(f > 1.0);
            } else {
                assert_eq!(f, 1.0);
            }
            assert_eq!(Toolchain::Gcc.basic_op_factor(op), 1.0);
        }
    }

    #[test]
    fn linux_select_scales_linearly() {
        let n = DeviceProfile::nexus7();
        let c10 = n.select_cost_ns(10).unwrap();
        let c100 = n.select_cost_ns(100).unwrap();
        assert_eq!(c100, c10 * 10);
    }

    #[test]
    fn xnu_select_superlinear_and_fails_at_250() {
        let i = DeviceProfile::ipad_mini();
        let c10 = i.select_cost_ns(10).unwrap();
        let c100 = i.select_cost_ns(100).unwrap();
        assert!(c100 > c10 * 10, "superlinear growth expected");
        assert_eq!(i.select_cost_ns(250), None);
        assert_eq!(i.select_cost_ns(400), None);
        assert!(i.select_cost_ns(249).is_some());
    }

    #[test]
    fn ipad_select_much_slower_than_nexus_at_scale() {
        // §6.2: "more than 10 times the cost of running the test on
        // vanilla Android" near the top of the sweep.
        let n = DeviceProfile::nexus7();
        let i = DeviceProfile::ipad_mini();
        let ratio = i.select_cost_ns(225).unwrap() as f64
            / n.select_cost_ns(225).unwrap() as f64;
        assert!(ratio > 10.0, "ratio {ratio}");
    }

    #[test]
    fn storage_cost_includes_latency_and_bandwidth() {
        let n = DeviceProfile::nexus7();
        let one_mb = n.storage_cost_ns(1024 * 1024, true);
        // 1 MiB at 7 MiB/s ≈ 143 ms, plus latency.
        assert!(one_mb > 100_000_000);
        let read = n.storage_cost_ns(1024 * 1024, false);
        assert!(read < one_mb, "reads faster than writes on the Nexus 7");
    }
}
