//! In-memory virtual filesystem with overlay support.
//!
//! Cider "overlays a file system hierarchy on the existing Android FS"
//! (paper §3) so that iOS apps see familiar paths such as `/Documents` and
//! `/System/Library` while Android apps keep seeing the stock tree. The
//! [`Vfs`] models this with a *lower* (domestic) tree and an optional
//! *upper* (foreign overlay) tree sharing one node arena: resolution
//! prefers the upper tree and falls back to the lower one.
//!
//! Path resolution reports how many components were walked so the kernel
//! can charge virtual time per component — the cost that makes dyld's
//! 115-library filesystem walk expensive in the paper's `fork+exec(ios)`
//! measurement.

use std::collections::BTreeMap;

use cider_abi::errno::Errno;
use cider_abi::types::{FileType, Stat};

/// Inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ino(pub u64);

/// Identifier of a registered character device, resolved through the
/// kernel's device registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u32);

#[derive(Debug, Clone)]
enum NodeKind {
    Dir(BTreeMap<String, Ino>),
    File(Vec<u8>),
    Symlink(String),
    Device(DeviceId),
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    mode: u32,
    nlink: u32,
    mtime_ns: u64,
}

/// Result of a path resolution: the inode plus the accounting the kernel
/// needs to charge virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolved {
    /// The resolved inode.
    pub ino: Ino,
    /// Path components traversed, including fallback walks.
    pub components_walked: usize,
    /// Whether the final hit was in the overlay (upper) tree.
    pub in_overlay: bool,
}

/// Which tree a path resolved (or would resolve) in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tree {
    Upper,
    Lower,
}

/// Maximum symlink expansions before `ELOOP`.
const MAX_SYMLINK_DEPTH: usize = 8;

/// An in-memory filesystem with a domestic tree and an optional foreign
/// overlay tree.
///
/// # Example
///
/// ```
/// use cider_kernel::vfs::Vfs;
///
/// let mut fs = Vfs::new();
/// fs.mkdir_p("/data/app").unwrap();
/// fs.write_file("/data/app/readme", b"hi".to_vec()).unwrap();
/// assert_eq!(fs.read_file("/data/app/readme").unwrap(), b"hi");
/// ```
#[derive(Debug, Clone)]
pub struct Vfs {
    nodes: BTreeMap<u64, Node>,
    next_ino: u64,
    root_lower: Ino,
    root_upper: Option<Ino>,
    now_ns: u64,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates an empty filesystem with a lower root directory.
    pub fn new() -> Vfs {
        let mut fs = Vfs {
            nodes: BTreeMap::new(),
            next_ino: 1,
            root_lower: Ino(0),
            root_upper: None,
            now_ns: 0,
        };
        fs.root_lower = fs.alloc(NodeKind::Dir(BTreeMap::new()), 0o755);
        fs
    }

    /// Installs an (initially empty) overlay tree; foreign paths are
    /// created in and resolved from it first. Idempotent.
    pub fn enable_overlay(&mut self) {
        if self.root_upper.is_none() {
            let r = self.alloc(NodeKind::Dir(BTreeMap::new()), 0o755);
            self.root_upper = Some(r);
        }
    }

    /// Whether the foreign overlay is mounted.
    pub fn overlay_enabled(&self) -> bool {
        self.root_upper.is_some()
    }

    /// Sets the timestamp recorded on subsequently modified nodes.
    pub fn set_time(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
    }

    fn alloc(&mut self, kind: NodeKind, mode: u32) -> Ino {
        let ino = Ino(self.next_ino);
        self.next_ino += 1;
        self.nodes.insert(
            ino.0,
            Node {
                kind,
                mode,
                nlink: 1,
                mtime_ns: self.now_ns,
            },
        );
        ino
    }

    /// Infallible lookup for inodes that were just produced by a tree
    /// walk (they cannot dangle while the walk's borrow is fresh).
    fn node(&self, ino: Ino) -> &Node {
        self.nodes.get(&ino.0).expect("dangling inode")
    }

    fn node_mut(&mut self, ino: Ino) -> &mut Node {
        self.nodes.get_mut(&ino.0).expect("dangling inode")
    }

    /// Fallible lookup for inodes held across calls (descriptor
    /// tables): the file may have been unlinked since, which surfaces
    /// as `EIO` instead of a panic — stale-handle semantics.
    fn try_node(&self, ino: Ino) -> Result<&Node, Errno> {
        self.nodes.get(&ino.0).ok_or(Errno::EIO)
    }

    fn try_node_mut(&mut self, ino: Ino) -> Result<&mut Node, Errno> {
        self.nodes.get_mut(&ino.0).ok_or(Errno::EIO)
    }

    fn split(path: &str) -> Result<Vec<&str>, Errno> {
        if !path.starts_with('/') {
            return Err(Errno::EINVAL);
        }
        Ok(path
            .split('/')
            .filter(|c| !c.is_empty() && *c != ".")
            .collect())
    }

    fn walk_tree(
        &self,
        root: Ino,
        comps: &[&str],
        walked: &mut usize,
        depth: usize,
    ) -> Result<Ino, Errno> {
        if depth > MAX_SYMLINK_DEPTH {
            return Err(Errno::ELOOP);
        }
        let mut cur = root;
        let mut stack: Vec<Ino> = vec![root];
        let mut i = 0;
        while i < comps.len() {
            let comp = comps[i];
            *walked += 1;
            if comp == ".." {
                stack.pop();
                cur = stack.last().copied().unwrap_or(root);
                i += 1;
                continue;
            }
            let next = match &self.node(cur).kind {
                NodeKind::Dir(entries) => {
                    *entries.get(comp).ok_or(Errno::ENOENT)?
                }
                _ => return Err(Errno::ENOTDIR),
            };
            if let NodeKind::Symlink(target) = &self.node(next).kind {
                let target = target.clone();
                let tcomps = Self::split(&target)?;
                let resolved =
                    self.walk_tree(root, &tcomps, walked, depth + 1)?;
                cur = resolved;
                stack.push(resolved);
                i += 1;
                continue;
            }
            cur = next;
            stack.push(next);
            i += 1;
        }
        Ok(cur)
    }

    /// Resolves an absolute path, preferring the overlay.
    ///
    /// # Errors
    ///
    /// `ENOENT` if the path exists in neither tree, `ENOTDIR` when a
    /// non-directory appears mid-path, `ELOOP` on symlink cycles,
    /// `EINVAL` for relative paths.
    pub fn resolve(&self, path: &str) -> Result<Resolved, Errno> {
        let comps = Self::split(path)?;
        let mut walked = 0;
        if let Some(upper) = self.root_upper {
            if let Ok(ino) = self.walk_tree(upper, &comps, &mut walked, 0) {
                return Ok(Resolved {
                    ino,
                    components_walked: walked,
                    in_overlay: true,
                });
            }
        }
        let ino = self.walk_tree(self.root_lower, &comps, &mut walked, 0)?;
        Ok(Resolved {
            ino,
            components_walked: walked,
            in_overlay: false,
        })
    }

    /// Picks the tree a new entry under `parent_comps` should go to:
    /// upper if the parent resolves there, else lower.
    fn tree_for_create(&self, comps: &[&str]) -> Result<(Ino, Tree), Errno> {
        let mut walked = 0;
        if let Some(upper) = self.root_upper {
            if let Ok(parent) = self.walk_tree(upper, comps, &mut walked, 0) {
                return Ok((parent, Tree::Upper));
            }
        }
        let parent = self.walk_tree(self.root_lower, comps, &mut walked, 0)?;
        Ok((parent, Tree::Lower))
    }

    /// Creates a directory and all missing ancestors (in the tree where
    /// the deepest existing ancestor lives).
    ///
    /// # Errors
    ///
    /// `ENOTDIR` if a path component is a file.
    pub fn mkdir_p(&mut self, path: &str) -> Result<Ino, Errno> {
        let comps = Self::split(path)?;
        let (mut cur, _) = self.tree_for_create(&[])?;
        for comp in &comps {
            if *comp == ".." {
                return Err(Errno::EINVAL);
            }
            let existing = match &self.node(cur).kind {
                NodeKind::Dir(entries) => entries.get(*comp).copied(),
                _ => return Err(Errno::ENOTDIR),
            };
            cur = match existing {
                Some(ino) => {
                    if !matches!(self.node(ino).kind, NodeKind::Dir(_)) {
                        return Err(Errno::ENOTDIR);
                    }
                    ino
                }
                None => {
                    let d = self.alloc(NodeKind::Dir(BTreeMap::new()), 0o755);
                    self.link(cur, comp, d)?;
                    d
                }
            };
        }
        Ok(cur)
    }

    /// Creates a directory in the *overlay* tree (enabling it if needed),
    /// used to build the iOS hierarchy.
    pub fn mkdir_p_overlay(&mut self, path: &str) -> Result<Ino, Errno> {
        self.enable_overlay();
        let comps = Self::split(path)?;
        let mut cur = self.root_upper.expect("just enabled");
        for comp in &comps {
            let existing = match &self.node(cur).kind {
                NodeKind::Dir(entries) => entries.get(*comp).copied(),
                _ => return Err(Errno::ENOTDIR),
            };
            cur = match existing {
                Some(ino) => ino,
                None => {
                    let d = self.alloc(NodeKind::Dir(BTreeMap::new()), 0o755);
                    self.link(cur, comp, d)?;
                    d
                }
            };
        }
        Ok(cur)
    }

    fn link(&mut self, dir: Ino, name: &str, child: Ino) -> Result<(), Errno> {
        let now = self.now_ns;
        match &mut self.node_mut(dir).kind {
            NodeKind::Dir(entries) => {
                if entries.contains_key(name) {
                    return Err(Errno::EEXIST);
                }
                entries.insert(name.to_string(), child);
            }
            _ => return Err(Errno::ENOTDIR),
        }
        self.node_mut(dir).mtime_ns = now;
        Ok(())
    }

    fn parent_and_name(path: &str) -> Result<(Vec<&str>, &str), Errno> {
        let comps = Self::split(path)?;
        let (name, parent) = comps.split_last().ok_or(Errno::EINVAL)?;
        Ok((parent.to_vec(), name))
    }

    /// Creates (or truncates) a regular file with the given contents.
    ///
    /// # Errors
    ///
    /// `ENOENT` if the parent directory does not exist; `EISDIR` if the
    /// path names a directory.
    pub fn write_file(
        &mut self,
        path: &str,
        data: Vec<u8>,
    ) -> Result<Ino, Errno> {
        let (parent_comps, name) = Self::parent_and_name(path)?;
        let (parent, _) = self.tree_for_create(&parent_comps)?;
        let existing = match &self.node(parent).kind {
            NodeKind::Dir(entries) => entries.get(name).copied(),
            _ => return Err(Errno::ENOTDIR),
        };
        match existing {
            Some(ino) => {
                let now = self.now_ns;
                let node = self.node_mut(ino);
                match &mut node.kind {
                    NodeKind::File(contents) => {
                        *contents = data;
                        node.mtime_ns = now;
                        Ok(ino)
                    }
                    NodeKind::Dir(_) => Err(Errno::EISDIR),
                    _ => Err(Errno::EINVAL),
                }
            }
            None => {
                let f = self.alloc(NodeKind::File(data), 0o644);
                self.link(parent, name, f)?;
                Ok(f)
            }
        }
    }

    /// Creates a file in the overlay tree, building missing ancestors.
    pub fn write_file_overlay(
        &mut self,
        path: &str,
        data: Vec<u8>,
    ) -> Result<Ino, Errno> {
        let (parent_comps, name) = Self::parent_and_name(path)?;
        let parent_path = format!("/{}", parent_comps.join("/"));
        let parent = self.mkdir_p_overlay(&parent_path)?;
        let f = self.alloc(NodeKind::File(data), 0o644);
        match self.link(parent, name, f) {
            Ok(()) => Ok(f),
            Err(Errno::EEXIST) => {
                // Overwrite.
                let now = self.now_ns;
                let entries = match &self.node(parent).kind {
                    NodeKind::Dir(e) => e.clone(),
                    _ => unreachable!(),
                };
                let ino = entries[name];
                let data = match &mut self.node_mut(f).kind {
                    NodeKind::File(d) => std::mem::take(d),
                    _ => unreachable!(),
                };
                self.nodes.remove(&f.0);
                let node = self.node_mut(ino);
                match &mut node.kind {
                    NodeKind::File(c) => {
                        *c = data;
                        node.mtime_ns = now;
                        Ok(ino)
                    }
                    _ => Err(Errno::EISDIR),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// `ENOENT` if absent, `EISDIR` if the path is a directory.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, Errno> {
        let r = self.resolve(path)?;
        match &self.node(r.ino).kind {
            NodeKind::File(data) => Ok(data.clone()),
            NodeKind::Dir(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// File size without copying the contents.
    ///
    /// # Errors
    ///
    /// `EIO` if the inode was unlinked since it was resolved.
    pub fn file_len(&self, ino: Ino) -> Result<u64, Errno> {
        match &self.try_node(ino)?.kind {
            NodeKind::File(data) => Ok(data.len() as u64),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Reads up to `len` bytes at `offset` from an already-resolved file.
    ///
    /// # Errors
    ///
    /// `EIO` if the inode dangles (unlinked while a descriptor was
    /// still open), `EISDIR`/`EINVAL` for wrong node kinds.
    pub fn read_at(
        &self,
        ino: Ino,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, Errno> {
        match &self.try_node(ino)?.kind {
            NodeKind::File(data) => {
                let start = (offset as usize).min(data.len());
                let end = (start + len).min(data.len());
                Ok(data[start..end].to_vec())
            }
            NodeKind::Dir(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Writes bytes at `offset`, extending the file as needed. Returns
    /// bytes written.
    pub fn write_at(
        &mut self,
        ino: Ino,
        offset: u64,
        buf: &[u8],
    ) -> Result<usize, Errno> {
        let now = self.now_ns;
        let node = self.try_node_mut(ino)?;
        match &mut node.kind {
            NodeKind::File(data) => {
                let off = offset as usize;
                if data.len() < off + buf.len() {
                    data.resize(off + buf.len(), 0);
                }
                data[off..off + buf.len()].copy_from_slice(buf);
                node.mtime_ns = now;
                Ok(buf.len())
            }
            NodeKind::Dir(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Truncates (or extends with zeros) a regular file to `len` bytes.
    ///
    /// # Errors
    ///
    /// `EISDIR` for directories, `EINVAL` for other node kinds.
    pub fn truncate(&mut self, ino: Ino, len: u64) -> Result<(), Errno> {
        let now = self.now_ns;
        let node = self.try_node_mut(ino)?;
        match &mut node.kind {
            NodeKind::File(data) => {
                data.resize(len as usize, 0);
                node.mtime_ns = now;
                Ok(())
            }
            NodeKind::Dir(_) => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Removes a file or empty directory.
    ///
    /// # Errors
    ///
    /// `ENOTEMPTY` for non-empty directories, `ENOENT` if absent.
    pub fn unlink(&mut self, path: &str) -> Result<(), Errno> {
        let (parent_comps, name) = Self::parent_and_name(path)?;
        // Find which tree actually holds the entry.
        let trees: Vec<Ino> = self
            .root_upper
            .into_iter()
            .chain(Some(self.root_lower))
            .collect();
        for root in trees {
            let mut walked = 0;
            let Ok(parent) =
                self.walk_tree(root, &parent_comps, &mut walked, 0)
            else {
                continue;
            };
            let child = match &self.node(parent).kind {
                NodeKind::Dir(entries) => entries.get(name).copied(),
                _ => continue,
            };
            let Some(child) = child else { continue };
            if let NodeKind::Dir(entries) = &self.node(child).kind {
                if !entries.is_empty() {
                    return Err(Errno::ENOTEMPTY);
                }
            }
            let now = self.now_ns;
            if let NodeKind::Dir(entries) = &mut self.node_mut(parent).kind {
                entries.remove(name);
            }
            self.node_mut(parent).mtime_ns = now;
            self.nodes.remove(&child.0);
            return Ok(());
        }
        Err(Errno::ENOENT)
    }

    /// Creates a symlink at `path` pointing to `target`.
    pub fn symlink(&mut self, path: &str, target: &str) -> Result<(), Errno> {
        let (parent_comps, name) = Self::parent_and_name(path)?;
        let (parent, _) = self.tree_for_create(&parent_comps)?;
        let s = self.alloc(NodeKind::Symlink(target.to_string()), 0o777);
        self.link(parent, name, s)
    }

    /// Registers a character-device node.
    pub fn mknod_device(
        &mut self,
        path: &str,
        dev: DeviceId,
    ) -> Result<(), Errno> {
        let (parent_comps, name) = Self::parent_and_name(path)?;
        let (parent, _) = self.tree_for_create(&parent_comps)?;
        let n = self.alloc(NodeKind::Device(dev), 0o600);
        self.link(parent, name, n)
    }

    /// Returns the device id if the inode is a device node.
    pub fn device_of(&self, ino: Ino) -> Option<DeviceId> {
        match &self.node(ino).kind {
            NodeKind::Device(d) => Some(*d),
            _ => None,
        }
    }

    /// `stat` for a resolved inode.
    pub fn stat(&self, ino: Ino) -> Stat {
        let n = self.node(ino);
        let (file_type, size) = match &n.kind {
            NodeKind::Dir(e) => (FileType::Directory, e.len() as u64),
            NodeKind::File(d) => (FileType::Regular, d.len() as u64),
            NodeKind::Symlink(t) => (FileType::Symlink, t.len() as u64),
            NodeKind::Device(_) => (FileType::CharDevice, 0),
        };
        Stat {
            ino: ino.0,
            file_type,
            mode: n.mode,
            size,
            blocks: size.div_ceil(512),
            mtime_sec: (n.mtime_ns / 1_000_000_000) as i64,
            mtime_nsec: (n.mtime_ns % 1_000_000_000) as i64,
            nlink: n.nlink,
        }
    }

    /// Directory entries, merged across both trees for union semantics.
    ///
    /// # Errors
    ///
    /// `ENOTDIR` if the path is not a directory in any tree.
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, Errno> {
        let comps = Self::split(path)?;
        let mut names = BTreeMap::new();
        let mut found = false;
        let mut not_dir = false;
        for root in self.root_upper.into_iter().chain(Some(self.root_lower)) {
            let mut walked = 0;
            if let Ok(ino) = self.walk_tree(root, &comps, &mut walked, 0) {
                match &self.node(ino).kind {
                    NodeKind::Dir(entries) => {
                        found = true;
                        for k in entries.keys() {
                            names.entry(k.clone()).or_insert(());
                        }
                    }
                    _ => not_dir = true,
                }
            }
        }
        if found {
            Ok(names.into_keys().collect())
        } else if not_dir {
            Err(Errno::ENOTDIR)
        } else {
            Err(Errno::ENOENT)
        }
    }

    /// Whether a path exists (in either tree).
    pub fn exists(&self, path: &str) -> bool {
        self.resolve(path).is_ok()
    }

    /// Total node count, exposed for leak-style assertions in tests.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mkdir_p_and_resolution() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/a/b/c").unwrap();
        let r = fs.resolve("/a/b/c").unwrap();
        assert!(!r.in_overlay);
        assert_eq!(r.components_walked, 3);
        assert!(fs.exists("/a/b"));
        assert!(!fs.exists("/a/x"));
    }

    #[test]
    fn relative_paths_rejected() {
        let fs = Vfs::new();
        assert_eq!(fs.resolve("a/b"), Err(Errno::EINVAL));
    }

    #[test]
    fn file_roundtrip_and_truncate() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/data").unwrap();
        fs.write_file("/data/f", vec![1, 2, 3]).unwrap();
        assert_eq!(fs.read_file("/data/f").unwrap(), vec![1, 2, 3]);
        fs.write_file("/data/f", vec![9]).unwrap();
        assert_eq!(fs.read_file("/data/f").unwrap(), vec![9]);
    }

    #[test]
    fn write_file_requires_parent() {
        let mut fs = Vfs::new();
        assert_eq!(fs.write_file("/nope/f", vec![]), Err(Errno::ENOENT));
    }

    #[test]
    fn read_write_at_offsets() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/d").unwrap();
        let ino = fs.write_file("/d/f", vec![0; 4]).unwrap();
        fs.write_at(ino, 2, &[7, 8, 9]).unwrap();
        assert_eq!(fs.read_file("/d/f").unwrap(), vec![0, 0, 7, 8, 9]);
        assert_eq!(fs.read_at(ino, 3, 10).unwrap(), vec![8, 9]);
        assert_eq!(fs.read_at(ino, 100, 10).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn overlay_shadows_lower() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/etc").unwrap();
        fs.write_file("/etc/version", b"android".to_vec()).unwrap();
        fs.write_file_overlay("/etc/version", b"ios".to_vec())
            .unwrap();
        let r = fs.resolve("/etc/version").unwrap();
        assert!(r.in_overlay);
        assert_eq!(fs.read_file("/etc/version").unwrap(), b"ios");
    }

    #[test]
    fn overlay_falls_back_to_lower() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/system/bin").unwrap();
        fs.write_file("/system/bin/sh", b"elf".to_vec()).unwrap();
        fs.mkdir_p_overlay("/Documents").unwrap();
        assert!(fs.exists("/system/bin/sh"));
        assert!(fs.exists("/Documents"));
        let r = fs.resolve("/system/bin/sh").unwrap();
        assert!(!r.in_overlay);
    }

    #[test]
    fn readdir_merges_trees() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/usr/lib").unwrap();
        fs.write_file("/usr/lib/libc.so", vec![]).unwrap();
        fs.write_file_overlay("/usr/lib/libSystem.dylib", vec![])
            .unwrap();
        let names = fs.readdir("/usr/lib").unwrap();
        assert_eq!(names, vec!["libSystem.dylib", "libc.so"]);
    }

    #[test]
    fn unlink_files_and_empty_dirs() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/tmp/x").unwrap();
        fs.write_file("/tmp/f", vec![1]).unwrap();
        fs.unlink("/tmp/f").unwrap();
        assert!(!fs.exists("/tmp/f"));
        assert_eq!(fs.unlink("/tmp"), Err(Errno::ENOTEMPTY));
        fs.unlink("/tmp/x").unwrap();
        fs.unlink("/tmp").unwrap();
    }

    #[test]
    fn symlink_resolution_and_loops() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/a").unwrap();
        fs.write_file("/a/real", b"data".to_vec()).unwrap();
        fs.symlink("/a/link", "/a/real").unwrap();
        assert_eq!(fs.read_file("/a/link").unwrap(), b"data");
        fs.symlink("/a/loop1", "/a/loop2").unwrap();
        fs.symlink("/a/loop2", "/a/loop1").unwrap();
        assert_eq!(fs.resolve("/a/loop1"), Err(Errno::ELOOP));
    }

    #[test]
    fn dotdot_navigation() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/a/b").unwrap();
        fs.write_file("/a/f", b"x".to_vec()).unwrap();
        assert_eq!(fs.read_file("/a/b/../f").unwrap(), b"x");
    }

    #[test]
    fn stat_reports_type_and_size() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/d").unwrap();
        let ino = fs.write_file("/d/f", vec![0; 1000]).unwrap();
        let st = fs.stat(ino);
        assert_eq!(st.file_type, FileType::Regular);
        assert_eq!(st.size, 1000);
        assert_eq!(st.blocks, 2);
    }

    #[test]
    fn device_nodes() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/dev").unwrap();
        fs.mknod_device("/dev/fb0", DeviceId(3)).unwrap();
        let r = fs.resolve("/dev/fb0").unwrap();
        assert_eq!(fs.device_of(r.ino), Some(DeviceId(3)));
        assert_eq!(fs.stat(r.ino).file_type, FileType::CharDevice);
    }

    #[test]
    fn dangling_inode_is_eio_not_panic() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/d").unwrap();
        let ino = fs.write_file("/d/f", vec![1, 2, 3]).unwrap();
        fs.unlink("/d/f").unwrap();
        // A descriptor opened before the unlink now holds a stale ino.
        assert_eq!(fs.read_at(ino, 0, 3), Err(Errno::EIO));
        assert_eq!(fs.write_at(ino, 0, &[9]), Err(Errno::EIO));
        assert_eq!(fs.truncate(ino, 0), Err(Errno::EIO));
        assert_eq!(fs.file_len(ino), Err(Errno::EIO));
    }

    #[test]
    fn components_walked_counts_fallback() {
        let mut fs = Vfs::new();
        fs.mkdir_p("/x/y").unwrap();
        fs.enable_overlay();
        // Miss in upper then hit in lower: both walks counted.
        let r = fs.resolve("/x/y").unwrap();
        assert!(r.components_walked >= 2);
    }
}
