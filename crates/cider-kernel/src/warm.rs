//! Zygote-style warm-start state: the prelinked dyld shared cache.
//!
//! The paper's fig5 fork/exec rows are dominated by two costs a
//! production fleet amortizes: the 115-dylib closure walk dyld performs
//! on every `exec(ios)`, and the eager duplication of ~23k page-table
//! entries on every `fork`. This module holds the device-wide state
//! that removes the first cost: after one cold closure walk, the loader
//! bakes the fully resolved closure — image list in bind order, per
//! image mapped size, total bytes, a digest over the whole thing — into
//! a [`SharedCacheImage`] owned by the kernel. Every later `exec(ios)`
//! with matching roots maps the baked closure in O(images) without
//! touching the VFS at all.
//!
//! Warm start is **opt-in and off by default**: the pinned fig5 ratios,
//! golden tables and conformance corpus all describe the cold machine,
//! and stay byte-identical unless a test bed explicitly enables warmth.
//!
//! Invalidation rules (DESIGN.md §13):
//! - cache missing → cold walk, then bake;
//! - root dependency set differs from the baked one → cold walk for
//!   this exec, first bake kept;
//! - `FaultSite::SharedCacheCorrupt` fires or the digest check fails →
//!   cache dropped, cold walk re-bakes.

use std::fmt::Write as _;

/// One image of the baked closure, in bind order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BakedImage {
    /// VFS path the cold walk resolved the install name to.
    pub path: String,
    /// Bytes dyld mapped for it (page-rounded by the address space).
    pub vmsize: u64,
}

/// The prelinked shared cache: a device-wide, fully resolved dylib
/// closure baked by the first cold launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedCacheImage {
    /// Root dependency set the closure was resolved from (sorted).
    pub roots: Vec<String>,
    /// The whole closure in the cold walk's bind order — replaying it
    /// reproduces the cold walk's mappings, addresses and initializer
    /// schedule exactly.
    pub images: Vec<BakedImage>,
    /// Total bytes across the closure.
    pub total_bytes: u64,
    /// FNV-1a digest over roots and images; checked on every warm map.
    pub digest: u64,
}

/// FNV-1a over a byte string (the same hash family the kernel uses for
/// console and trace fingerprints).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SharedCacheImage {
    /// Bakes a cache from the closure a cold walk just resolved.
    pub fn bake(
        mut roots: Vec<String>,
        images: Vec<BakedImage>,
        total_bytes: u64,
    ) -> SharedCacheImage {
        roots.sort();
        let digest = Self::digest_of(&roots, &images, total_bytes);
        SharedCacheImage {
            roots,
            images,
            total_bytes,
            digest,
        }
    }

    fn digest_of(
        roots: &[String],
        images: &[BakedImage],
        total_bytes: u64,
    ) -> u64 {
        let mut s = String::new();
        for r in roots {
            let _ = write!(s, "{r};");
        }
        for i in images {
            let _ = write!(s, "{}={};", i.path, i.vmsize);
        }
        let _ = write!(s, "#{total_bytes}");
        fnv1a(s.as_bytes())
    }

    /// True when the stored digest still matches the contents.
    pub fn verify(&self) -> bool {
        self.digest
            == Self::digest_of(&self.roots, &self.images, self.total_bytes)
    }

    /// True when this cache was baked for exactly `roots`.
    pub fn matches_roots(&self, roots: &[&str]) -> bool {
        let mut sorted: Vec<&str> = roots.to_vec();
        sorted.sort_unstable();
        sorted.len() == self.roots.len()
            && sorted.iter().zip(&self.roots).all(|(a, b)| *a == b)
    }
}

/// Counters for the warm-start machinery. All monotonic, all part of
/// the `kernel/warm` checkpoint section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Cold closure walks that ended in a bake.
    pub cold_bakes: u64,
    /// `exec(ios)` launches served from the cache.
    pub warm_execs: u64,
    /// Caches dropped (corruption fault or digest mismatch).
    pub invalidations: u64,
    /// Forks taken copy-on-write instead of eagerly.
    pub cow_forks: u64,
    /// First-write faults that materialized a page.
    pub cow_faults: u64,
    /// PTEs whose copy was deferred at fork time.
    pub cow_deferred_ptes: u64,
}

/// Device-wide warm-start state owned by the kernel.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    enabled: bool,
    cache: Option<SharedCacheImage>,
    /// Warm-start counters.
    pub stats: WarmStats,
}

impl WarmStart {
    /// Disabled, empty — the cold machine the goldens describe.
    pub fn new() -> WarmStart {
        WarmStart::default()
    }

    /// Whether warm start is on for this device.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns warm start on or off. Turning it off keeps the baked
    /// cache (a later re-enable reuses it); the cold paths simply stop
    /// consulting it.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// The baked cache, if any.
    pub fn cache(&self) -> Option<&SharedCacheImage> {
        self.cache.as_ref()
    }

    /// Installs a freshly baked cache.
    pub fn install(&mut self, image: SharedCacheImage) {
        self.stats.cold_bakes += 1;
        self.cache = Some(image);
    }

    /// Drops the cache (corruption fault or digest mismatch).
    pub fn invalidate(&mut self) {
        if self.cache.take().is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// One-line deterministic record for the `kernel/warm` checkpoint
    /// section.
    pub fn ckpt_record(&self) -> String {
        let s = &self.stats;
        let cache = match &self.cache {
            Some(c) => format!(
                "{}i/{}B/{:016x}",
                c.images.len(),
                c.total_bytes,
                c.digest
            ),
            None => "none".to_string(),
        };
        format!(
            "enabled={} cache={cache} bakes={} warm={} inval={} \
             cow_forks={} cow_faults={} cow_deferred={}",
            self.enabled,
            s.cold_bakes,
            s.warm_execs,
            s.invalidations,
            s.cow_forks,
            s.cow_faults,
            s.cow_deferred_ptes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> SharedCacheImage {
        SharedCacheImage::bake(
            vec!["libb".into(), "liba".into()],
            vec![
                BakedImage {
                    path: "/usr/lib/liba".into(),
                    vmsize: 4096,
                },
                BakedImage {
                    path: "/usr/lib/libb".into(),
                    vmsize: 8192,
                },
            ],
            12288,
        )
    }

    #[test]
    fn bake_sorts_roots_and_digest_verifies() {
        let c = cache();
        assert_eq!(c.roots, vec!["liba".to_string(), "libb".to_string()]);
        assert!(c.verify());
        assert!(c.matches_roots(&["libb", "liba"]));
        assert!(!c.matches_roots(&["liba"]));
        assert!(!c.matches_roots(&["liba", "libc"]));
    }

    #[test]
    fn tampering_breaks_the_digest() {
        let mut c = cache();
        c.images[0].vmsize += 1;
        assert!(!c.verify());
        let mut c = cache();
        c.total_bytes ^= 1;
        assert!(!c.verify());
    }

    #[test]
    fn warm_start_defaults_off_and_counts_lifecycle() {
        let mut w = WarmStart::new();
        assert!(!w.is_enabled());
        assert!(w.cache().is_none());
        assert!(w.ckpt_record().contains("enabled=false cache=none"));
        w.set_enabled(true);
        w.install(cache());
        assert_eq!(w.stats.cold_bakes, 1);
        w.invalidate();
        w.invalidate(); // second is a no-op
        assert_eq!(w.stats.invalidations, 1);
        assert!(w.cache().is_none());
    }

    #[test]
    fn ckpt_record_is_deterministic() {
        let mut w = WarmStart::new();
        w.set_enabled(true);
        w.install(cache());
        let a = w.ckpt_record();
        let b = w.clone().ckpt_record();
        assert_eq!(a, b);
        assert!(a.contains("cache=2i/12288B/"));
    }
}
