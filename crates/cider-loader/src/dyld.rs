//! The dyld simulation: dependency-closure loading for Mach-O images.
//!
//! dyld is "a user space binary, which is invoked from the Mach-O
//! loader" (paper §2). Two paths exist, matching the paper's analysis:
//!
//! * **non-prelinked** (the Cider prototype): dyld "must walk the
//!   filesystem to load each library on every exec" — a VFS resolution,
//!   an open, a header read, a parse, and a segment mapping per image;
//! * **shared cache** (real iOS devices): one prelinked mapping covers
//!   every system library, and the per-image filesystem walk disappears.
//!
//! Either way dyld registers one atfork triple and one atexit handler per
//! image — the user-space work behind the 14× `fork+exit` overhead.

use std::collections::BTreeSet;
use std::collections::VecDeque;

use cider_abi::errno::Errno;
use cider_abi::ids::Tid;
use cider_fault::FaultSite;
use cider_kernel::kernel::Kernel;
use cider_kernel::mm::{MappingKind, Prot};
use cider_kernel::warm::{BakedImage, SharedCacheImage};

use crate::framework_set::TOTAL_MAPPED_BYTES;
use crate::macho::{FileType, MachO};

/// What dyld did, for assertions and experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DyldStats {
    /// Images loaded (including shared-cache residents).
    pub images: u32,
    /// Bytes mapped.
    pub mapped_bytes: u64,
    /// Whether the shared cache satisfied the system libraries.
    pub used_shared_cache: bool,
    /// Filesystem opens dyld performed.
    pub fs_opens: u32,
}

/// Runs dyld for a freshly exec'd Mach-O with the given direct
/// dependencies: loads the transitive closure, maps every image, and
/// registers per-image user callbacks.
///
/// # Errors
///
/// `ENOENT` if a dependency is missing from the filesystem, `ENOEXEC` if
/// a dependency is not a valid Mach-O dylib.
pub fn run_dyld(
    k: &mut Kernel,
    tid: Tid,
    root_deps: &[String],
) -> Result<DyldStats, Errno> {
    let mut stats = DyldStats::default();
    let pid = k.thread(tid)?.pid;
    let shared_cache = k.profile.shared_dyld_cache;

    // dyld itself is mapped first (by the kernel loader in reality).
    k.charge_cpu(k.profile.dylib_map_ns);

    let mut images: Vec<String> = Vec::new();

    if shared_cache {
        // One giant prelinked mapping; per-image work is just binding.
        k.process_mut(pid)?.mm.map(
            TOTAL_MAPPED_BYTES,
            Prot::RX,
            MappingKind::SharedCache,
            "dyld_shared_cache_armv7",
        )?;
        k.charge_cpu(k.profile.dylib_map_ns);
        stats.used_shared_cache = true;
        stats.mapped_bytes += TOTAL_MAPPED_BYTES;
        // The closure is still walked to bind symbols, entirely in
        // memory. Prelinking coalesces the cache residents'
        // initialiser/terminator handling ("iOS treats the shared cache
        // in a special way and optimizes how it is handled", §6.2):
        // only the directly linked images register their own atfork /
        // atexit callbacks.
        let mut seen = BTreeSet::new();
        let mut work: VecDeque<String> = root_deps.to_vec().into();
        while let Some(path) = work.pop_front() {
            if !seen.insert(path.clone()) {
                continue;
            }
            let bytes = k.vfs.read_file(&path)?;
            let m = MachO::parse(&bytes)?;
            k.charge_cpu(600); // in-cache bind, no I/O
            if root_deps.contains(&path) {
                images.push(path);
            }
            for d in m.dylib_deps() {
                work.push_back(d.to_string());
            }
            stats.images += 1;
        }
    } else if let Some(cache) = warm_cache_hit(k, root_deps) {
        // Zygote-style warm start: the device holds a prelinked cache
        // baked by an earlier cold walk for exactly these roots.
        // Replay the baked closure — same images, same bind order,
        // same mapped sizes, so the resulting address space and
        // callback registrations are indistinguishable from a cold
        // walk — but with zero filesystem traffic and in-cache bind
        // cost per image instead of resolve+open+read+map.
        // Exactly as on the iPad's prelinked cache, initialiser and
        // terminator handling of cache residents is coalesced: only
        // the directly linked images register their own atfork/atexit
        // callbacks.
        k.charge_cpu(k.profile.dylib_map_ns); // map the prelinked region
        for img in &cache.images {
            k.process_mut(pid)?.mm.map(
                img.vmsize,
                Prot::RX,
                MappingKind::Dylib,
                img.path.clone(),
            )?;
            k.charge_cpu(600); // in-cache bind, no I/O
            if root_deps.contains(&img.path) {
                images.push(img.path.clone());
            }
            stats.images += 1;
        }
        stats.mapped_bytes = cache.total_bytes;
        stats.used_shared_cache = true;
        k.warm.stats.warm_execs += 1;
        if k.trace.is_enabled() {
            k.trace.incr("dyld/warm_execs");
        }
    } else {
        // The Cider prototype path: walk the filesystem per image.
        let mut seen = BTreeSet::new();
        let mut work: VecDeque<String> = root_deps.to_vec().into();
        let mut closure: Vec<BakedImage> = Vec::new();
        while let Some(path) = work.pop_front() {
            if !seen.insert(path.clone()) {
                continue;
            }
            if k.fault_at(FaultSite::DyldResolve) {
                // A dylib of the closure is missing from the overlay.
                return Err(Errno::ENOENT);
            }
            let resolved = k.vfs.resolve(&path)?;
            k.charge_cpu(
                k.profile.path_component_ns
                    * resolved.components_walked as u64,
            );
            // open + header read + close.
            k.charge_cpu(k.profile.vfs_op_ns * 2);
            stats.fs_opens += 1;
            let bytes = k.vfs.read_file(&path)?;
            k.charge_cpu(
                (bytes.len().min(4096) as f64 * k.profile.copy_byte_ns) as u64,
            );
            let m = MachO::parse(&bytes)?;
            if m.filetype != FileType::Dylib {
                return Err(Errno::ENOEXEC);
            }
            let vmsize = m.total_vmsize();
            k.process_mut(pid)?.mm.map(
                vmsize,
                Prot::RX,
                MappingKind::Dylib,
                path.clone(),
            )?;
            k.charge_cpu(k.profile.dylib_map_ns);
            stats.mapped_bytes += vmsize;
            closure.push(BakedImage {
                path: path.clone(),
                vmsize,
            });
            images.push(path);
            for d in m.dylib_deps() {
                work.push_back(d.to_string());
            }
            stats.images += 1;
        }
        // First successful cold walk on a warm device bakes the cache.
        // A later roots-mismatch walk keeps the first bake: per-app
        // closures share one device cache keyed on the roots it was
        // baked for.
        if k.warm.is_enabled() && k.warm.cache().is_none() {
            k.warm.install(SharedCacheImage::bake(
                root_deps.to_vec(),
                closure,
                stats.mapped_bytes,
            ));
            if k.trace.is_enabled() {
                k.trace.incr("dyld/cache_bakes");
            }
        }
    }

    // Every image registers atfork + atexit handlers with libSystem.
    k.register_image_callbacks(pid, &images)?;
    Ok(stats)
}

/// The warm-path gate: returns the baked cache to replay when warm
/// start is on, a cache exists, it was baked for exactly these roots,
/// the [`FaultSite::SharedCacheCorrupt`] fault does not fire, and the
/// digest still verifies. Corruption (fault or digest mismatch)
/// invalidates the cache, so the caller falls back to the cold walk —
/// which launches anyway and re-bakes.
fn warm_cache_hit(
    k: &mut Kernel,
    root_deps: &[String],
) -> Option<SharedCacheImage> {
    if !k.warm.is_enabled() {
        return None;
    }
    let roots: Vec<&str> = root_deps.iter().map(String::as_str).collect();
    let cache = k
        .warm
        .cache()
        .filter(|c| c.matches_roots(&roots))
        .cloned()?;
    if k.fault_at(FaultSite::SharedCacheCorrupt) || !cache.verify() {
        k.warm.invalidate();
        if k.trace.is_enabled() {
            k.trace.incr("dyld/cache_invalidations");
        }
        return None;
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework_set::{FrameworkSet, FRAMEWORK_COUNT};
    use cider_kernel::profile::DeviceProfile;

    fn kernel_with_frameworks(profile: DeviceProfile) -> (Kernel, Tid) {
        let mut k = Kernel::boot(profile);
        let (_, tid) = k.spawn_process();
        FrameworkSet::standard().install(&mut k.vfs);
        (k, tid)
    }

    #[test]
    fn loads_all_115_images_walking_the_fs() {
        let (mut k, tid) = kernel_with_frameworks(DeviceProfile::nexus7());
        let stats =
            run_dyld(&mut k, tid, &FrameworkSet::app_default_deps()).unwrap();
        assert_eq!(stats.images, FRAMEWORK_COUNT as u32);
        assert_eq!(stats.fs_opens, FRAMEWORK_COUNT as u32);
        assert!(!stats.used_shared_cache);
        // ~90 MB mapped.
        assert!(stats.mapped_bytes > 88 * 1024 * 1024);
        // 115 images × (atfork triple + atexit).
        let pid = k.thread(tid).unwrap().pid;
        let p = k.process(pid).unwrap();
        assert_eq!(p.callbacks.atfork_total(), FRAMEWORK_COUNT * 3);
        assert_eq!(p.callbacks.atexit.len(), FRAMEWORK_COUNT);
    }

    #[test]
    fn shared_cache_skips_fs_walk_and_is_faster() {
        let (mut k_slow, tid_slow) =
            kernel_with_frameworks(DeviceProfile::nexus7());
        let t0 = k_slow.clock.now_ns();
        run_dyld(&mut k_slow, tid_slow, &FrameworkSet::app_default_deps())
            .unwrap();
        let walk_cost = k_slow.clock.now_ns() - t0;

        let (mut k_fast, tid_fast) =
            kernel_with_frameworks(DeviceProfile::ipad_mini());
        let t0 = k_fast.clock.now_ns();
        let stats =
            run_dyld(&mut k_fast, tid_fast, &FrameworkSet::app_default_deps())
                .unwrap();
        let cache_cost = k_fast.clock.now_ns() - t0;

        assert!(stats.used_shared_cache);
        assert_eq!(stats.fs_opens, 0);
        assert!(
            cache_cost * 3 < walk_cost,
            "cache {cache_cost} vs walk {walk_cost}"
        );
    }

    #[test]
    fn shared_cache_pages_excluded_from_fork_cost() {
        let (mut k, tid) = kernel_with_frameworks(DeviceProfile::ipad_mini());
        run_dyld(&mut k, tid, &FrameworkSet::app_default_deps()).unwrap();
        let pid = k.thread(tid).unwrap().pid;
        let ptes = k.process(pid).unwrap().mm.total_ptes();
        // The 90 MB cache does not contribute.
        assert!(ptes < 1024, "ptes {ptes}");
    }

    #[test]
    fn missing_dependency_is_enoent() {
        let mut k = Kernel::boot(DeviceProfile::nexus7());
        let (_, tid) = k.spawn_process();
        let err = run_dyld(&mut k, tid, &["/usr/lib/libMissing.dylib".into()])
            .unwrap_err();
        assert_eq!(err, Errno::ENOENT);
    }

    #[test]
    fn duplicate_deps_load_once() {
        let (mut k, tid) = kernel_with_frameworks(DeviceProfile::nexus7());
        let dep = "/usr/lib/libSystem.B.dylib".to_string();
        let stats =
            run_dyld(&mut k, tid, &[dep.clone(), dep.clone(), dep]).unwrap();
        assert_eq!(stats.images, 1);
    }

    /// Address-space snapshot: (start, len, name) of every mapping.
    fn mm_shape(k: &Kernel, tid: Tid) -> Vec<(u64, u64, String)> {
        let pid = k.thread(tid).unwrap().pid;
        k.process(pid)
            .unwrap()
            .mm
            .iter()
            .map(|m| (m.start, m.len, m.name.clone()))
            .collect()
    }

    #[test]
    fn first_warm_launch_bakes_then_replays_without_fs_traffic() {
        let (mut k, tid) = kernel_with_frameworks(DeviceProfile::nexus7());
        k.warm.set_enabled(true);
        let deps = FrameworkSet::app_default_deps();

        // Cold walk with an empty cache: full fs traffic, then a bake.
        let t0 = k.clock.now_ns();
        let cold = run_dyld(&mut k, tid, &deps).unwrap();
        let cold_cost = k.clock.now_ns() - t0;
        assert_eq!(cold.fs_opens, FRAMEWORK_COUNT as u32);
        assert!(!cold.used_shared_cache);
        assert_eq!(k.warm.stats.cold_bakes, 1);
        let cache = k.warm.cache().unwrap();
        assert_eq!(cache.images.len(), FRAMEWORK_COUNT);
        assert!(cache.verify());
        let cold_shape = mm_shape(&k, tid);

        // A second exec replays the bake: zero fs opens, same closure,
        // same address-space shape, much cheaper.
        let (mut k2, tid2) = kernel_with_frameworks(DeviceProfile::nexus7());
        k2.warm = k.warm.clone();
        let t0 = k2.clock.now_ns();
        let warm = run_dyld(&mut k2, tid2, &deps).unwrap();
        let warm_cost = k2.clock.now_ns() - t0;
        assert!(warm.used_shared_cache);
        assert_eq!(warm.fs_opens, 0);
        assert_eq!(warm.images, cold.images);
        assert_eq!(warm.mapped_bytes, cold.mapped_bytes);
        assert_eq!(mm_shape(&k2, tid2), cold_shape);
        assert_eq!(k2.warm.stats.warm_execs, 1);
        assert!(
            warm_cost * 3 < cold_cost,
            "warm {warm_cost} vs cold {cold_cost}"
        );

        // Prelinking coalesces cache residents' handlers: only the
        // direct roots register callbacks, exactly as on the iPad's
        // shared cache.
        let pid = k2.thread(tid2).unwrap().pid;
        let p = k2.process(pid).unwrap();
        assert_eq!(p.callbacks.atfork_total(), deps.len() * 3);
        assert_eq!(p.callbacks.atexit.len(), deps.len());
    }

    #[test]
    fn corrupt_cache_invalidates_and_cold_walk_rebakes() {
        use cider_fault::FaultPlan;

        let (mut k, tid) = kernel_with_frameworks(DeviceProfile::nexus7());
        k.warm.set_enabled(true);
        let deps = FrameworkSet::app_default_deps();
        run_dyld(&mut k, tid, &deps).unwrap(); // bake

        // Arm SharedCacheCorrupt to fire on the next (warm) exec.
        k.faults = cider_fault::FaultLayer::with_plan(
            FaultPlan::new(1).with(FaultSite::SharedCacheCorrupt, 1000),
        );
        let (_, tid2) = k.spawn_process();
        let stats = run_dyld(&mut k, tid2, &deps).unwrap();
        // It still launched — via the cold walk — and re-baked.
        assert!(!stats.used_shared_cache);
        assert_eq!(stats.fs_opens, FRAMEWORK_COUNT as u32);
        assert_eq!(k.warm.stats.invalidations, 1);
        assert_eq!(k.warm.stats.cold_bakes, 2);
        assert!(k.warm.cache().is_some());
    }

    #[test]
    fn digest_mismatch_behaves_like_the_corruption_fault() {
        let (mut k, tid) = kernel_with_frameworks(DeviceProfile::nexus7());
        k.warm.set_enabled(true);
        let deps = FrameworkSet::app_default_deps();
        run_dyld(&mut k, tid, &deps).unwrap();

        // Flip a byte of the baked closure behind the digest's back.
        let mut cache = k.warm.cache().unwrap().clone();
        cache.images[0].vmsize ^= 1;
        k.warm.install(cache);
        let bakes_before = k.warm.stats.cold_bakes;

        let (_, tid2) = k.spawn_process();
        let stats = run_dyld(&mut k, tid2, &deps).unwrap();
        assert!(!stats.used_shared_cache);
        assert_eq!(k.warm.stats.invalidations, 1);
        assert_eq!(k.warm.stats.cold_bakes, bakes_before + 1);
    }

    #[test]
    fn roots_mismatch_walks_cold_but_keeps_the_first_bake() {
        let (mut k, tid) = kernel_with_frameworks(DeviceProfile::nexus7());
        k.warm.set_enabled(true);
        run_dyld(&mut k, tid, &FrameworkSet::app_default_deps()).unwrap();
        let digest = k.warm.cache().unwrap().digest;

        let (_, tid2) = k.spawn_process();
        let stats = run_dyld(
            &mut k,
            tid2,
            &["/usr/lib/libSystem.B.dylib".to_string()],
        )
        .unwrap();
        assert!(!stats.used_shared_cache);
        assert_eq!(k.warm.stats.cold_bakes, 1, "first bake kept");
        assert_eq!(k.warm.cache().unwrap().digest, digest);
    }

    #[test]
    fn disabled_warm_start_never_consults_the_cache() {
        let (mut k, tid) = kernel_with_frameworks(DeviceProfile::nexus7());
        let deps = FrameworkSet::app_default_deps();
        run_dyld(&mut k, tid, &deps).unwrap();
        assert!(k.warm.cache().is_none());
        assert_eq!(k.warm.stats.cold_bakes, 0);
    }
}
