//! The simulated ELF container format (domestic binaries).

use cider_abi::errno::Errno;

use crate::macho::Reader;

/// ELF magic bytes.
pub const ELF_MAGIC: [u8; 4] = [0x7f, b'E', b'L', b'F'];
/// `EM_ARM`.
pub const EM_ARM: u16 = 40;

/// ELF object kinds we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElfType {
    /// `ET_EXEC` / `ET_DYN` main binary.
    Executable,
    /// `ET_DYN` shared object used as a library.
    SharedObject,
}

impl ElfType {
    fn as_raw(self) -> u16 {
        match self {
            ElfType::Executable => 2,
            ElfType::SharedObject => 3,
        }
    }

    fn from_raw(raw: u16) -> Option<ElfType> {
        match raw {
            2 => Some(ElfType::Executable),
            3 => Some(ElfType::SharedObject),
            _ => None,
        }
    }
}

/// A loadable program header (`PT_LOAD`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramHeader {
    /// Mapped size in bytes.
    pub memsz: u64,
    /// Writable?
    pub writable: bool,
    /// Executable?
    pub executable: bool,
}

/// A parsed ELF image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Elf {
    /// Machine type (must be ARM to load).
    pub machine: u16,
    /// Object kind.
    pub elf_type: ElfType,
    /// Loadable segments.
    pub segments: Vec<ProgramHeader>,
    /// `DT_NEEDED` dependencies.
    pub needed: Vec<String>,
    /// Entry behaviour key for the program registry.
    pub entry_symbol: Option<String>,
}

impl Elf {
    /// Total mapped size.
    pub fn total_memsz(&self) -> u64 {
        self.segments.iter().map(|s| s.memsz).sum()
    }

    /// Serialises to the simulator's on-disk representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&ELF_MAGIC);
        out.extend_from_slice(&self.machine.to_le_bytes());
        out.extend_from_slice(&self.elf_type.as_raw().to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for s in &self.segments {
            out.extend_from_slice(&s.memsz.to_le_bytes());
            out.push(u8::from(s.writable));
            out.push(u8::from(s.executable));
        }
        out.extend_from_slice(&(self.needed.len() as u32).to_le_bytes());
        for n in &self.needed {
            out.extend_from_slice(&(n.len() as u32).to_le_bytes());
            out.extend_from_slice(n.as_bytes());
        }
        match &self.entry_symbol {
            Some(e) => {
                out.push(1);
                out.extend_from_slice(&(e.len() as u32).to_le_bytes());
                out.extend_from_slice(e.as_bytes());
            }
            None => out.push(0),
        }
        out
    }

    /// Whether a byte slice starts with the ELF magic.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= 4 && bytes[..4] == ELF_MAGIC
    }

    /// Parses the on-disk representation.
    ///
    /// # Errors
    ///
    /// `ENOEXEC` for malformed input.
    pub fn parse(bytes: &[u8]) -> Result<Elf, Errno> {
        if !Self::sniff(bytes) {
            return Err(Errno::ENOEXEC);
        }
        let mut r = Reader::new(&bytes[4..]);
        let machine = r.u32_as_u16()?;
        let elf_type =
            ElfType::from_raw(r.u32_as_u16()?).ok_or(Errno::ENOEXEC)?;
        let nseg = r.u32()?;
        if nseg > 64 {
            return Err(Errno::ENOEXEC);
        }
        let mut segments = Vec::with_capacity(nseg as usize);
        for _ in 0..nseg {
            segments.push(ProgramHeader {
                memsz: r.u64()?,
                writable: r.u8()? != 0,
                executable: r.u8()? != 0,
            });
        }
        let nneeded = r.u32()?;
        if nneeded > 1024 {
            return Err(Errno::ENOEXEC);
        }
        let mut needed = Vec::with_capacity(nneeded as usize);
        for _ in 0..nneeded {
            needed.push(r.string()?);
        }
        let entry_symbol = if r.u8()? != 0 {
            Some(r.string()?)
        } else {
            None
        };
        Ok(Elf {
            machine,
            elf_type,
            segments,
            needed,
            entry_symbol,
        })
    }
}

impl Reader<'_> {
    fn u32_as_u16(&mut self) -> Result<u16, Errno> {
        let a = self.u8()? as u16;
        let b = self.u8()? as u16;
        Ok(a | (b << 8))
    }
}

/// Builder for domestic binaries and shared objects.
#[derive(Debug, Clone)]
pub struct ElfBuilder {
    elf: Elf,
}

impl ElfBuilder {
    /// Starts an executable with conventional text + data segments.
    pub fn executable(entry_symbol: &str) -> ElfBuilder {
        ElfBuilder {
            elf: Elf {
                machine: EM_ARM,
                elf_type: ElfType::Executable,
                segments: vec![
                    ProgramHeader {
                        memsz: 128 * 1024,
                        writable: false,
                        executable: true,
                    },
                    ProgramHeader {
                        memsz: 32 * 1024,
                        writable: true,
                        executable: false,
                    },
                ],
                needed: Vec::new(),
                entry_symbol: Some(entry_symbol.into()),
            },
        }
    }

    /// Starts a shared object of the given size.
    pub fn shared_object(memsz: u64) -> ElfBuilder {
        ElfBuilder {
            elf: Elf {
                machine: EM_ARM,
                elf_type: ElfType::SharedObject,
                segments: vec![ProgramHeader {
                    memsz,
                    writable: false,
                    executable: true,
                }],
                needed: Vec::new(),
                entry_symbol: None,
            },
        }
    }

    /// Adds a `DT_NEEDED` dependency.
    pub fn needs(mut self, soname: &str) -> ElfBuilder {
        self.elf.needed.push(soname.into());
        self
    }

    /// Finishes the image.
    pub fn build(self) -> Elf {
        self.elf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let e = ElfBuilder::executable("hello_world")
            .needs("libc.so")
            .needs("libm.so")
            .build();
        let parsed = Elf::parse(&e.to_bytes()).unwrap();
        assert_eq!(parsed, e);
        assert_eq!(parsed.needed, vec!["libc.so", "libm.so"]);
        assert_eq!(parsed.entry_symbol.as_deref(), Some("hello_world"));
    }

    #[test]
    fn sniff_and_reject() {
        let e = ElfBuilder::shared_object(4096).build();
        assert!(Elf::sniff(&e.to_bytes()));
        assert!(!Elf::sniff(b"\xFE\xED\xFA\xCE"));
        assert_eq!(Elf::parse(b"\x7fELF"), Err(Errno::ENOEXEC));
    }

    #[test]
    fn shared_object_has_no_entry() {
        let e = ElfBuilder::shared_object(8192).build();
        assert_eq!(e.entry_symbol, None);
        assert_eq!(e.total_memsz(), 8192);
        assert_eq!(e.elf_type, ElfType::SharedObject);
    }
}
