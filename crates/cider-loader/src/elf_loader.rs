//! The domestic ELF binfmt loader and its `ld.so` simulation.

use std::collections::{BTreeSet, VecDeque};

use cider_abi::errno::Errno;
use cider_abi::ids::Tid;
use cider_kernel::binfmt::{BinaryLoader, ExecImage, LoadedProgram};
use cider_kernel::kernel::Kernel;
use cider_kernel::mm::{MappingKind, Prot};
use cider_kernel::vfs::Vfs;

use crate::elf::{Elf, ElfBuilder, ElfType, EM_ARM};

/// Where Android keeps its shared objects.
pub const ANDROID_LIB_DIR: &str = "/system/lib";

/// The domestic ELF loader, registered with the kernel's binfmt list.
#[derive(Debug, Default)]
pub struct ElfLoader;

impl ElfLoader {
    /// Creates the loader.
    pub fn new() -> ElfLoader {
        ElfLoader
    }
}

impl BinaryLoader for ElfLoader {
    fn name(&self) -> &'static str {
        "elf"
    }

    fn can_load(&self, image: &[u8]) -> bool {
        Elf::sniff(image)
    }

    fn load(
        &self,
        k: &mut Kernel,
        tid: Tid,
        image: &ExecImage,
    ) -> Result<LoadedProgram, Errno> {
        let elf = Elf::parse(&image.bytes)?;
        if elf.machine != EM_ARM {
            return Err(Errno::ENOEXEC);
        }
        if elf.elf_type != ElfType::Executable {
            return Err(Errno::ENOEXEC);
        }
        let pid = k.thread(tid)?.pid;
        let mut mapped = 0u64;
        for (i, seg) in elf.segments.iter().enumerate() {
            let prot = match (seg.writable, seg.executable) {
                (true, _) => Prot::RW,
                (false, true) => Prot::RX,
                (false, false) => Prot::R,
            };
            k.process_mut(pid)?.mm.map(
                seg.memsz,
                prot,
                MappingKind::Binary,
                format!("{}#{}", image.path, i),
            )?;
            mapped += seg.memsz;
        }
        k.charge_cpu(k.profile.dylib_map_ns);

        // ld.so: resolve the DT_NEEDED closure from /system/lib.
        let mut seen = BTreeSet::new();
        let mut work: VecDeque<String> = elf.needed.clone().into();
        let mut dylib_count = 0u32;
        while let Some(soname) = work.pop_front() {
            if !seen.insert(soname.clone()) {
                continue;
            }
            let path = if soname.starts_with('/') {
                soname.clone()
            } else {
                format!("{ANDROID_LIB_DIR}/{soname}")
            };
            let resolved = k.vfs.resolve(&path)?;
            k.charge_cpu(
                k.profile.path_component_ns
                    * resolved.components_walked as u64,
            );
            k.charge_cpu(k.profile.vfs_op_ns * 2);
            let bytes = k.vfs.read_file(&path)?;
            let so = Elf::parse(&bytes)?;
            k.process_mut(pid)?.mm.map(
                so.total_memsz(),
                Prot::RX,
                MappingKind::Dylib,
                path,
            )?;
            k.charge_cpu(k.profile.dylib_map_ns);
            mapped += so.total_memsz();
            dylib_count += 1;
            for n in so.needed {
                work.push_back(n);
            }
        }

        Ok(LoadedProgram {
            entry_symbol: elf.entry_symbol.clone(),
            mapped_bytes: mapped,
            dylib_count,
            format: "elf",
        })
    }
}

/// Installs the standard Android shared-object set into the VFS (what a
/// stock Nexus 7 system image ships in `/system/lib`), plus `/system/bin`
/// binaries the benchmarks exec.
pub fn install_android_system(vfs: &mut Vfs) {
    vfs.mkdir_p(ANDROID_LIB_DIR).expect("fresh fs");
    vfs.mkdir_p("/system/bin").expect("fresh fs");

    let libs: &[(&str, u64, &[&str])] = &[
        ("libc.so", 700 * 1024, &[]),
        ("libm.so", 200 * 1024, &["libc.so"]),
        ("libdl.so", 16 * 1024, &["libc.so"]),
        ("liblog.so", 64 * 1024, &["libc.so"]),
        ("libstdc++.so", 32 * 1024, &["libc.so"]),
        ("libz.so", 128 * 1024, &["libc.so"]),
        ("libcutils.so", 128 * 1024, &["libc.so", "liblog.so"]),
        ("libutils.so", 256 * 1024, &["libcutils.so", "liblog.so"]),
        ("libbinder.so", 320 * 1024, &["libutils.so"]),
        ("libhardware.so", 64 * 1024, &["libcutils.so"]),
        ("libEGL.so", 256 * 1024, &["libcutils.so", "libhardware.so"]),
        ("libGLESv2.so", 192 * 1024, &["libEGL.so"]),
        ("libgralloc.so", 96 * 1024, &["libhardware.so"]),
        ("libui.so", 192 * 1024, &["libutils.so", "libEGL.so"]),
        ("libgui.so", 384 * 1024, &["libui.so", "libbinder.so"]),
        ("libandroid.so", 128 * 1024, &["libutils.so", "libgui.so"]),
        ("libandroid_runtime.so", 2 * 1024 * 1024, &["libandroid.so"]),
        ("libdvm.so", 3 * 1024 * 1024, &["libandroid_runtime.so"]),
        ("libskia.so", 4 * 1024 * 1024, &["libutils.so"]),
        ("libsqlite.so", 512 * 1024, &["libc.so"]),
        ("libssl.so", 384 * 1024, &["libcrypto.so"]),
        ("libcrypto.so", 1536 * 1024, &["libc.so"]),
        ("libEGLbridge.so", 64 * 1024, &["libEGL.so", "libgui.so"]),
    ];
    for (name, size, deps) in libs {
        let mut b = ElfBuilder::shared_object(*size);
        for d in *deps {
            b = b.needs(d);
        }
        vfs.write_file(
            &format!("{ANDROID_LIB_DIR}/{name}"),
            b.build().to_bytes(),
        )
        .expect("fresh fs");
    }

    // /system/bin/sh — the shell the fork+sh benchmark launches. Real
    // mksh pulls in a handful of libraries and runs visible startup work.
    let sh = ElfBuilder::executable("sh")
        .needs("libc.so")
        .needs("libm.so")
        .needs("liblog.so")
        .needs("libcutils.so")
        .build();
    vfs.write_file("/system/bin/sh", sh.to_bytes())
        .expect("fresh fs");
}

#[cfg(test)]
mod tests {
    use super::*;
    use cider_kernel::profile::DeviceProfile;

    fn setup() -> (Kernel, Tid) {
        let mut k = Kernel::boot(DeviceProfile::nexus7());
        install_android_system(&mut k.vfs);
        k.register_binfmt(std::sync::Arc::new(ElfLoader::new()));
        let (_, tid) = k.spawn_process();
        (k, tid)
    }

    #[test]
    fn exec_elf_binary_loads_closure() {
        let (mut k, tid) = setup();
        let bin = ElfBuilder::executable("hello_world")
            .needs("libc.so")
            .needs("libm.so")
            .build();
        k.vfs
            .write_file("/system/bin/hello", bin.to_bytes())
            .unwrap();
        k.sys_exec(tid, "/system/bin/hello", &["hello"]).unwrap();
        let pid = k.thread(tid).unwrap().pid;
        let p = k.process(pid).unwrap();
        assert_eq!(p.program.format, "elf");
        assert_eq!(p.program.entry_symbol.as_deref(), Some("hello_world"));
        // libc + libm mapped.
        assert_eq!(p.program.dylib_count, 2);
        assert!(p.mm.total_bytes() > 900 * 1024);
    }

    #[test]
    fn ld_so_loads_transitive_deps_once() {
        let (mut k, tid) = setup();
        let bin = ElfBuilder::executable("x")
            .needs("libgui.so") // pulls libui, libEGL, libbinder, ...
            .needs("libEGL.so") // already in the closure
            .build();
        k.vfs.write_file("/system/bin/x", bin.to_bytes()).unwrap();
        k.sys_exec(tid, "/system/bin/x", &[]).unwrap();
        let pid = k.thread(tid).unwrap().pid;
        let n = k.process(pid).unwrap().program.dylib_count;
        // libgui libui libEGL libbinder libutils libcutils libc liblog
        // libhardware
        assert_eq!(n, 9);
    }

    #[test]
    fn missing_library_fails_exec() {
        let (mut k, tid) = setup();
        let bin = ElfBuilder::executable("x").needs("libnope.so").build();
        k.vfs.write_file("/system/bin/x", bin.to_bytes()).unwrap();
        assert_eq!(k.sys_exec(tid, "/system/bin/x", &[]), Err(Errno::ENOENT));
    }

    #[test]
    fn wrong_machine_rejected() {
        let (mut k, tid) = setup();
        let mut bin = ElfBuilder::executable("x").build();
        bin.machine = 62; // x86-64
        k.vfs.write_file("/system/bin/x", bin.to_bytes()).unwrap();
        assert_eq!(k.sys_exec(tid, "/system/bin/x", &[]), Err(Errno::ENOEXEC));
    }

    #[test]
    fn shared_object_not_executable() {
        let (mut k, tid) = setup();
        assert_eq!(
            k.sys_exec(tid, "/system/lib/libc.so", &[]),
            Err(Errno::ENOEXEC)
        );
    }
}
