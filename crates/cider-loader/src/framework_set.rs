//! The canonical iOS framework closure.
//!
//! The paper measured that "the iOS dynamic linker, dyld, maps 90 MB of
//! extra memory from 115 different libraries, irrespective of whether or
//! not those libraries are used by the binary" (§6.2). This module
//! generates that closure: the public frameworks and system dylibs every
//! iOS app links, plus the private frameworks they pull in transitively,
//! wired into a dependency DAG whose closure from `UIKit` + `libSystem`
//! covers exactly [`FRAMEWORK_COUNT`] images totalling
//! [`TOTAL_MAPPED_BYTES`] of mapped memory.

use cider_kernel::vfs::Vfs;

use crate::macho::MachOBuilder;

/// Number of dylibs dyld maps into every iOS process (paper §6.2).
pub const FRAMEWORK_COUNT: usize = 115;

/// Total virtual memory the closure maps (paper §6.2: "90 MB").
pub const TOTAL_MAPPED_BYTES: u64 = 90 * 1024 * 1024;

/// One library in the closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameworkLib {
    /// Install path.
    pub path: String,
    /// Mapped size.
    pub vmsize: u64,
    /// Direct dependencies (install paths).
    pub deps: Vec<String>,
}

/// The full framework set.
#[derive(Debug, Clone)]
pub struct FrameworkSet {
    libs: Vec<FrameworkLib>,
}

fn fw(name: &str) -> String {
    format!("/System/Library/Frameworks/{name}.framework/{name}")
}

fn private_fw(i: usize) -> String {
    format!(
        "/System/Library/PrivateFrameworks/Private{i:03}.framework/Private{i:03}"
    )
}

/// System dylib path.
fn usrlib(name: &str) -> String {
    format!("/usr/lib/{name}")
}

impl FrameworkSet {
    /// Builds the standard iOS 6-era closure.
    pub fn standard() -> FrameworkSet {
        let libsystem = usrlib("libSystem.B.dylib");
        let libobjc = usrlib("libobjc.A.dylib");
        let libcpp = usrlib("libc++.1.dylib");

        // (name, MiB) for the heavyweight public frameworks.
        let named: &[(&str, u64)] = &[
            ("UIKit", 11),
            ("WebKit", 9),
            ("Foundation", 6),
            ("CoreGraphics", 5),
            ("QuartzCore", 4),
            ("AVFoundation", 3),
            ("CoreText", 2),
            ("CFNetwork", 2),
            ("Security", 2),
            ("CoreFoundation", 2),
            ("OpenGLES", 1),
            ("IOSurface", 1),
            ("IOKit", 1),
            ("AudioToolbox", 2),
            ("CoreMedia", 2),
            ("CoreVideo", 1),
            ("CoreLocation", 1),
            ("CoreMotion", 1),
            ("SystemConfiguration", 1),
            ("MobileCoreServices", 1),
            ("StoreKit", 1),
            ("iAd", 1),
            ("MapKit", 2),
            ("MessageUI", 1),
            ("GameKit", 1),
            ("EventKit", 1),
            ("AddressBook", 1),
            ("QuickLook", 1),
            ("MediaPlayer", 2),
            ("Accelerate", 2),
        ];

        let mut libs = Vec::with_capacity(FRAMEWORK_COUNT);
        let mib = 1024 * 1024;

        libs.push(FrameworkLib {
            path: libsystem.clone(),
            vmsize: 2 * mib,
            deps: vec![],
        });
        libs.push(FrameworkLib {
            path: libobjc.clone(),
            vmsize: mib,
            deps: vec![libsystem.clone()],
        });
        libs.push(FrameworkLib {
            path: libcpp.clone(),
            vmsize: mib,
            deps: vec![libsystem.clone()],
        });

        for (name, size_mib) in named {
            let deps = match *name {
                "CoreFoundation" => vec![libsystem.clone(), libobjc.clone()],
                "Foundation" => {
                    vec![fw("CoreFoundation"), libobjc.clone()]
                }
                "UIKit" => vec![
                    fw("Foundation"),
                    fw("QuartzCore"),
                    fw("CoreGraphics"),
                    fw("CoreText"),
                ],
                "QuartzCore" => {
                    vec![fw("CoreGraphics"), fw("OpenGLES"), fw("IOSurface")]
                }
                "OpenGLES" => vec![fw("IOKit"), fw("IOSurface")],
                "WebKit" => vec![fw("UIKit"), fw("CFNetwork"), libcpp.clone()],
                "CFNetwork" => vec![fw("Security"), fw("CoreFoundation")],
                _ => vec![fw("CoreFoundation"), libsystem.clone()],
            };
            libs.push(FrameworkLib {
                path: fw(name),
                vmsize: size_mib * mib,
                deps,
            });
        }

        // Private frameworks fill the rest of the 115, distributed as
        // dependencies of the big public frameworks (UIKit really does
        // pull in dozens of private frameworks).
        let named_total: u64 = libs.iter().map(|l| l.vmsize).sum::<u64>();
        let fillers = FRAMEWORK_COUNT - libs.len();
        let filler_size = (TOTAL_MAPPED_BYTES - named_total) / fillers as u64;
        let hosts = [fw("UIKit"), fw("Foundation"), fw("QuartzCore")];
        let mut filler_paths = Vec::new();
        for i in 0..fillers {
            let path = private_fw(i);
            filler_paths.push((path.clone(), hosts[i % hosts.len()].clone()));
            libs.push(FrameworkLib {
                path,
                vmsize: filler_size,
                deps: vec![fw("CoreFoundation")],
            });
        }
        for (filler, host) in filler_paths {
            let host_lib = libs
                .iter_mut()
                .find(|l| l.path == host)
                .expect("host exists");
            host_lib.deps.push(filler);
        }

        let set = FrameworkSet { libs };
        debug_assert_eq!(set.libs.len(), FRAMEWORK_COUNT);
        set
    }

    /// All libraries.
    pub fn libs(&self) -> &[FrameworkLib] {
        &self.libs
    }

    /// Total mapped size of the whole closure.
    pub fn total_vmsize(&self) -> u64 {
        self.libs.iter().map(|l| l.vmsize).sum()
    }

    /// The dependencies every app binary links directly — dyld's roots.
    pub fn app_default_deps() -> Vec<String> {
        vec![
            usrlib("libSystem.B.dylib"),
            usrlib("libobjc.A.dylib"),
            fw("UIKit"),
            fw("Foundation"),
            fw("WebKit"),
            fw("AVFoundation"),
            fw("AudioToolbox"),
            fw("CoreMedia"),
            fw("CoreVideo"),
            fw("CoreLocation"),
            fw("CoreMotion"),
            fw("SystemConfiguration"),
            fw("MobileCoreServices"),
            fw("StoreKit"),
            fw("iAd"),
            fw("MapKit"),
            fw("MessageUI"),
            fw("GameKit"),
            fw("EventKit"),
            fw("AddressBook"),
            fw("QuickLook"),
            fw("MediaPlayer"),
            fw("Accelerate"),
            usrlib("libc++.1.dylib"),
        ]
    }

    /// Writes every library into the VFS overlay as a Mach-O dylib —
    /// Cider's copied-from-iOS framework files.
    pub fn install(&self, vfs: &mut Vfs) {
        for lib in &self.libs {
            let mut b = MachOBuilder::dylib(lib.vmsize);
            for d in &lib.deps {
                b = b.depends_on(d);
            }
            vfs.write_file_overlay(&lib.path, b.build().to_bytes())
                .expect("overlay install");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet, VecDeque};

    #[test]
    fn exactly_115_libs_and_90mb() {
        let set = FrameworkSet::standard();
        assert_eq!(set.libs().len(), FRAMEWORK_COUNT);
        let total = set.total_vmsize();
        let target = TOTAL_MAPPED_BYTES;
        // Integer division of the filler budget loses < 1 MiB.
        assert!(
            total <= target && total > target - 1024 * 1024,
            "total {total}"
        );
    }

    #[test]
    fn closure_from_app_roots_covers_everything() {
        let set = FrameworkSet::standard();
        let by_path: BTreeMap<&str, &FrameworkLib> =
            set.libs().iter().map(|l| (l.path.as_str(), l)).collect();
        let mut seen = BTreeSet::new();
        let mut work: VecDeque<String> =
            FrameworkSet::app_default_deps().into();
        while let Some(p) = work.pop_front() {
            if !seen.insert(p.clone()) {
                continue;
            }
            let lib = by_path
                .get(p.as_str())
                .unwrap_or_else(|| panic!("missing dep {p}"));
            for d in &lib.deps {
                work.push_back(d.clone());
            }
        }
        assert_eq!(
            seen.len(),
            FRAMEWORK_COUNT,
            "dyld closure must map all 115 images"
        );
    }

    #[test]
    fn all_deps_resolve_within_set() {
        let set = FrameworkSet::standard();
        let paths: BTreeSet<&str> =
            set.libs().iter().map(|l| l.path.as_str()).collect();
        for lib in set.libs() {
            for d in &lib.deps {
                assert!(paths.contains(d.as_str()), "{} -> {d}", lib.path);
            }
        }
    }

    #[test]
    fn install_writes_parseable_dylibs() {
        let mut vfs = Vfs::new();
        let set = FrameworkSet::standard();
        set.install(&mut vfs);
        let bytes = vfs
            .read_file("/System/Library/Frameworks/UIKit.framework/UIKit")
            .unwrap();
        let m = crate::macho::MachO::parse(&bytes).unwrap();
        assert_eq!(m.filetype, crate::macho::FileType::Dylib);
        assert!(m.total_vmsize() >= 11 * 1024 * 1024);
        assert!(!m.dylib_deps().is_empty());
    }
}
