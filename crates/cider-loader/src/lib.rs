//! Binary formats and loaders for the Cider reproduction.
//!
//! iOS binaries ship in Mach-O, Android binaries in ELF; Cider's kernel
//! must load both. This crate provides:
//!
//! * [`macho`] — a simulated Mach-O container (magic, CPU type, load
//!   commands: segments, dylib dependencies, `LC_MAIN`, encryption info)
//!   with builders, serialisation, and a validating parser;
//! * [`elf`] — the ELF equivalent for domestic binaries;
//! * [`elf_loader`] — the domestic binfmt loader plus the standard
//!   Android `/system/lib` install;
//! * [`dyld`] — the dyld simulation: per-image filesystem walks on the
//!   Cider prototype, the prelinked shared cache on real iOS devices;
//! * [`framework_set`] — the 115-dylib / 90 MB iOS framework closure the
//!   paper measured.
//!
//! The Mach-O *kernel loader* (which tags threads with the iOS persona)
//! belongs to Cider's architecture and lives in `cider-core`.
//!
//! # Example
//!
//! ```
//! use cider_loader::macho::{MachO, MachOBuilder};
//!
//! let app = MachOBuilder::executable("main")
//!     .depends_on("/usr/lib/libSystem.B.dylib")
//!     .build();
//! let bytes = app.to_bytes();
//! assert!(MachO::sniff(&bytes));
//! assert_eq!(MachO::parse(&bytes)?, app);
//! # Ok::<(), cider_abi::errno::Errno>(())
//! ```

pub mod dyld;
pub mod elf;
pub mod elf_loader;
pub mod framework_set;
pub mod macho;

pub use dyld::{run_dyld, DyldStats};
pub use elf::{Elf, ElfBuilder};
pub use elf_loader::{install_android_system, ElfLoader};
pub use framework_set::{FrameworkSet, FRAMEWORK_COUNT, TOTAL_MAPPED_BYTES};
pub use macho::{MachO, MachOBuilder};
