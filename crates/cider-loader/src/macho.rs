//! The simulated Mach-O container format.
//!
//! iOS apps "are loaded directly by a kernel-level Mach-O loader which
//! interprets the binary, loads its text and data segments, and jumps to
//! the app entry point" (paper §2). Real Mach-O is a well-documented
//! Apple format; this module defines a faithful *miniature*: the same
//! magic, CPU type, file types, and load-command structure (segments,
//! dylib dependencies, entry point, encryption info, UUID), with a
//! compact binary serialisation so images can live in the simulated VFS
//! and be parsed — and rejected — the way the kernel loader would.

use cider_abi::errno::Errno;

/// `MH_MAGIC` for 32-bit ARM Mach-O.
pub const MH_MAGIC: u32 = 0xFEED_FACE;
/// `CPU_TYPE_ARM`.
pub const CPU_TYPE_ARM: u32 = 12;

/// Mach-O file types we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// `MH_EXECUTE` — a main binary.
    Execute,
    /// `MH_DYLIB` — a dynamic library.
    Dylib,
}

impl FileType {
    fn as_raw(self) -> u32 {
        match self {
            FileType::Execute => 2,
            FileType::Dylib => 6,
        }
    }

    fn from_raw(raw: u32) -> Option<FileType> {
        match raw {
            2 => Some(FileType::Execute),
            6 => Some(FileType::Dylib),
            _ => None,
        }
    }
}

/// A load command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadCommand {
    /// `LC_SEGMENT`: a mapped segment.
    Segment {
        /// Segment name (`__TEXT`, `__DATA`, ...).
        name: String,
        /// Virtual size in bytes (what the loader maps).
        vmsize: u64,
        /// Writable segment?
        writable: bool,
        /// Executable segment?
        executable: bool,
    },
    /// `LC_LOAD_DYLIB`: a dependency.
    LoadDylib {
        /// Install path of the dependency.
        path: String,
    },
    /// `LC_MAIN`: the entry point, named symbolically for the simulator's
    /// program registry.
    Main {
        /// Behaviour key in the kernel program registry.
        entry_symbol: String,
    },
    /// `LC_ENCRYPTION_INFO`: App Store FairPlay encryption state.
    EncryptionInfo {
        /// Non-zero = encrypted (`cryptid`).
        cryptid: u32,
    },
    /// `LC_UUID`.
    Uuid {
        /// The image UUID.
        uuid: [u8; 16],
    },
}

/// A parsed (or to-be-serialised) Mach-O image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachO {
    /// CPU type (must be ARM to load).
    pub cpu_type: u32,
    /// File type.
    pub filetype: FileType,
    /// Load commands in order.
    pub commands: Vec<LoadCommand>,
}

impl MachO {
    /// Total virtual size of all segments.
    pub fn total_vmsize(&self) -> u64 {
        self.commands
            .iter()
            .map(|c| match c {
                LoadCommand::Segment { vmsize, .. } => *vmsize,
                _ => 0,
            })
            .sum()
    }

    /// Dependency install paths in order.
    pub fn dylib_deps(&self) -> Vec<&str> {
        self.commands
            .iter()
            .filter_map(|c| match c {
                LoadCommand::LoadDylib { path } => Some(path.as_str()),
                _ => None,
            })
            .collect()
    }

    /// The entry symbol, if an `LC_MAIN` is present.
    pub fn entry_symbol(&self) -> Option<&str> {
        self.commands.iter().find_map(|c| match c {
            LoadCommand::Main { entry_symbol } => Some(entry_symbol.as_str()),
            _ => None,
        })
    }

    /// Whether the image carries a non-zero `cryptid` (App Store
    /// encrypted; must be decrypted on a jailbroken device first, §6.1).
    pub fn is_encrypted(&self) -> bool {
        self.commands.iter().any(|c| {
            matches!(c, LoadCommand::EncryptionInfo { cryptid } if *cryptid != 0)
        })
    }

    /// Serialises to the simulator's on-disk representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_u32(&mut out, MH_MAGIC);
        push_u32(&mut out, self.cpu_type);
        push_u32(&mut out, self.filetype.as_raw());
        push_u32(&mut out, self.commands.len() as u32);
        for cmd in &self.commands {
            match cmd {
                LoadCommand::Segment {
                    name,
                    vmsize,
                    writable,
                    executable,
                } => {
                    push_u32(&mut out, 1);
                    push_str(&mut out, name);
                    push_u64(&mut out, *vmsize);
                    out.push(u8::from(*writable));
                    out.push(u8::from(*executable));
                }
                LoadCommand::LoadDylib { path } => {
                    push_u32(&mut out, 12);
                    push_str(&mut out, path);
                }
                LoadCommand::Main { entry_symbol } => {
                    push_u32(&mut out, 0x28);
                    push_str(&mut out, entry_symbol);
                }
                LoadCommand::EncryptionInfo { cryptid } => {
                    push_u32(&mut out, 0x21);
                    push_u32(&mut out, *cryptid);
                }
                LoadCommand::Uuid { uuid } => {
                    push_u32(&mut out, 0x1b);
                    out.extend_from_slice(uuid);
                }
            }
        }
        out
    }

    /// Whether a byte slice starts with the Mach-O magic.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= 4
            && u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
                == MH_MAGIC
    }

    /// Parses the on-disk representation.
    ///
    /// # Errors
    ///
    /// `ENOEXEC` for anything malformed: wrong magic, unknown file type
    /// or command, or truncation.
    pub fn parse(bytes: &[u8]) -> Result<MachO, Errno> {
        let mut r = Reader::new(bytes);
        if r.u32()? != MH_MAGIC {
            return Err(Errno::ENOEXEC);
        }
        let cpu_type = r.u32()?;
        let filetype = FileType::from_raw(r.u32()?).ok_or(Errno::ENOEXEC)?;
        let ncmds = r.u32()?;
        if ncmds > 10_000 {
            return Err(Errno::ENOEXEC);
        }
        let mut commands = Vec::with_capacity(ncmds as usize);
        for _ in 0..ncmds {
            let cmd = match r.u32()? {
                1 => LoadCommand::Segment {
                    name: r.string()?,
                    vmsize: r.u64()?,
                    writable: r.u8()? != 0,
                    executable: r.u8()? != 0,
                },
                12 => LoadCommand::LoadDylib { path: r.string()? },
                0x28 => LoadCommand::Main {
                    entry_symbol: r.string()?,
                },
                0x21 => LoadCommand::EncryptionInfo { cryptid: r.u32()? },
                0x1b => LoadCommand::Uuid { uuid: r.bytes16()? },
                _ => return Err(Errno::ENOEXEC),
            };
            commands.push(cmd);
        }
        Ok(MachO {
            cpu_type,
            filetype,
            commands,
        })
    }
}

/// Builder for test and framework images.
#[derive(Debug, Clone)]
pub struct MachOBuilder {
    macho: MachO,
}

impl MachOBuilder {
    /// Starts an `MH_EXECUTE` image with a text segment.
    pub fn executable(entry_symbol: &str) -> MachOBuilder {
        MachOBuilder {
            macho: MachO {
                cpu_type: CPU_TYPE_ARM,
                filetype: FileType::Execute,
                commands: vec![
                    LoadCommand::Segment {
                        name: "__TEXT".into(),
                        vmsize: 256 * 1024,
                        writable: false,
                        executable: true,
                    },
                    LoadCommand::Segment {
                        name: "__DATA".into(),
                        vmsize: 64 * 1024,
                        writable: true,
                        executable: false,
                    },
                    LoadCommand::Main {
                        entry_symbol: entry_symbol.into(),
                    },
                ],
            },
        }
    }

    /// Starts an `MH_DYLIB` image of a given mapped size.
    pub fn dylib(vmsize: u64) -> MachOBuilder {
        MachOBuilder {
            macho: MachO {
                cpu_type: CPU_TYPE_ARM,
                filetype: FileType::Dylib,
                commands: vec![LoadCommand::Segment {
                    name: "__TEXT".into(),
                    vmsize,
                    writable: false,
                    executable: true,
                }],
            },
        }
    }

    /// Adds a dylib dependency.
    pub fn depends_on(mut self, path: &str) -> MachOBuilder {
        self.macho
            .commands
            .push(LoadCommand::LoadDylib { path: path.into() });
        self
    }

    /// Marks the image App Store encrypted.
    pub fn encrypted(mut self) -> MachOBuilder {
        self.macho
            .commands
            .push(LoadCommand::EncryptionInfo { cryptid: 1 });
        self
    }

    /// Overrides the CPU type (for negative tests).
    pub fn cpu_type(mut self, cpu: u32) -> MachOBuilder {
        self.macho.cpu_type = cpu;
        self
    }

    /// Finishes the image.
    pub fn build(self) -> MachO {
        self.macho
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Errno> {
        if self.pos + n > self.bytes.len() {
            return Err(Errno::ENOEXEC);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, Errno> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, Errno> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, Errno> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn string(&mut self) -> Result<String, Errno> {
        let len = self.u32()? as usize;
        if len > 4096 {
            return Err(Errno::ENOEXEC);
        }
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| Errno::ENOEXEC)
    }

    fn bytes16(&mut self) -> Result<[u8; 16], Errno> {
        let b = self.take(16)?;
        let mut out = [0u8; 16];
        out.copy_from_slice(b);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_executable() {
        let m = MachOBuilder::executable("main")
            .depends_on("/usr/lib/libSystem.B.dylib")
            .build();
        let bytes = m.to_bytes();
        assert!(MachO::sniff(&bytes));
        let parsed = MachO::parse(&bytes).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.entry_symbol(), Some("main"));
        assert_eq!(parsed.dylib_deps(), vec!["/usr/lib/libSystem.B.dylib"]);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert_eq!(MachO::parse(b"\x7fELF----"), Err(Errno::ENOEXEC));
        let m = MachOBuilder::executable("main").build();
        let bytes = m.to_bytes();
        assert_eq!(
            MachO::parse(&bytes[..bytes.len() - 3]),
            Err(Errno::ENOEXEC)
        );
        assert!(!MachO::sniff(b"\x7fEL"));
    }

    #[test]
    fn encryption_detected() {
        let plain = MachOBuilder::executable("main").build();
        assert!(!plain.is_encrypted());
        let enc = MachOBuilder::executable("main").encrypted().build();
        assert!(enc.is_encrypted());
        let parsed = MachO::parse(&enc.to_bytes()).unwrap();
        assert!(parsed.is_encrypted());
    }

    #[test]
    fn vmsize_sums_segments() {
        let m = MachOBuilder::executable("main").build();
        assert_eq!(m.total_vmsize(), (256 + 64) * 1024);
        let d = MachOBuilder::dylib(1024 * 1024).build();
        assert_eq!(d.total_vmsize(), 1024 * 1024);
        assert_eq!(d.filetype, FileType::Dylib);
    }

    #[test]
    fn uuid_roundtrip() {
        let mut m = MachOBuilder::dylib(4096).build();
        m.commands.push(LoadCommand::Uuid { uuid: [7u8; 16] });
        let parsed = MachO::parse(&m.to_bytes()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn absurd_ncmds_rejected() {
        let mut bytes = Vec::new();
        push_u32(&mut bytes, MH_MAGIC);
        push_u32(&mut bytes, CPU_TYPE_ARM);
        push_u32(&mut bytes, 2);
        push_u32(&mut bytes, 1_000_000);
        assert_eq!(MachO::parse(&bytes), Err(Errno::ENOEXEC));
    }
}
