//! Deterministic virtual-time preemptive scheduler.
//!
//! The paper's core claim is *per-thread* personas: Cider schedules iOS
//! and Android threads side by side on one kernel, and lmbench's
//! `lat_ctx` rows (Figure 5) prove the multiplexed trap path does not tax
//! context switching. This crate owns the machinery that makes that
//! reproducible in simulation:
//!
//! * **per-priority run queues** over XNU's 0..=127 priority space
//!   (MLFQ-style: quantum expiry demotes timeshare threads, a periodic
//!   boost returns everyone to the top user band so nothing starves);
//! * **a seedable deterministic tie-breaker** — when several threads sit
//!   in the highest occupied band, a [`SplitMix64`] stream seeded at
//!   construction picks among them, so a fixed seed reproduces a
//!   byte-identical context-switch sequence and a different seed explores
//!   a different (but equally deterministic) interleaving;
//! * **time-slice accounting in virtual nanoseconds** — the kernel
//!   charges each trap's elapsed virtual time against the running
//!   thread's quantum and asks the scheduler whether a preemption is due
//!   at the trap-return boundary.
//!
//! The scheduler never touches the clock itself: it is a pure decision
//! structure. The kernel remains responsible for charging context-switch
//! cost and mutating `Thread::state`; this crate only answers *who runs
//! next* and *when to ask*.

use std::collections::{BTreeMap, VecDeque};

use cider_abi::ids::Tid;
use cider_abi::persona::Persona;
use cider_abi::sched::{
    SchedPolicy, BASEPRI_DEFAULT, DEPRESSPRI, MAXPRI_USER, PRIORITY_LEVELS,
};
use cider_fault::SplitMix64;

/// Default time slice, virtual nanoseconds (10 ms, XNU's default
/// timeshare quantum on the devices the paper measured).
pub const QUANTUM_NS: u64 = 10_000_000;

/// Period of the MLFQ anti-starvation boost, virtual nanoseconds: every
/// 100 ms of virtual time all timeshare threads return to the top user
/// band, guaranteeing a starved low-priority thread eventually runs.
pub const BOOST_PERIOD_NS: u64 = 100_000_000;

/// Priority bands dropped on each quantum expiry (timeshare only).
pub const DEMOTE_STEP: u8 = 4;

/// Run-state the scheduler tracks for a thread. Mirrors (but does not
/// own) the kernel's `ThreadState`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    /// In some run queue.
    Queued,
    /// Currently dispatched on the (single) virtual CPU.
    Running,
    /// Parked on a wait channel; not in any queue.
    Blocked,
}

/// Per-thread scheduling record.
#[derive(Debug, Clone)]
struct SchedEntry {
    /// Base priority: the band the thread returns to after boost decay
    /// and the reference point for `thread_policy_set` importance.
    base_pri: u8,
    /// Effective priority: the band the thread is queued in right now
    /// (demoted on quantum expiry, boosted periodically, depressed by
    /// `swtch_pri`).
    eff_pri: u8,
    /// Remaining time slice, virtual ns.
    quantum_left_ns: u64,
    /// Scheduling identity: which persona's workload this thread is
    /// accounted to. Set once when the persona is attached; a diplomatic
    /// `set_persona` call must *not* change it.
    persona: Persona,
    /// Timeshare vs fixed-priority.
    policy: SchedPolicy,
    /// Saved effective priority while depressed by `swtch_pri` /
    /// `thread_switch(SWITCH_OPTION_DEPRESS)`; restored on next dispatch.
    depressed_from: Option<u8>,
    /// Run state.
    state: RunState,
}

/// One scheduling decision, returned by [`Scheduler::pick_next`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The thread to run.
    pub tid: Tid,
    /// Number of runnable threads left queued *after* removing `tid`.
    pub queued_after: usize,
}

/// Deterministic MLFQ scheduler over virtual time.
#[derive(Debug, Clone)]
pub struct Scheduler {
    entries: BTreeMap<u32, SchedEntry>,
    /// One FIFO per priority band; index = effective priority.
    queues: Vec<VecDeque<u32>>,
    /// Seeded tie-breaker stream.
    rng: SplitMix64,
    seed: u64,
    /// Virtual instant of the last anti-starvation boost.
    last_boost_ns: u64,
    /// Set when a preemption is due at the next trap-return boundary.
    need_resched: bool,
    /// The most recent voluntary yielder: it loses the next tie-break in
    /// its own band, so `sched_yield`/`swtch` really hand off whenever a
    /// band peer is queued. Consumed by [`Scheduler::pick_next`].
    yielded: Option<u32>,
}

impl Scheduler {
    /// A scheduler whose tie-breaker stream starts from `seed`.
    pub fn new(seed: u64) -> Scheduler {
        Scheduler {
            entries: BTreeMap::new(),
            queues: vec![VecDeque::new(); PRIORITY_LEVELS],
            rng: SplitMix64::new(seed),
            seed,
            last_boost_ns: 0,
            need_resched: false,
            yielded: None,
        }
    }

    /// The seed the tie-breaker stream started from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Restarts the tie-breaker stream from a new seed. Existing queue
    /// contents are kept; only future tie-breaks change.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SplitMix64::new(seed);
        self.seed = seed;
    }

    // ------------------------------------------------------------------
    // Thread lifecycle.
    // ------------------------------------------------------------------

    /// Registers a new runnable thread at the default timeshare priority.
    pub fn register(&mut self, tid: Tid, persona: Persona) {
        let entry = SchedEntry {
            base_pri: BASEPRI_DEFAULT,
            eff_pri: BASEPRI_DEFAULT,
            quantum_left_ns: QUANTUM_NS,
            persona,
            policy: SchedPolicy::Timeshare,
            depressed_from: None,
            state: RunState::Queued,
        };
        self.entries.insert(tid.0, entry);
        self.queues[BASEPRI_DEFAULT as usize].push_back(tid.0);
    }

    /// Forgets a thread entirely (exit or reap). Idempotent.
    pub fn remove(&mut self, tid: Tid) {
        if self.yielded == Some(tid.0) {
            self.yielded = None;
        }
        if self.entries.remove(&tid.0).is_some() {
            for q in &mut self.queues {
                q.retain(|&t| t != tid.0);
            }
        }
    }

    /// Whether the scheduler knows this thread.
    pub fn contains(&self, tid: Tid) -> bool {
        self.entries.contains_key(&tid.0)
    }

    // ------------------------------------------------------------------
    // Persona identity and policy.
    // ------------------------------------------------------------------

    /// Tags a thread's scheduling identity. Called once when a persona is
    /// attached; diplomatic persona switches leave it untouched.
    pub fn set_identity(&mut self, tid: Tid, persona: Persona) {
        if let Some(e) = self.entries.get_mut(&tid.0) {
            e.persona = persona;
        }
    }

    /// The thread's scheduling identity.
    pub fn identity(&self, tid: Tid) -> Option<Persona> {
        self.entries.get(&tid.0).map(|e| e.persona)
    }

    /// Sets the scheduling policy (timeshare vs fixed).
    pub fn set_policy(&mut self, tid: Tid, policy: SchedPolicy) {
        if let Some(e) = self.entries.get_mut(&tid.0) {
            e.policy = policy;
        }
    }

    /// Sets base (and effective) priority, requeueing if necessary.
    pub fn set_priority(&mut self, tid: Tid, pri: u8) {
        let pri = pri.min(MAXPRI_USER);
        let Some(e) = self.entries.get_mut(&tid.0) else {
            return;
        };
        e.base_pri = pri;
        e.depressed_from = None;
        let was_queued = e.state == RunState::Queued;
        let old = e.eff_pri;
        e.eff_pri = pri;
        if was_queued && old != pri {
            self.queues[old as usize].retain(|&t| t != tid.0);
            self.queues[pri as usize].push_back(tid.0);
        }
    }

    /// The thread's (base, effective) priorities.
    pub fn priority(&self, tid: Tid) -> Option<(u8, u8)> {
        self.entries.get(&tid.0).map(|e| (e.base_pri, e.eff_pri))
    }

    // ------------------------------------------------------------------
    // Block / wake / yield.
    // ------------------------------------------------------------------

    /// The thread parked on a wait channel: leave the queues.
    pub fn on_block(&mut self, tid: Tid) {
        let Some(e) = self.entries.get_mut(&tid.0) else {
            return;
        };
        if e.state == RunState::Queued {
            self.queues[e.eff_pri as usize].retain(|&t| t != tid.0);
        }
        self.entries.get_mut(&tid.0).unwrap().state = RunState::Blocked;
    }

    /// A blocked thread became runnable. Returns `true` when the wake
    /// should preempt the given running thread (strictly higher band).
    pub fn on_wake(&mut self, tid: Tid, current: Option<Tid>) -> bool {
        let Some(e) = self.entries.get_mut(&tid.0) else {
            return false;
        };
        if e.state != RunState::Blocked {
            return false;
        }
        e.state = RunState::Queued;
        e.quantum_left_ns = QUANTUM_NS;
        let woken_pri = e.eff_pri;
        self.queues[woken_pri as usize].push_back(tid.0);
        let preempts = current
            .and_then(|c| self.entries.get(&c.0))
            .is_some_and(|cur| woken_pri > cur.eff_pri);
        if preempts {
            self.need_resched = true;
        }
        preempts
    }

    /// Voluntary yield: requeue at the back of the thread's band and
    /// request a reschedule. The yielded thread keeps its band
    /// (`sched_yield` / `swtch` semantics — no demotion for politeness).
    pub fn yield_now(&mut self, tid: Tid) {
        let Some(e) = self.entries.get_mut(&tid.0) else {
            return;
        };
        if e.state == RunState::Blocked {
            return;
        }
        e.quantum_left_ns = QUANTUM_NS;
        e.state = RunState::Queued;
        let pri = e.eff_pri;
        self.queues[pri as usize].retain(|&t| t != tid.0);
        self.queues[pri as usize].push_back(tid.0);
        self.yielded = Some(tid.0);
        self.need_resched = true;
    }

    /// `swtch_pri` / `thread_switch(SWITCH_OPTION_DEPRESS)`: depress the
    /// thread to [`DEPRESSPRI`] until its next dispatch, then yield.
    pub fn depress(&mut self, tid: Tid) {
        let Some(e) = self.entries.get_mut(&tid.0) else {
            return;
        };
        if e.depressed_from.is_none() {
            e.depressed_from = Some(e.eff_pri);
        }
        let old = e.eff_pri;
        e.eff_pri = DEPRESSPRI;
        if e.state == RunState::Queued {
            self.queues[old as usize].retain(|&t| t != tid.0);
        }
        self.yield_now(tid);
    }

    /// Aborts a depression without waiting for the next dispatch
    /// (`thread_depress_abort` semantics).
    pub fn undepress(&mut self, tid: Tid) {
        let Some(e) = self.entries.get_mut(&tid.0) else {
            return;
        };
        let Some(saved) = e.depressed_from.take() else {
            return;
        };
        let old = e.eff_pri;
        e.eff_pri = saved;
        if e.state == RunState::Queued && old != saved {
            self.queues[old as usize].retain(|&t| t != tid.0);
            self.queues[saved as usize].push_back(tid.0);
        }
    }

    // ------------------------------------------------------------------
    // Time accounting and selection.
    // ------------------------------------------------------------------

    /// Charges `ns` of virtual CPU against `tid`'s quantum. On expiry a
    /// timeshare thread is demoted one MLFQ step and a reschedule is
    /// requested. Returns `true` when the quantum expired.
    pub fn charge(&mut self, tid: Tid, ns: u64, now_ns: u64) -> bool {
        self.maybe_boost(now_ns);
        let Some(e) = self.entries.get_mut(&tid.0) else {
            return false;
        };
        e.quantum_left_ns = e.quantum_left_ns.saturating_sub(ns);
        if e.quantum_left_ns > 0 {
            return false;
        }
        e.quantum_left_ns = QUANTUM_NS;
        if e.policy == SchedPolicy::Timeshare && e.depressed_from.is_none() {
            e.eff_pri = e.eff_pri.saturating_sub(DEMOTE_STEP);
        }
        self.need_resched = true;
        true
    }

    /// Whether a reschedule has been requested since the last
    /// [`Scheduler::take_resched`].
    pub fn resched_pending(&self) -> bool {
        self.need_resched
    }

    /// Consumes the pending-reschedule flag.
    pub fn take_resched(&mut self) -> bool {
        std::mem::take(&mut self.need_resched)
    }

    /// Picks the next thread: the highest non-empty band wins; within a
    /// band the seeded stream breaks the tie (one runnable thread costs
    /// no randomness, keeping single-threaded runs seed-independent).
    /// A voluntary yielder loses the tie-break in its own band, so a
    /// yield always hands off to a band peer when one is queued — but
    /// never cedes to a strictly lower band (POSIX `sched_yield` and
    /// Mach `swtch` semantics; `swtch_pri` depresses first to do that).
    /// The picked thread is dequeued; the caller must follow up with
    /// [`Scheduler::on_dispatch`].
    pub fn pick_next(&mut self, now_ns: u64) -> Option<Decision> {
        self.maybe_boost(now_ns);
        let yielded = self.yielded.take();
        let band = (0..PRIORITY_LEVELS)
            .rev()
            .find(|&p| !self.queues[p].is_empty())?;
        let q = &mut self.queues[band];
        let ypos = yielded.and_then(|y| q.iter().position(|&t| t == y));
        let idx = match ypos {
            // The yielder shares the band with peers: pick among the
            // others only (two-thread ping-pong costs no randomness).
            Some(ypos) if q.len() > 1 => {
                let n = q.len() - 1;
                let k = if n == 1 {
                    0
                } else {
                    self.rng.below(n as u64) as usize
                };
                if k >= ypos {
                    k + 1
                } else {
                    k
                }
            }
            // The yielder is alone in the top band (or not in it at
            // all): ordinary selection.
            _ => {
                if q.len() == 1 {
                    0
                } else {
                    self.rng.below(q.len() as u64) as usize
                }
            }
        };
        let raw = q.remove(idx).expect("non-empty band");
        let queued_after = self.queued_depth();
        Some(Decision {
            tid: Tid(raw),
            queued_after,
        })
    }

    /// Marks `tid` as the running thread: removes it from any queue,
    /// lifts a `swtch_pri` depression, and recharges its quantum. Used
    /// both after [`Scheduler::pick_next`] and when the kernel switches
    /// threads explicitly.
    pub fn on_dispatch(&mut self, tid: Tid) {
        let Some(e) = self.entries.get_mut(&tid.0) else {
            return;
        };
        if e.state == RunState::Queued {
            let pri = e.eff_pri;
            self.queues[pri as usize].retain(|&t| t != tid.0);
        }
        e.state = RunState::Running;
        e.quantum_left_ns = QUANTUM_NS;
        if let Some(saved) = e.depressed_from.take() {
            e.eff_pri = saved;
        }
    }

    /// The previously running thread was descheduled but stays runnable:
    /// put it back at the tail of its band.
    pub fn requeue(&mut self, tid: Tid) {
        let Some(e) = self.entries.get_mut(&tid.0) else {
            return;
        };
        if e.state == RunState::Blocked {
            return;
        }
        let pri = e.eff_pri as usize;
        if !self.queues[pri].contains(&tid.0) {
            self.queues[pri].push_back(tid.0);
        }
        self.entries.get_mut(&tid.0).unwrap().state = RunState::Queued;
    }

    /// Number of threads sitting in run queues (excludes the running
    /// thread and blocked threads).
    pub fn queued_depth(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Whether any *other* thread is queued runnable — the `swtch`
    /// boolean.
    pub fn other_runnable(&self, tid: Tid) -> bool {
        self.queues.iter().any(|q| q.iter().any(|&t| t != tid.0))
    }

    /// Exports the scheduler's complete observable state as stable
    /// `(key, value)` records for whole-device checkpointing: the
    /// tie-breaker stream position, boost bookkeeping, every
    /// per-thread entry (in tid order), and the occupied run queues
    /// (band-major FIFO order). Two schedulers that produce these
    /// records identically are behaviourally indistinguishable.
    pub fn ckpt_records(&self) -> Vec<(String, String)> {
        let mut out = vec![
            ("seed".to_string(), self.seed.to_string()),
            (
                "rng_state".to_string(),
                format!("{:016x}", self.rng.state()),
            ),
            ("last_boost_ns".to_string(), self.last_boost_ns.to_string()),
            ("need_resched".to_string(), self.need_resched.to_string()),
            (
                "yielded".to_string(),
                self.yielded
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".to_string()),
            ),
        ];
        for (tid, e) in &self.entries {
            let depressed = e
                .depressed_from
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".to_string());
            out.push((
                format!("tid:{tid}"),
                format!(
                    "base={} eff={} quantum_ns={} persona={:?} \
                     policy={:?} depressed={depressed} state={:?}",
                    e.base_pri,
                    e.eff_pri,
                    e.quantum_left_ns,
                    e.persona,
                    e.policy,
                    e.state
                ),
            ));
        }
        for (pri, q) in self.queues.iter().enumerate() {
            if !q.is_empty() {
                let ids: Vec<String> =
                    q.iter().map(|t| t.to_string()).collect();
                out.push((format!("queue:{pri:03}"), ids.join(",")));
            }
        }
        out
    }

    /// MLFQ anti-starvation boost: every [`BOOST_PERIOD_NS`] of virtual
    /// time, every non-depressed timeshare thread returns to the top
    /// user band. FIFO order is preserved band-major (highest first), so
    /// the boost itself is deterministic.
    fn maybe_boost(&mut self, now_ns: u64) {
        if now_ns.saturating_sub(self.last_boost_ns) < BOOST_PERIOD_NS {
            return;
        }
        self.last_boost_ns = now_ns;
        let mut order: Vec<u32> = Vec::new();
        for p in (0..PRIORITY_LEVELS).rev() {
            order.extend(self.queues[p].drain(..));
        }
        for raw in order {
            let e = self.entries.get_mut(&raw).expect("queued entry");
            if e.policy == SchedPolicy::Timeshare && e.depressed_from.is_none()
            {
                e.eff_pri = MAXPRI_USER;
            }
            self.queues[e.eff_pri as usize].push_back(raw);
        }
        for e in self.entries.values_mut() {
            if e.state == RunState::Running
                && e.policy == SchedPolicy::Timeshare
                && e.depressed_from.is_none()
            {
                e.eff_pri = MAXPRI_USER;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> Tid {
        Tid(n)
    }

    #[test]
    fn register_pick_dispatch_cycle() {
        let mut s = Scheduler::new(1);
        s.register(t(1), Persona::Domestic);
        let d = s.pick_next(0).unwrap();
        assert_eq!(d.tid, t(1));
        assert_eq!(d.queued_after, 0);
        s.on_dispatch(t(1));
        // Nothing else runnable.
        assert!(s.pick_next(0).is_none());
        assert!(!s.other_runnable(t(1)));
    }

    #[test]
    fn single_runnable_thread_consumes_no_randomness() {
        // Two schedulers with different seeds make identical decisions
        // while no tie exists, so single-threaded workloads are
        // seed-independent.
        let mut a = Scheduler::new(1);
        let mut b = Scheduler::new(999);
        for s in [&mut a, &mut b] {
            s.register(t(1), Persona::Domestic);
        }
        for now in [0, 10, 20] {
            assert_eq!(a.pick_next(now), b.pick_next(now));
            a.on_dispatch(t(1));
            b.on_dispatch(t(1));
            a.yield_now(t(1));
            b.yield_now(t(1));
        }
    }

    #[test]
    fn same_seed_reproduces_tie_breaks() {
        let run = |seed: u64| -> Vec<u32> {
            let mut s = Scheduler::new(seed);
            for i in 1..=4 {
                s.register(t(i), Persona::Domestic);
            }
            let mut order = Vec::new();
            for _ in 0..32 {
                let d = s.pick_next(0).unwrap();
                order.push(d.tid.0);
                s.on_dispatch(d.tid);
                s.yield_now(d.tid);
            }
            order
        };
        assert_eq!(run(42), run(42));
        // A different seed explores a different interleaving (with four
        // threads and 32 picks, a collision would be astronomically
        // unlikely — and any fixed pair of seeds is deterministic).
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn yield_always_hands_off_to_a_band_peer() {
        // Whatever the seed, a yielder with a same-band peer never wins
        // the tie-break — but it does keep the CPU over a lower band.
        for seed in [1, 2, 42, 0xC1DE] {
            let mut s = Scheduler::new(seed);
            s.register(t(1), Persona::Domestic);
            s.register(t(2), Persona::Domestic);
            s.register(t(3), Persona::Domestic);
            s.set_priority(t(3), 10);
            let d = s.pick_next(0).unwrap();
            s.on_dispatch(d.tid);
            let first = d.tid;
            s.yield_now(first);
            let d = s.pick_next(0).unwrap();
            assert_ne!(d.tid, first, "seed {seed}: yield must hand off");
            assert_ne!(d.tid, t(3), "lower band must not win a yield");
        }
    }

    #[test]
    fn higher_band_always_wins() {
        let mut s = Scheduler::new(7);
        s.register(t(1), Persona::Domestic);
        s.register(t(2), Persona::Foreign);
        s.set_priority(t(2), 50);
        for _ in 0..8 {
            let d = s.pick_next(0).unwrap();
            assert_eq!(d.tid, t(2));
            s.on_dispatch(t(2));
            s.yield_now(t(2));
        }
    }

    #[test]
    fn wake_of_higher_priority_requests_preemption() {
        let mut s = Scheduler::new(7);
        s.register(t(1), Persona::Domestic);
        s.register(t(2), Persona::Foreign);
        s.set_priority(t(2), 50);
        let d = s.pick_next(0).unwrap();
        assert_eq!(d.tid, t(2));
        s.on_dispatch(t(2));
        s.on_block(t(2));
        let d = s.pick_next(0).unwrap();
        assert_eq!(d.tid, t(1));
        s.on_dispatch(t(1));
        assert!(!s.resched_pending());
        assert!(s.on_wake(t(2), Some(t(1))));
        assert!(s.take_resched());
        assert_eq!(s.pick_next(0).unwrap().tid, t(2));
    }

    #[test]
    fn wake_of_equal_priority_does_not_preempt() {
        let mut s = Scheduler::new(7);
        s.register(t(1), Persona::Domestic);
        s.register(t(2), Persona::Domestic);
        s.on_dispatch(t(1));
        s.on_block(t(2));
        assert!(!s.on_wake(t(2), Some(t(1))));
        assert!(!s.resched_pending());
    }

    #[test]
    fn quantum_expiry_demotes_and_requests_resched() {
        let mut s = Scheduler::new(7);
        s.register(t(1), Persona::Domestic);
        s.on_dispatch(t(1));
        assert!(!s.charge(t(1), QUANTUM_NS / 2, 0));
        assert!(!s.resched_pending());
        assert!(s.charge(t(1), QUANTUM_NS / 2, 0));
        assert!(s.take_resched());
        let (base, eff) = s.priority(t(1)).unwrap();
        assert_eq!(base, BASEPRI_DEFAULT);
        assert_eq!(eff, BASEPRI_DEFAULT - DEMOTE_STEP);
    }

    #[test]
    fn fixed_policy_is_never_demoted() {
        let mut s = Scheduler::new(7);
        s.register(t(1), Persona::Foreign);
        s.set_policy(t(1), SchedPolicy::Fixed);
        s.on_dispatch(t(1));
        assert!(s.charge(t(1), QUANTUM_NS, 0));
        let (_, eff) = s.priority(t(1)).unwrap();
        assert_eq!(eff, BASEPRI_DEFAULT);
    }

    #[test]
    fn depress_and_dispatch_restores_priority() {
        let mut s = Scheduler::new(7);
        s.register(t(1), Persona::Foreign);
        s.register(t(2), Persona::Domestic);
        s.on_dispatch(t(1));
        s.depress(t(1));
        assert!(s.take_resched());
        let (_, eff) = s.priority(t(1)).unwrap();
        assert_eq!(eff, DEPRESSPRI);
        // The depressed thread loses to the default-band thread.
        let d = s.pick_next(0).unwrap();
        assert_eq!(d.tid, t(2));
        s.on_dispatch(t(2));
        s.on_block(t(2));
        // Once dispatched again, the depression lifts.
        let d = s.pick_next(0).unwrap();
        assert_eq!(d.tid, t(1));
        s.on_dispatch(t(1));
        let (_, eff) = s.priority(t(1)).unwrap();
        assert_eq!(eff, BASEPRI_DEFAULT);
    }

    #[test]
    fn undepress_aborts_early() {
        let mut s = Scheduler::new(7);
        s.register(t(1), Persona::Foreign);
        s.depress(t(1));
        s.undepress(t(1));
        let (_, eff) = s.priority(t(1)).unwrap();
        assert_eq!(eff, BASEPRI_DEFAULT);
    }

    #[test]
    fn starved_low_priority_thread_eventually_runs() {
        // A priority-10 thread competes against a priority-50 hog that
        // always stays runnable. The periodic boost must give the low
        // thread a dispatch within a bounded amount of virtual time.
        let mut s = Scheduler::new(7);
        s.register(t(1), Persona::Domestic);
        s.set_priority(t(1), 10);
        s.register(t(2), Persona::Foreign);
        s.set_priority(t(2), 50);
        let mut now = 0u64;
        let mut low_ran = false;
        for _ in 0..64 {
            let d = s.pick_next(now).unwrap();
            s.on_dispatch(d.tid);
            if d.tid == t(1) {
                low_ran = true;
                break;
            }
            // The hog burns its full quantum, then is requeued.
            s.charge(d.tid, QUANTUM_NS, now);
            now += QUANTUM_NS;
            s.requeue(d.tid);
        }
        assert!(low_ran, "priority-10 thread starved past the boost");
        assert!(now <= 2 * BOOST_PERIOD_NS, "took too long: {now}ns");
    }

    #[test]
    fn identity_survives_and_is_separate_from_policy() {
        let mut s = Scheduler::new(7);
        s.register(t(1), Persona::Domestic);
        s.set_identity(t(1), Persona::Foreign);
        assert_eq!(s.identity(t(1)), Some(Persona::Foreign));
        s.set_priority(t(1), 40);
        s.set_policy(t(1), SchedPolicy::Fixed);
        assert_eq!(s.identity(t(1)), Some(Persona::Foreign));
    }

    #[test]
    fn remove_is_idempotent_and_purges_queues() {
        let mut s = Scheduler::new(7);
        s.register(t(1), Persona::Domestic);
        s.remove(t(1));
        s.remove(t(1));
        assert!(!s.contains(t(1)));
        assert_eq!(s.queued_depth(), 0);
        assert!(s.pick_next(0).is_none());
    }

    #[test]
    fn block_then_wake_requeues_once() {
        let mut s = Scheduler::new(7);
        s.register(t(1), Persona::Domestic);
        s.on_block(t(1));
        assert_eq!(s.queued_depth(), 0);
        assert!(!s.on_wake(t(1), None));
        assert_eq!(s.queued_depth(), 1);
        // Double wake is a no-op.
        assert!(!s.on_wake(t(1), None));
        assert_eq!(s.queued_depth(), 1);
    }
}
