//! Chrome `trace_event` JSON export.
//!
//! Produces the JSON Array Format understood by `chrome://tracing`,
//! Perfetto, and Speedscope: span begin/end pairs become `"B"`/`"E"`
//! events, everything else becomes an instant (`"i"`) event. Timestamps
//! are virtual microseconds (the format's unit), so the viewer's
//! timeline *is* the virtual clock.
//!
//! JSON is emitted by hand — the workspace is offline and needs no serde
//! for a format this small.

use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent};
use crate::sink::TraceSnapshot;

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Timestamp in (fractional) microseconds, the trace_event unit.
fn ts_us(ts_ns: u64) -> f64 {
    ts_ns as f64 / 1000.0
}

fn phase(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::SpanBegin { .. }
        | EventKind::SyscallEnter { .. }
        | EventKind::DiplomatEnter { .. } => "B",
        EventKind::SpanEnd { .. }
        | EventKind::SyscallExit { .. }
        | EventKind::DiplomatExit { .. } => "E",
        _ => "i",
    }
}

fn args_json(kind: &EventKind) -> String {
    let mut out = String::from("{");
    let field = |out: &mut String, k: &str, v: String| {
        if out.len() > 1 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":{v}");
    };
    match kind {
        EventKind::SyscallEnter { nr, translated } => {
            field(&mut out, "nr", nr.to_string());
            if let Some(t) = translated {
                field(&mut out, "translated", t.to_string());
            }
        }
        EventKind::SyscallExit { nr, ret } => {
            field(&mut out, "nr", nr.to_string());
            field(&mut out, "ret", ret.to_string());
        }
        EventKind::SignalDeliver {
            signal,
            frame_bytes,
        } => {
            field(&mut out, "signal", signal.to_string());
            field(&mut out, "frame_bytes", frame_bytes.to_string());
        }
        EventKind::SignalTranslate { from, to } => {
            field(&mut out, "from", from.to_string());
            field(&mut out, "to", to.to_string());
        }
        EventKind::PersonaSwitch { to_foreign } => {
            field(&mut out, "to_foreign", to_foreign.to_string());
        }
        EventKind::MachMsgSend { msg_id, bytes }
        | EventKind::MachMsgReceive { msg_id, bytes } => {
            field(&mut out, "msg_id", msg_id.to_string());
            field(&mut out, "bytes", bytes.to_string());
        }
        EventKind::DiplomatExit { ok, .. } => {
            field(&mut out, "ok", ok.to_string());
        }
        EventKind::VfsOp { bytes, .. } => {
            field(&mut out, "bytes", bytes.to_string());
        }
        EventKind::PageTableCopy { ptes } => {
            field(&mut out, "ptes", ptes.to_string());
        }
        EventKind::DyldMap { libraries } => {
            field(&mut out, "libraries", libraries.to_string());
        }
        EventKind::DyldHandlers { handlers } => {
            field(&mut out, "handlers", handlers.to_string());
        }
        EventKind::GpuFenceWait { fence, buggy } => {
            field(&mut out, "fence", fence.to_string());
            field(&mut out, "buggy", buggy.to_string());
        }
        EventKind::ContextSwitch { from, to } => {
            field(&mut out, "from", from.to_string());
            field(&mut out, "to", to.to_string());
        }
        EventKind::FaultInjected { seq, .. } => {
            field(&mut out, "seq", seq.to_string());
        }
        EventKind::DiplomatEnter { .. }
        | EventKind::SpanBegin { .. }
        | EventKind::SpanEnd { .. }
        | EventKind::Mark { .. }
        | EventKind::Recovery { .. } => {}
    }
    out.push('}');
    out
}

fn event_json(out: &mut String, e: &TraceEvent) {
    out.push_str("{\"name\":\"");
    escape_into(out, &e.kind.name());
    out.push_str("\",\"cat\":\"");
    out.push_str(e.kind.category());
    let _ = write!(
        out,
        "\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":{},\"tid\":{}",
        phase(&e.kind),
        ts_us(e.ctx.ts_ns),
        e.ctx.pid,
        e.ctx.tid,
    );
    if phase(&e.kind) == "i" {
        // Instant events need a scope; thread scope keeps them on the
        // emitting track.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":");
    out.push_str(&args_json(&e.kind));
    out.push('}');
}

/// Renders a snapshot as a Chrome trace_event JSON array document.
pub fn export(snapshot: &TraceSnapshot) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",");
    let _ = write!(
        out,
        "\"otherData\":{{\"dropped_events\":\"{}\"}},",
        snapshot.dropped,
    );
    out.push_str("\"traceEvents\":[");
    for (i, e) in snapshot.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        event_json(&mut out, e);
    }
    out.push_str("\n]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceContext;
    use crate::sink::TraceSink;

    fn sample() -> TraceSnapshot {
        let sink = TraceSink::enabled(64);
        let ctx = TraceContext {
            ts_ns: 1500,
            pid: 1,
            tid: 2,
            foreign: true,
        };
        sink.record(
            ctx,
            EventKind::SyscallEnter {
                nr: 4,
                translated: Some(397),
            },
        );
        sink.record(
            TraceContext { ts_ns: 2500, ..ctx },
            EventKind::SyscallExit { nr: 4, ret: 13 },
        );
        sink.record(
            TraceContext { ts_ns: 2600, ..ctx },
            EventKind::Mark {
                label: "odd \"label\"\n".into(),
            },
        );
        sink.snapshot().unwrap()
    }

    #[test]
    fn exports_begin_end_pairs_with_args() {
        let json = export(&sample());
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"ph\":\"E\""), "{json}");
        assert!(json.contains("\"translated\":397"), "{json}");
        assert!(json.contains("\"ret\":13"), "{json}");
        assert!(json.contains("\"ts\":1.500"), "{json}");
    }

    #[test]
    fn escapes_quotes_and_newlines() {
        let json = export(&sample());
        assert!(json.contains("odd \\\"label\\\"\\n"), "{json}");
    }

    #[test]
    fn instants_carry_scope() {
        let json = export(&sample());
        assert!(json.contains("\"s\":\"t\""), "{json}");
    }

    #[test]
    fn structure_is_balanced() {
        // Cheap well-formedness proxy without a JSON parser: balanced
        // braces/brackets outside strings.
        let json = export(&sample());
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
