//! Typed trace events.

use std::borrow::Cow;
use std::fmt;

use cider_abi::ids::{Pid, Tid};

/// Where and when an event happened: the fields every event carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Virtual-clock timestamp, nanoseconds since boot.
    pub ts_ns: u64,
    /// Process id (0 when no process context applies).
    pub pid: u32,
    /// Thread id (0 when no thread context applies).
    pub tid: u32,
    /// Whether the thread was executing in the foreign (iOS) persona.
    pub foreign: bool,
}

impl TraceContext {
    /// A context with no process/thread attribution (kernel-global
    /// events like GPU retirement).
    pub fn kernel(ts_ns: u64) -> TraceContext {
        TraceContext {
            ts_ns,
            pid: 0,
            tid: 0,
            foreign: false,
        }
    }

    /// A context for a thread.
    pub fn thread(
        ts_ns: u64,
        pid: Pid,
        tid: Tid,
        foreign: bool,
    ) -> TraceContext {
        TraceContext {
            ts_ns,
            pid: pid.0,
            tid: tid.0,
            foreign,
        }
    }

    /// Persona label for exporters.
    pub fn persona_label(&self) -> &'static str {
        if self.foreign {
            "foreign"
        } else {
            "domestic"
        }
    }
}

/// What happened. Every mechanism the paper's evaluation names has a
/// typed event so regressions decompose into causes.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A trap entered the kernel. `translated` carries the domestic
    /// syscall number when the XNU personality renumbered the call.
    SyscallEnter {
        /// Raw (persona-native) syscall number.
        nr: i64,
        /// Domestic number after translation, when any.
        translated: Option<i64>,
    },
    /// The trap returned to user space.
    SyscallExit {
        /// Raw (persona-native) syscall number.
        nr: i64,
        /// Result register value.
        ret: i64,
    },
    /// A signal reached a user handler (after any translation).
    SignalDeliver {
        /// Persona-native signal number delivered.
        signal: i32,
        /// Bytes of sigframe built on the user stack.
        frame_bytes: u64,
    },
    /// A signal number was translated between personas.
    SignalTranslate {
        /// Internal (Linux) number.
        from: i32,
        /// Persona-native number.
        to: i32,
    },
    /// `set_persona` switched a thread's kernel ABI.
    PersonaSwitch {
        /// Whether the thread left the foreign persona (true) or
        /// entered it (false).
        to_foreign: bool,
    },
    /// A Mach IPC message was queued on a port.
    MachMsgSend {
        /// Message id.
        msg_id: i32,
        /// Total payload bytes (body + out-of-line).
        bytes: u64,
    },
    /// A Mach IPC message was dequeued.
    MachMsgReceive {
        /// Message id.
        msg_id: i32,
        /// Total payload bytes.
        bytes: u64,
    },
    /// A diplomatic function call began arbitration.
    DiplomatEnter {
        /// Foreign symbol being diplomatically replaced.
        symbol: Cow<'static, str>,
    },
    /// A diplomatic function call completed.
    DiplomatExit {
        /// Foreign symbol.
        symbol: Cow<'static, str>,
        /// Whether the domestic function succeeded.
        ok: bool,
    },
    /// A VFS operation (open/read/write/unlink/…).
    VfsOp {
        /// Operation name.
        op: &'static str,
        /// Bytes moved, for data ops.
        bytes: u64,
    },
    /// `fork` duplicated an address space's page tables.
    PageTableCopy {
        /// PTEs copied.
        ptes: u64,
    },
    /// dyld mapped a library into a foreign process.
    DyldMap {
        /// Libraries mapped.
        libraries: u64,
    },
    /// dyld ran registered image handlers (the fork/exit handler loops
    /// behind the paper's 14x fork+exit figure).
    DyldHandlers {
        /// Handlers invoked.
        handlers: u64,
    },
    /// The scheduler switched the CPU to another thread.
    ContextSwitch {
        /// Outgoing thread id (0 when no thread was running).
        from: u32,
        /// Incoming thread id.
        to: u32,
    },
    /// A thread waited on a GPU fence.
    GpuFenceWait {
        /// Fence id.
        fence: u64,
        /// Whether the buggy (missed-wakeup) path was taken.
        buggy: bool,
    },
    /// A span opened (see [`crate::span::Span`]).
    SpanBegin {
        /// Span label.
        label: Cow<'static, str>,
    },
    /// A span closed.
    SpanEnd {
        /// Span label.
        label: Cow<'static, str>,
    },
    /// A free-form marker.
    Mark {
        /// Marker label.
        label: Cow<'static, str>,
    },
    /// The fault layer injected a failure at a named site.
    FaultInjected {
        /// Site name (stable snake_case, e.g. `"vfs_read"`).
        site: &'static str,
        /// Global 1-based injection sequence number.
        seq: u64,
    },
    /// A supervisor/watchdog/fallback recovered from injected faults.
    Recovery {
        /// Action label, e.g. `"launchd/respawn(notifyd)"`.
        action: Cow<'static, str>,
    },
}

impl EventKind {
    /// Short category name for exporters and filtering.
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::SyscallEnter { .. } | EventKind::SyscallExit { .. } => {
                "syscall"
            }
            EventKind::SignalDeliver { .. }
            | EventKind::SignalTranslate { .. } => "signal",
            EventKind::PersonaSwitch { .. } => "persona",
            EventKind::MachMsgSend { .. }
            | EventKind::MachMsgReceive { .. } => "mach_ipc",
            EventKind::DiplomatEnter { .. }
            | EventKind::DiplomatExit { .. } => "diplomat",
            EventKind::VfsOp { .. } => "vfs",
            EventKind::PageTableCopy { .. } => "mm",
            EventKind::DyldMap { .. } | EventKind::DyldHandlers { .. } => {
                "dyld"
            }
            EventKind::ContextSwitch { .. } => "sched",
            EventKind::GpuFenceWait { .. } => "gpu",
            EventKind::SpanBegin { .. } | EventKind::SpanEnd { .. } => "span",
            EventKind::Mark { .. } => "mark",
            EventKind::FaultInjected { .. } => "fault",
            EventKind::Recovery { .. } => "recovery",
        }
    }

    /// Display name for exporters.
    pub fn name(&self) -> Cow<'static, str> {
        match self {
            EventKind::SyscallEnter { nr, .. } => {
                Cow::Owned(format!("syscall_enter({nr})"))
            }
            EventKind::SyscallExit { nr, .. } => {
                Cow::Owned(format!("syscall_exit({nr})"))
            }
            EventKind::SignalDeliver { signal, .. } => {
                Cow::Owned(format!("signal_deliver({signal})"))
            }
            EventKind::SignalTranslate { from, to } => {
                Cow::Owned(format!("signal_translate({from}->{to})"))
            }
            EventKind::PersonaSwitch { to_foreign } => {
                Cow::Borrowed(if *to_foreign {
                    "set_persona(foreign)"
                } else {
                    "set_persona(domestic)"
                })
            }
            EventKind::MachMsgSend { .. } => Cow::Borrowed("mach_msg_send"),
            EventKind::MachMsgReceive { .. } => {
                Cow::Borrowed("mach_msg_receive")
            }
            EventKind::DiplomatEnter { symbol } => {
                Cow::Owned(format!("diplomat({symbol})"))
            }
            EventKind::DiplomatExit { symbol, .. } => {
                Cow::Owned(format!("diplomat_ret({symbol})"))
            }
            EventKind::VfsOp { op, .. } => Cow::Borrowed(op),
            EventKind::PageTableCopy { .. } => Cow::Borrowed("pt_copy"),
            EventKind::DyldMap { .. } => Cow::Borrowed("dyld_map"),
            EventKind::DyldHandlers { .. } => Cow::Borrowed("dyld_handlers"),
            EventKind::ContextSwitch { from, to } => {
                Cow::Owned(format!("ctx_switch({from}->{to})"))
            }
            EventKind::GpuFenceWait { .. } => Cow::Borrowed("fence_wait"),
            EventKind::SpanBegin { label }
            | EventKind::SpanEnd { label }
            | EventKind::Mark { label } => label.clone(),
            EventKind::FaultInjected { site, .. } => {
                Cow::Owned(format!("fault({site})"))
            }
            EventKind::Recovery { action } => action.clone(),
        }
    }
}

/// One recorded event: a context plus a kind.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When/where.
    pub ctx: TraceContext,
    /// What.
    pub kind: EventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}ns p{} t{} {}] {}",
            self.ctx.ts_ns,
            self.ctx.pid,
            self.ctx.tid,
            self.ctx.persona_label(),
            self.kind.name(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_cover_every_mechanism() {
        let cases = [
            (
                EventKind::SyscallEnter {
                    nr: 1,
                    translated: Some(2),
                },
                "syscall",
            ),
            (
                EventKind::SignalDeliver {
                    signal: 10,
                    frame_bytes: 736,
                },
                "signal",
            ),
            (EventKind::PersonaSwitch { to_foreign: true }, "persona"),
            (
                EventKind::MachMsgSend {
                    msg_id: 1,
                    bytes: 4,
                },
                "mach_ipc",
            ),
            (
                EventKind::DiplomatEnter {
                    symbol: "glClear".into(),
                },
                "diplomat",
            ),
            (
                EventKind::VfsOp {
                    op: "open",
                    bytes: 0,
                },
                "vfs",
            ),
            (EventKind::PageTableCopy { ptes: 9 }, "mm"),
            (EventKind::ContextSwitch { from: 100, to: 101 }, "sched"),
            (EventKind::DyldMap { libraries: 115 }, "dyld"),
            (
                EventKind::GpuFenceWait {
                    fence: 3,
                    buggy: true,
                },
                "gpu",
            ),
            (
                EventKind::FaultInjected {
                    site: "vfs_read",
                    seq: 1,
                },
                "fault",
            ),
            (
                EventKind::Recovery {
                    action: "launchd/respawn(notifyd)".into(),
                },
                "recovery",
            ),
        ];
        for (kind, cat) in cases {
            assert_eq!(kind.category(), cat, "{kind:?}");
        }
    }

    #[test]
    fn display_is_readable() {
        let e = TraceEvent {
            ctx: TraceContext {
                ts_ns: 1500,
                pid: 2,
                tid: 3,
                foreign: true,
            },
            kind: EventKind::VfsOp {
                op: "open",
                bytes: 0,
            },
        };
        let s = e.to_string();
        assert!(s.contains("p2"), "{s}");
        assert!(s.contains("foreign"), "{s}");
        assert!(s.contains("open"), "{s}");
    }
}
