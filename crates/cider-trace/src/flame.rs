//! Flamegraph folded-stack export.
//!
//! Folds the begin/end events in a trace into the `a;b;c <count>` line
//! format consumed by `flamegraph.pl` and Speedscope. The "count" is
//! **virtual nanoseconds of self time**: each frame's duration minus the
//! time spent in its children, so the flamegraph's widths sum exactly to
//! the traced virtual time per thread.
//!
//! Stacks are tracked per `(pid, tid)` and rooted at
//! `pid<P>/tid<T>/<persona>`, so one export covers every simulated
//! thread without interleaving their frames.

use std::collections::BTreeMap;

use crate::event::{EventKind, TraceEvent};
use crate::sink::TraceSnapshot;

/// Whether an event opens a frame, and under what label.
fn open_label(kind: &EventKind) -> Option<String> {
    match kind {
        EventKind::SpanBegin { label } => Some(label.to_string()),
        EventKind::SyscallEnter { nr, .. } => Some(format!("syscall_{nr}")),
        EventKind::DiplomatEnter { symbol } => {
            Some(format!("diplomat:{symbol}"))
        }
        _ => None,
    }
}

/// Whether an event closes a frame, and under what label.
fn close_label(kind: &EventKind) -> Option<String> {
    match kind {
        EventKind::SpanEnd { label } => Some(label.to_string()),
        EventKind::SyscallExit { nr, .. } => Some(format!("syscall_{nr}")),
        EventKind::DiplomatExit { symbol, .. } => {
            Some(format!("diplomat:{symbol}"))
        }
        _ => None,
    }
}

struct Frame {
    label: String,
    start_ns: u64,
    child_ns: u64,
}

#[derive(Default)]
struct ThreadStack {
    root: String,
    frames: Vec<Frame>,
}

/// Folds a snapshot's events into flamegraph folded-stack lines.
///
/// Unclosed frames at the end of the trace are dropped (their time is
/// unknowable); unmatched ends are ignored. Lines are emitted in sorted
/// order so output is deterministic.
pub fn export(snapshot: &TraceSnapshot) -> String {
    let mut stacks: BTreeMap<(u32, u32), ThreadStack> = BTreeMap::new();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();

    for event in &snapshot.events {
        let TraceEvent { ctx, kind } = event;
        let key = (ctx.pid, ctx.tid);
        if let Some(label) = open_label(kind) {
            let stack = stacks.entry(key).or_default();
            if stack.frames.is_empty() {
                stack.root = format!(
                    "pid{}/tid{}/{}",
                    ctx.pid,
                    ctx.tid,
                    ctx.persona_label(),
                );
            }
            stack.frames.push(Frame {
                label,
                start_ns: ctx.ts_ns,
                child_ns: 0,
            });
        } else if let Some(label) = close_label(kind) {
            let Some(stack) = stacks.get_mut(&key) else {
                continue;
            };
            // Pop to the matching open frame; mismatches (a lost begin
            // after ring wraparound) discard the stray end.
            if stack.frames.last().map(|f| &f.label) != Some(&label) {
                continue;
            }
            let frame = stack.frames.pop().expect("matched above");
            let total = ctx.ts_ns.saturating_sub(frame.start_ns);
            let self_ns = total.saturating_sub(frame.child_ns);
            if let Some(parent) = stack.frames.last_mut() {
                parent.child_ns += total;
            }
            let mut path = stack.root.clone();
            for f in &stack.frames {
                path.push(';');
                path.push_str(&f.label);
            }
            path.push(';');
            path.push_str(&frame.label);
            *folded.entry(path).or_insert(0) += self_ns;
        }
    }

    let mut out = String::new();
    for (path, ns) in &folded {
        out.push_str(path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceContext;
    use crate::sink::TraceSink;

    fn ctx(ts: u64) -> TraceContext {
        TraceContext {
            ts_ns: ts,
            pid: 7,
            tid: 9,
            foreign: true,
        }
    }

    #[test]
    fn nested_spans_split_self_time() {
        let sink = TraceSink::enabled(64);
        let outer = sink.span("outer", ctx(0));
        let inner = sink.span("inner", ctx(100));
        inner.end(400);
        outer.end(1000);
        let folded = export(&sink.snapshot().unwrap());
        assert!(
            folded.contains("pid7/tid9/foreign;outer;inner 300"),
            "{folded}"
        );
        // Outer's self time excludes inner's 300ns.
        assert!(folded.contains("pid7/tid9/foreign;outer 700"), "{folded}");
    }

    #[test]
    fn repeated_stacks_accumulate() {
        let sink = TraceSink::enabled(64);
        for i in 0..3u64 {
            let s = sink.span("op", ctx(i * 100));
            s.end(i * 100 + 10);
        }
        let folded = export(&sink.snapshot().unwrap());
        assert!(folded.contains("pid7/tid9/foreign;op 30"), "{folded}");
        assert_eq!(folded.lines().count(), 1);
    }

    #[test]
    fn syscall_events_fold_too() {
        let sink = TraceSink::enabled(64);
        sink.record(
            ctx(0),
            EventKind::SyscallEnter {
                nr: 4,
                translated: None,
            },
        );
        sink.record(ctx(950), EventKind::SyscallExit { nr: 4, ret: 0 });
        let folded = export(&sink.snapshot().unwrap());
        assert!(
            folded.contains("pid7/tid9/foreign;syscall_4 950"),
            "{folded}"
        );
    }

    #[test]
    fn unmatched_ends_are_ignored() {
        let sink = TraceSink::enabled(64);
        sink.record(ctx(10), EventKind::SyscallExit { nr: 4, ret: 0 });
        let span = sink.span("never_closed", ctx(20));
        let folded = export(&sink.snapshot().unwrap());
        assert!(folded.is_empty(), "{folded}");
        span.end(30);
    }
}
