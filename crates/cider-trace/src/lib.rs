//! Deterministic observability for the Cider simulator.
//!
//! The paper's evaluation (§6.2–6.3) attributes overheads to specific
//! kernel mechanisms — the persona check on syscall entry, the larger XNU
//! sigframe, the dyld handler loops, the two `set_persona` traps inside
//! every diplomatic function. The simulator reproduces those costs on its
//! virtual clock, and this crate makes them *visible*: a ktrace/ftrace
//! style event trace and a metrics registry, both stamped with virtual
//! time, plus exporters (Chrome `trace_event` JSON, flamegraph folded
//! stacks) for offline inspection.
//!
//! The design invariant is **zero virtual cost**: recording an event
//! never advances the virtual clock, never blocks a thread, and never
//! changes scheduling, so every benchmark figure is bit-identical with
//! tracing on or off. A [`TraceSink`] is a cheap handle that is inert
//! when disabled; instrumentation sites call it unconditionally.
//!
//! # Example
//!
//! ```
//! use cider_trace::{EventKind, TraceContext, TraceSink};
//!
//! let sink = TraceSink::enabled(1024);
//! let ctx = TraceContext { ts_ns: 500, pid: 1, tid: 1, foreign: true };
//! sink.record(ctx, EventKind::SyscallEnter { nr: 4, translated: Some(397) });
//! sink.record(
//!     TraceContext { ts_ns: 940, ..ctx },
//!     EventKind::SyscallExit { nr: 4, ret: 0 },
//! );
//! sink.observe("syscall/foreign/write", 440);
//! assert_eq!(sink.snapshot().unwrap().events.len(), 2);
//! ```

pub mod chrome;
pub mod event;
pub mod flame;
pub mod metrics;
pub mod ring;
pub mod sink;
pub mod span;

pub use event::{EventKind, TraceContext, TraceEvent};
pub use metrics::{CounterId, Histogram, Metrics, MetricsSnapshot};
pub use ring::TraceBuffer;
pub use sink::{TraceSink, TraceSnapshot};
pub use span::Span;
