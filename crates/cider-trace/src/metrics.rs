//! Named monotonic counters and log₂-bucketed latency histograms.
//!
//! Metric names are slash-separated paths; instrumentation sites build
//! them as `"<mechanism>/<persona>/<detail>"` (e.g.
//! `"syscall/foreign/null"`), which lets reports aggregate by prefix.

use std::collections::BTreeMap;
use std::fmt;

/// Number of log₂ buckets: values up to 2⁶³ ns land in a bucket.
pub const BUCKETS: usize = 64;

/// A log₂-bucketed histogram over virtual nanoseconds.
///
/// Bucket `i` counts observations `v` with `bucket_index(v) == i`, i.e.
/// bucket 0 holds `v == 0` and `v == 1`, bucket 1 holds 2..=3, bucket 2
/// holds 4..=7, and so on — the classic power-of-two latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket a value lands in: `floor(log2(max(v, 1)))`.
pub fn bucket_index(value: u64) -> usize {
    63 - value.max(1).leading_zeros() as usize
}

/// Inclusive value range of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index == 0 {
        return (0, 1);
    }
    let lo = 1u64 << index;
    let hi = if index == 63 { u64::MAX } else { (lo << 1) - 1 };
    (lo, hi)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, or 0 with no data.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation, or `None` with no data.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` with no data.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Approximate quantile (0.0..=1.0): the upper bound of the bucket
    /// containing the q-th observation.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64)
            .clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bounds(i).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A compact one-line rendering of the populated buckets.
    pub fn render(&self) -> String {
        if self.count == 0 {
            return "(empty)".to_string();
        }
        let mut out = format!(
            "n={} mean={:.0}ns min={}ns max={}ns |",
            self.count,
            self.mean(),
            self.min,
            self.max,
        );
        let first = bucket_index(self.min);
        let last = bucket_index(self.max);
        for i in first..=last {
            let (lo, _) = bucket_bounds(i);
            out.push_str(&format!(" {}ns:{}", lo, self.buckets[i]));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Handle to a pre-registered counter slot.
///
/// Hot paths that charge the same counters millions of times (the
/// virtual clock) register them once with
/// [`Metrics::register_counter`] and then update through the id —
/// a direct indexed store, no by-name map walk per update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CounterId(usize);

/// The registry: counters and histograms by name.
///
/// Counter values live in a dense slot vector; the by-name map holds
/// only `name → slot`, so by-name reads behave exactly as before while
/// [`CounterId`]-based updates skip the map entirely.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    slots: Vec<u64>,
    index: BTreeMap<String, usize>,
    histograms: BTreeMap<String, Histogram>,
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Metrics) -> bool {
        // Slot numbering is an artifact of registration order; equality
        // is by (name, value), like the old by-name registry.
        self.histograms == other.histograms
            && self.index.len() == other.index.len()
            && self.index.iter().all(|(name, &slot)| {
                other.index.get(name).map(|&s| other.slots[s])
                    == Some(self.slots[slot])
            })
    }
}

impl Eq for Metrics {}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn slot_for(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.slots.len();
        self.slots.push(0);
        self.index.insert(name.to_string(), i);
        i
    }

    /// Registers a counter (creating it at zero) and returns a handle
    /// for map-free updates. Registering the same name twice returns
    /// the same id. Ids are invalidated by [`Metrics::clear`].
    pub fn register_counter(&mut self, name: &str) -> CounterId {
        CounterId(self.slot_for(name))
    }

    /// Adds to a pre-registered counter — one indexed store.
    #[inline]
    pub fn add_fast(&mut self, id: CounterId, delta: u64) {
        self.slots[id.0] += delta;
    }

    /// Increments a pre-registered counter by one.
    #[inline]
    pub fn incr_fast(&mut self, id: CounterId) {
        self.slots[id.0] += 1;
    }

    /// Reads a pre-registered counter.
    #[inline]
    pub fn counter_fast(&self, id: CounterId) -> u64 {
        self.slots[id.0]
    }

    /// Adds to a named monotonic counter, creating it at zero.
    pub fn add(&mut self, name: &str, delta: u64) {
        let i = self.slot_for(name);
        self.slots[i] += delta;
    }

    /// Increments a named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter; missing counters read zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.index.get(name).map(|&i| self.slots[i]).unwrap_or(0)
    }

    /// Records an observation in a named histogram, creating it empty.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters whose name starts with `prefix`, in name order.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.index
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, &i)| (k.as_str(), self.slots[i]))
            .collect()
    }

    /// All histograms whose name starts with `prefix`, in name order.
    pub fn histograms_with_prefix(
        &self,
        prefix: &str,
    ) -> Vec<(&str, &Histogram)> {
        self.histograms
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), v))
            .collect()
    }

    /// Immutable snapshot for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .index
                .iter()
                .map(|(k, &i)| (k.clone(), self.slots[i]))
                .collect(),
            histograms: self.histograms.clone(),
        }
    }

    /// Drops every counter and histogram. Invalidates any
    /// [`CounterId`]s handed out before the clear.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
        self.histograms.clear();
    }
}

/// A frozen copy of the registry, detached from the live sink.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Reads a counter; missing counters read zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters whose name starts with `prefix`, in name order.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
            .collect()
    }

    /// All histograms whose name starts with `prefix`, in name order.
    pub fn histograms_with_prefix(
        &self,
        prefix: &str,
    ) -> Vec<(&str, &Histogram)> {
        self.histograms
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), v))
            .collect()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter   {name:<44} {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(f, "histogram {name:<44} {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        assert_eq!(bucket_bounds(0), (0, 1));
        assert_eq!(bucket_bounds(1), (2, 3));
        assert_eq!(bucket_bounds(10), (1024, 2047));
        assert_eq!(bucket_bounds(63).1, u64::MAX);
        // Every boundary value maps into its own bucket.
        for i in 1..63 {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            assert_eq!(bucket_index(lo - 1), i - 1);
        }
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [100, 200, 400, 800] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1500);
        assert_eq!(h.mean(), 375.0);
        assert_eq!(h.min(), Some(100));
        assert_eq!(h.max(), Some(800));
        assert_eq!(h.buckets()[bucket_index(100)], 1);
        assert_eq!(h.buckets()[bucket_index(800)], 1);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q50 <= q99, "{q50} vs {q99}");
        assert!((256..=1023).contains(&q50), "{q50}");
        assert_eq!(h.quantile(1.0), Some(1000));
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1000));
    }

    #[test]
    fn registry_counters_and_prefixes() {
        let mut m = Metrics::new();
        m.incr("clock/charges");
        m.add("clock/charges", 2);
        m.incr("syscall/foreign/read");
        assert_eq!(m.counter("clock/charges"), 3);
        assert_eq!(m.counter("missing"), 0);
        let clock = m.counters_with_prefix("clock/");
        assert_eq!(clock, vec![("clock/charges", 3)]);
    }

    #[test]
    fn registered_counters_share_the_named_slot() {
        let mut m = Metrics::new();
        let id = m.register_counter("clock/charges");
        assert_eq!(m.register_counter("clock/charges"), id);
        m.incr_fast(id);
        m.add_fast(id, 4);
        m.incr("clock/charges");
        assert_eq!(m.counter_fast(id), 6);
        assert_eq!(m.counter("clock/charges"), 6);
        assert_eq!(m.snapshot().counter("clock/charges"), 6);
    }

    #[test]
    fn equality_ignores_registration_order() {
        let mut a = Metrics::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Metrics::new();
        b.add("y", 2);
        b.add("x", 1);
        assert_eq!(a, b);
        b.incr("x");
        assert_ne!(a, b);
    }

    #[test]
    fn registry_histograms() {
        let mut m = Metrics::new();
        m.observe("syscall/foreign/null", 900);
        m.observe("syscall/foreign/null", 950);
        m.observe("syscall/domestic/null", 600);
        let h = m.histogram("syscall/foreign/null").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(m.histograms_with_prefix("syscall/").len(), 2);
        let snap = m.snapshot();
        assert!(snap.to_string().contains("syscall/domestic/null"));
    }
}
