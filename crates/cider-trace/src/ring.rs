//! Fixed-capacity ring buffer of trace events.

use crate::event::TraceEvent;

/// A bounded event trace. When full, the oldest events are overwritten
/// (like `ktrace`/`ftrace` ring buffers), and the drop count records how
/// much history was lost.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    slots: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the next slot to write (wraps).
    head: usize,
    /// Events recorded over the buffer's lifetime.
    total: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity — a zero-sized trace is a disabled sink,
    /// not an empty buffer.
    pub fn new(capacity: usize) -> TraceBuffer {
        assert!(capacity > 0, "trace buffer needs capacity");
        TraceBuffer {
            slots: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            total: 0,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Events recorded over the buffer's lifetime (including dropped).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.total - self.slots.len() as u64
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn push(&mut self, event: TraceEvent) {
        self.total += 1;
        if self.slots.len() < self.capacity {
            self.slots.push(event);
        } else {
            self.slots[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Iterates retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, linear) = self.slots.split_at(self.head);
        linear.iter().chain(wrapped.iter())
    }

    /// Copies the retained events oldest-first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.iter().cloned().collect()
    }

    /// Clears all retained events and counters.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.head = 0;
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceContext};

    fn mark(ts: u64) -> TraceEvent {
        TraceEvent {
            ctx: TraceContext::kernel(ts),
            kind: EventKind::Mark {
                label: format!("m{ts}").into(),
            },
        }
    }

    fn timestamps(b: &TraceBuffer) -> Vec<u64> {
        b.iter().map(|e| e.ctx.ts_ns).collect()
    }

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut b = TraceBuffer::new(4);
        for ts in 0..4 {
            b.push(mark(ts));
        }
        assert_eq!(timestamps(&b), vec![0, 1, 2, 3]);
        assert_eq!(b.dropped(), 0);

        // Two more: 0 and 1 fall off.
        b.push(mark(4));
        b.push(mark(5));
        assert_eq!(timestamps(&b), vec![2, 3, 4, 5]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.total_recorded(), 6);
        assert_eq!(b.dropped(), 2);
    }

    #[test]
    fn wraps_many_times() {
        let mut b = TraceBuffer::new(3);
        for ts in 0..100 {
            b.push(mark(ts));
        }
        assert_eq!(timestamps(&b), vec![97, 98, 99]);
        assert_eq!(b.dropped(), 97);
    }

    #[test]
    fn exact_capacity_boundary() {
        let mut b = TraceBuffer::new(2);
        b.push(mark(10));
        assert_eq!(timestamps(&b), vec![10]);
        b.push(mark(11));
        assert_eq!(timestamps(&b), vec![10, 11]);
        b.push(mark(12));
        assert_eq!(timestamps(&b), vec![11, 12]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = TraceBuffer::new(2);
        b.push(mark(1));
        b.push(mark(2));
        b.push(mark(3));
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dropped(), 0);
        b.push(mark(9));
        assert_eq!(timestamps(&b), vec![9]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = TraceBuffer::new(0);
    }
}
