//! The [`TraceSink`] handle instrumentation sites hold.
//!
//! A sink is either *disabled* — every call is a no-op on a `None`, no
//! allocation, no interior mutability touched — or *enabled*, in which
//! case events land in a shared [`TraceBuffer`] and metrics in a shared
//! [`Metrics`] registry. Handles clone cheaply (an `Option<Arc>`), so the
//! kernel, the Cider layer, and the graphics stack can all hold one
//! without ownership gymnastics, and a traced kernel stays `Send` so
//! whole devices can be farmed out to fleet worker threads. The mutex
//! is never contended in practice — each simulated device owns its own
//! sink — so the lock is a formality the type system demands, not a
//! synchronization point.
//!
//! Nothing in this module touches the virtual clock: recording cannot
//! perturb a measurement, which is the subsystem's core invariant.

use std::borrow::Cow;
use std::sync::{Arc, Mutex};

use crate::event::{EventKind, TraceContext, TraceEvent};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::ring::TraceBuffer;
use crate::span::Span;

/// Default event capacity when callers don't choose one.
pub const DEFAULT_CAPACITY: usize = 64 * 1024;

#[derive(Debug)]
struct TraceState {
    buffer: TraceBuffer,
    metrics: Metrics,
}

/// A cheap, cloneable tracing handle; inert when disabled.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    state: Option<Arc<Mutex<TraceState>>>,
}

/// A frozen copy of everything a sink collected.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wraparound.
    pub dropped: u64,
    /// Counter and histogram values.
    pub metrics: MetricsSnapshot,
}

impl TraceSink {
    /// The inert sink: every operation is a no-op.
    pub fn disabled() -> TraceSink {
        TraceSink { state: None }
    }

    /// An active sink retaining up to `capacity` events.
    pub fn enabled(capacity: usize) -> TraceSink {
        TraceSink {
            state: Some(Arc::new(Mutex::new(TraceState {
                buffer: TraceBuffer::new(capacity),
                metrics: Metrics::new(),
            }))),
        }
    }

    /// An active sink with the default capacity.
    pub fn enabled_default() -> TraceSink {
        TraceSink::enabled(DEFAULT_CAPACITY)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Records one event.
    pub fn record(&self, ctx: TraceContext, kind: EventKind) {
        if let Some(state) = &self.state {
            state.lock().unwrap().buffer.push(TraceEvent { ctx, kind });
        }
    }

    /// Opens a span labelled `label` at `ctx`.
    pub fn span(
        &self,
        label: impl Into<Cow<'static, str>>,
        ctx: TraceContext,
    ) -> Span {
        Span::open(self, label.into(), ctx)
    }

    /// Adds to a named counter.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(state) = &self.state {
            state.lock().unwrap().metrics.add(name, delta);
        }
    }

    /// Increments a named counter.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Records a histogram observation.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(state) = &self.state {
            state.lock().unwrap().metrics.observe(name, value);
        }
    }

    /// Reads a counter (0 when disabled or absent).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.state {
            Some(state) => state.lock().unwrap().metrics.counter(name),
            None => 0,
        }
    }

    /// Runs a closure against the live metrics registry, when enabled.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&Metrics) -> R) -> Option<R> {
        self.state.as_ref().map(|s| f(&s.lock().unwrap().metrics))
    }

    /// Snapshots everything collected so far (`None` when disabled).
    pub fn snapshot(&self) -> Option<TraceSnapshot> {
        self.state.as_ref().map(|state| {
            let state = state.lock().unwrap();
            TraceSnapshot {
                events: state.buffer.to_vec(),
                dropped: state.buffer.dropped(),
                metrics: state.metrics.snapshot(),
            }
        })
    }

    /// Clears collected events and metrics, keeping the sink enabled.
    pub fn clear(&self) {
        if let Some(state) = &self.state {
            let mut state = state.lock().unwrap();
            state.buffer.clear();
            state.metrics.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert_and_cheap() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.record(
            TraceContext::kernel(1),
            EventKind::Mark { label: "x".into() },
        );
        sink.incr("c");
        sink.observe("h", 5);
        assert_eq!(sink.counter("c"), 0);
        assert!(sink.snapshot().is_none());
        assert!(sink.with_metrics(|_| ()).is_none());
    }

    #[test]
    fn enabled_sink_collects_events_and_metrics() {
        let sink = TraceSink::enabled(8);
        assert!(sink.is_enabled());
        sink.record(
            TraceContext::kernel(10),
            EventKind::Mark { label: "a".into() },
        );
        sink.incr("clock/charges");
        sink.add("clock/charges", 4);
        sink.observe("lat", 128);
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.metrics.counters["clock/charges"], 5);
        assert_eq!(snap.metrics.histograms["lat"].count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let sink = TraceSink::enabled(8);
        let other = sink.clone();
        other.incr("shared");
        assert_eq!(sink.counter("shared"), 1);
    }

    #[test]
    fn clear_keeps_sink_enabled() {
        let sink = TraceSink::enabled(4);
        sink.incr("c");
        for i in 0..9 {
            sink.record(
                TraceContext::kernel(i),
                EventKind::Mark { label: "m".into() },
            );
        }
        sink.clear();
        assert!(sink.is_enabled());
        let snap = sink.snapshot().unwrap();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.metrics.counters.len(), 0);
    }
}
