//! Spans: paired begin/end events that also feed latency histograms.
//!
//! The simulator is single-threaded and its clock is explicit, so a span
//! does not read a clock on drop; the instrumentation site supplies the
//! end timestamp. A [`Span`] that is dropped without [`Span::end`]
//! records nothing further — begin without end is visible in the trace,
//! which is itself a useful signal (a path that never returned).

use std::borrow::Cow;

use crate::event::{EventKind, TraceContext};
use crate::sink::TraceSink;

/// An open span. Create with [`TraceSink::span`]; close with
/// [`Span::end`], passing the virtual time at exit.
#[must_use = "a span records its duration only when ended"]
#[derive(Debug)]
pub struct Span {
    sink: TraceSink,
    label: Cow<'static, str>,
    ctx: TraceContext,
}

impl Span {
    pub(crate) fn open(
        sink: &TraceSink,
        label: Cow<'static, str>,
        ctx: TraceContext,
    ) -> Span {
        sink.record(
            ctx,
            EventKind::SpanBegin {
                label: label.clone(),
            },
        );
        Span {
            sink: sink.clone(),
            label,
            ctx,
        }
    }

    /// Virtual time at which the span opened.
    pub fn start_ns(&self) -> u64 {
        self.ctx.ts_ns
    }

    /// The span's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Closes the span at `end_ns`, emitting the end event and recording
    /// the duration in the histogram named by the label.
    pub fn end(self, end_ns: u64) {
        let dur = end_ns.saturating_sub(self.ctx.ts_ns);
        self.sink.record(
            TraceContext {
                ts_ns: end_ns,
                ..self.ctx
            },
            EventKind::SpanEnd {
                label: self.label.clone(),
            },
        );
        self.sink.observe(&self.label, dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_emits_pair_and_histogram() {
        let sink = TraceSink::enabled(16);
        let ctx = TraceContext {
            ts_ns: 100,
            pid: 1,
            tid: 2,
            foreign: true,
        };
        let span = sink.span("syscall/foreign/null", ctx);
        assert_eq!(span.start_ns(), 100);
        span.end(1000);
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.events.len(), 2);
        assert!(matches!(snap.events[0].kind, EventKind::SpanBegin { .. }));
        assert!(matches!(snap.events[1].kind, EventKind::SpanEnd { .. }));
        assert_eq!(snap.events[1].ctx.ts_ns, 1000);
        let h = snap.metrics.histograms.get("syscall/foreign/null").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(900));
    }

    #[test]
    fn disabled_sink_spans_are_inert() {
        let sink = TraceSink::disabled();
        let span = sink.span("x", TraceContext::kernel(5));
        span.end(9);
        assert!(sink.snapshot().is_none());
    }

    #[test]
    fn clock_going_nowhere_records_zero() {
        let sink = TraceSink::enabled(16);
        let span = sink.span("z", TraceContext::kernel(50));
        span.end(50);
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.metrics.histograms.get("z").unwrap().max(), Some(0));
    }
}
