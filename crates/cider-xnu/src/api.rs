//! The foreign kernel's view of its host: the "external symbols" that
//! XNU-derived code expects to link against.
//!
//! Everything in this crate is written **only** against
//! [`ForeignKernelApi`] — never against the domestic kernel directly.
//! This is the reproduction's equivalent of the paper's duct-tape
//! discipline: "code in the foreign zone cannot access symbols in the
//! domestic zone" (§4.2). The duct-tape crate supplies the one
//! implementation of this trait, translating each foreign kernel API
//! (locking, zone allocation, thread block/wakeup, time) onto domestic
//! kernel primitives.

use std::fmt;

/// Opaque handle to a mutex lock (`lck_mtx_t *`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LckMtx(pub u64);

/// Opaque handle to a spin lock (`lck_spin_t *`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LckSpin(pub u64);

/// Handle to an allocation zone (`zone_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ZoneHandle(pub u32);

/// The foreign kernel's notion of a thread (`thread_t`). The duct-tape
/// adapter maps these to domestic `Tid`s.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct ForeignThread(pub u64);

/// An XNU wait event (`event_t`) — an opaque address threads sleep on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event(pub u64);

/// Result of `thread_block`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitResult {
    /// The thread was woken by an event.
    Awakened,
    /// The simulator cannot suspend the host thread; the caller must
    /// return a "would block" status and be retried after the wakeup.
    /// (XNU's `THREAD_WAITING` continuation style, flattened.)
    Pending,
    /// The wait was interrupted.
    Interrupted,
}

/// Foreign kernel services, as XNU source expects them.
///
/// Method names deliberately mirror the XNU symbols the paper's duct-tape
/// layer remaps (`lck_mtx_lock`, `zalloc`, `thread_wakeup`, ...).
pub trait ForeignKernelApi {
    /// `lck_mtx_alloc_init`.
    fn lck_mtx_alloc(&mut self) -> LckMtx;
    /// `lck_mtx_lock`.
    fn lck_mtx_lock(&mut self, m: LckMtx);
    /// `lck_mtx_unlock`.
    fn lck_mtx_unlock(&mut self, m: LckMtx);

    /// `zinit`: creates a named allocation zone of fixed element size.
    fn zinit(&mut self, name: &str, elem_size: usize) -> ZoneHandle;
    /// `zalloc`: allocates one element, returning its address.
    fn zalloc(&mut self, zone: ZoneHandle) -> u64;
    /// `zfree`.
    fn zfree(&mut self, zone: ZoneHandle, addr: u64);

    /// `current_thread`.
    fn current_thread(&self) -> ForeignThread;
    /// `assert_wait`: declares intent to sleep on an event.
    fn assert_wait(&mut self, event: Event);
    /// `thread_block`: parks the current thread (see [`WaitResult`]).
    fn thread_block(&mut self) -> WaitResult;
    /// `thread_wakeup`: wakes all threads sleeping on `event`; returns
    /// how many were woken.
    fn thread_wakeup(&mut self, event: Event) -> usize;

    /// `mach_absolute_time` (virtual nanoseconds).
    fn mach_absolute_time(&self) -> u64;
    /// `kprintf` diagnostics.
    fn kprintf(&mut self, msg: &str);

    /// `vm_map_copyin`/`vm_map_copyout` by remap: moves `pages` whole
    /// pages of an out-of-line message region from sender to receiver by
    /// retargeting page tables instead of copying bytes. Returns `false`
    /// when the host cannot (or, under fault injection, will not) remap —
    /// the caller must fall back to an inline copy.
    fn vm_remap_pages(&mut self, pages: u64) -> bool;
    /// Inline boundary copy of `bytes` payload bytes (`copyin`/`copyout`).
    fn copyin(&mut self, bytes: u64);
}

impl fmt::Debug for dyn ForeignKernelApi + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ForeignKernelApi(thread={:?})", self.current_thread())
    }
}

/// A self-contained in-memory implementation of the foreign kernel API,
/// used by this crate's unit tests so the foreign subsystems can be
/// exercised without the domestic kernel (just as XNU code can be unit
/// tested against stub headers).
#[derive(Debug, Default)]
pub struct MockForeignKernel {
    next_lock: u64,
    next_zone: u32,
    next_addr: u64,
    /// Lock/unlock call log: (handle, locked?).
    pub lock_ops: Vec<(LckMtx, bool)>,
    /// Live zone allocations.
    pub live_allocs: usize,
    /// Current thread reported to callers.
    pub thread: ForeignThread,
    /// Threads "sleeping" per event.
    pub sleepers: std::collections::BTreeMap<u64, Vec<ForeignThread>>,
    pending_wait: Option<Event>,
    /// Virtual time.
    pub now: u64,
    /// kprintf log.
    pub log: Vec<String>,
    /// Pages moved by OOL remap.
    pub remapped_pages: u64,
    /// Bytes moved by inline copy.
    pub copied_bytes: u64,
    /// When set, `vm_remap_pages` refuses (tests the inline fallback).
    pub refuse_remap: bool,
}

impl MockForeignKernel {
    /// Fresh mock running as thread 1.
    pub fn new() -> MockForeignKernel {
        MockForeignKernel {
            thread: ForeignThread(1),
            ..Default::default()
        }
    }
}

impl ForeignKernelApi for MockForeignKernel {
    fn lck_mtx_alloc(&mut self) -> LckMtx {
        self.next_lock += 1;
        LckMtx(self.next_lock)
    }
    fn lck_mtx_lock(&mut self, m: LckMtx) {
        self.lock_ops.push((m, true));
    }
    fn lck_mtx_unlock(&mut self, m: LckMtx) {
        self.lock_ops.push((m, false));
    }
    fn zinit(&mut self, _name: &str, _elem_size: usize) -> ZoneHandle {
        self.next_zone += 1;
        ZoneHandle(self.next_zone)
    }
    fn zalloc(&mut self, _zone: ZoneHandle) -> u64 {
        self.next_addr += 0x100;
        self.live_allocs += 1;
        self.next_addr
    }
    fn zfree(&mut self, _zone: ZoneHandle, _addr: u64) {
        self.live_allocs -= 1;
    }
    fn current_thread(&self) -> ForeignThread {
        self.thread
    }
    fn assert_wait(&mut self, event: Event) {
        self.pending_wait = Some(event);
    }
    fn thread_block(&mut self) -> WaitResult {
        if let Some(ev) = self.pending_wait.take() {
            self.sleepers.entry(ev.0).or_default().push(self.thread);
        }
        WaitResult::Pending
    }
    fn thread_wakeup(&mut self, event: Event) -> usize {
        self.sleepers.remove(&event.0).map(|v| v.len()).unwrap_or(0)
    }
    fn mach_absolute_time(&self) -> u64 {
        self.now
    }
    fn kprintf(&mut self, msg: &str) {
        self.log.push(msg.to_string());
    }
    fn vm_remap_pages(&mut self, pages: u64) -> bool {
        if self.refuse_remap {
            return false;
        }
        self.remapped_pages += pages;
        true
    }
    fn copyin(&mut self, bytes: u64) {
        self.copied_bytes += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_lock_ops_are_logged() {
        let mut k = MockForeignKernel::new();
        let m = k.lck_mtx_alloc();
        k.lck_mtx_lock(m);
        k.lck_mtx_unlock(m);
        assert_eq!(k.lock_ops, vec![(m, true), (m, false)]);
    }

    #[test]
    fn mock_zone_accounting() {
        let mut k = MockForeignKernel::new();
        let z = k.zinit("ipc.ports", 128);
        let a = k.zalloc(z);
        let b = k.zalloc(z);
        assert_ne!(a, b);
        assert_eq!(k.live_allocs, 2);
        k.zfree(z, a);
        assert_eq!(k.live_allocs, 1);
    }

    #[test]
    fn mock_wait_and_wakeup() {
        let mut k = MockForeignKernel::new();
        k.assert_wait(Event(0xdead));
        assert_eq!(k.thread_block(), WaitResult::Pending);
        assert_eq!(k.thread_wakeup(Event(0xdead)), 1);
        assert_eq!(k.thread_wakeup(Event(0xdead)), 0);
    }
}
