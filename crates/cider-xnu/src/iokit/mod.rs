//! Apple's I/O Kit driver framework (the XNU `iokit` source directory),
//! duct-taped into the domestic kernel via the C++ runtime Cider adds.

pub mod osobject;
pub mod registry;

pub use osobject::{OsArena, OsId, OsValue};
pub use registry::{
    EntryId, IoDriver, IoKit, MatchRule, OsMetaClass, RegistryEntry,
    UserClientId,
};
