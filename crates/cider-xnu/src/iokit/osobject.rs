//! The libkern OSObject runtime: reference-counted property objects
//! (`OSString`, `OSNumber`, `OSDictionary`, ...) that I/O Kit registry
//! entries carry.
//!
//! I/O Kit "is written primarily in a restricted subset of C++" (§5.1);
//! the retain/release discipline of that subset is modelled explicitly so
//! leaks and over-releases are detectable in tests.

use std::collections::{BTreeMap, HashMap};

/// Handle to an object in the [`OsArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OsId(pub u64);

/// The value payload of an OSObject.
#[derive(Debug, Clone, PartialEq)]
pub enum OsValue {
    /// `OSString`.
    String(String),
    /// `OSNumber`.
    Number(i64),
    /// `OSBoolean`.
    Boolean(bool),
    /// `OSData`.
    Data(Vec<u8>),
    /// `OSArray` of retained children.
    Array(Vec<OsId>),
    /// `OSDictionary` of retained children.
    Dictionary(BTreeMap<String, OsId>),
}

/// The object arena with retain counts.
#[derive(Debug, Default)]
pub struct OsArena {
    objects: HashMap<u64, (OsValue, u32)>,
    next: u64,
}

impl OsArena {
    /// Empty arena.
    pub fn new() -> OsArena {
        OsArena::default()
    }

    /// Allocates an object with retain count 1.
    pub fn alloc(&mut self, value: OsValue) -> OsId {
        self.next += 1;
        self.objects.insert(self.next, (value, 1));
        OsId(self.next)
    }

    /// Convenience: allocates an `OSString`.
    pub fn string(&mut self, s: impl Into<String>) -> OsId {
        self.alloc(OsValue::String(s.into()))
    }

    /// Convenience: allocates an `OSNumber`.
    pub fn number(&mut self, n: i64) -> OsId {
        self.alloc(OsValue::Number(n))
    }

    /// Convenience: allocates an empty `OSDictionary`.
    pub fn dictionary(&mut self) -> OsId {
        self.alloc(OsValue::Dictionary(BTreeMap::new()))
    }

    /// `retain`: bumps the reference count.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id (a use-after-free bug in the caller).
    pub fn retain(&mut self, id: OsId) {
        self.objects
            .get_mut(&id.0)
            .expect("retain of freed OSObject")
            .1 += 1;
    }

    /// `release`: drops one reference; frees the object (and releases
    /// its children) at zero.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id.
    pub fn release(&mut self, id: OsId) {
        let entry = self
            .objects
            .get_mut(&id.0)
            .expect("release of freed OSObject");
        entry.1 -= 1;
        if entry.1 == 0 {
            let (value, _) = self.objects.remove(&id.0).expect("present");
            match value {
                OsValue::Array(children) => {
                    for c in children {
                        self.release(c);
                    }
                }
                OsValue::Dictionary(children) => {
                    for c in children.into_values() {
                        self.release(c);
                    }
                }
                _ => {}
            }
        }
    }

    /// Borrow an object's value.
    pub fn get(&self, id: OsId) -> Option<&OsValue> {
        self.objects.get(&id.0).map(|(v, _)| v)
    }

    /// Current retain count (None if freed).
    pub fn retain_count(&self, id: OsId) -> Option<u32> {
        self.objects.get(&id.0).map(|(_, rc)| *rc)
    }

    /// `OSDictionary::setObject`: inserts `value` (retaining it) under
    /// `key`, releasing any previous value.
    ///
    /// # Panics
    ///
    /// Panics if `dict` is not a dictionary.
    pub fn dict_set(
        &mut self,
        dict: OsId,
        key: impl Into<String>,
        value: OsId,
    ) {
        self.retain(value);
        let old = {
            let (v, _) = self
                .objects
                .get_mut(&dict.0)
                .expect("dict_set on freed object");
            let OsValue::Dictionary(map) = v else {
                panic!("dict_set on non-dictionary");
            };
            map.insert(key.into(), value)
        };
        if let Some(old) = old {
            self.release(old);
        }
    }

    /// `OSDictionary::getObject` (borrowed, no retain).
    pub fn dict_get(&self, dict: OsId, key: &str) -> Option<OsId> {
        match self.get(dict)? {
            OsValue::Dictionary(map) => map.get(key).copied(),
            _ => None,
        }
    }

    /// Looks up a string property through a dictionary.
    pub fn dict_get_string(&self, dict: OsId, key: &str) -> Option<&str> {
        match self.get(self.dict_get(dict, key)?)? {
            OsValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Live object count (leak detector).
    pub fn live(&self) -> usize {
        self.objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_retain_release_lifecycle() {
        let mut a = OsArena::new();
        let s = a.string("hello");
        assert_eq!(a.retain_count(s), Some(1));
        a.retain(s);
        assert_eq!(a.retain_count(s), Some(2));
        a.release(s);
        a.release(s);
        assert_eq!(a.retain_count(s), None);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn dictionary_retains_and_releases_children() {
        let mut a = OsArena::new();
        let d = a.dictionary();
        let v = a.number(42);
        a.dict_set(d, "IOClass", v);
        assert_eq!(a.retain_count(v), Some(2));
        a.release(v); // caller's reference
        assert_eq!(a.retain_count(v), Some(1));
        a.release(d); // dictionary frees, releasing the child
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn dict_set_replaces_and_releases_old() {
        let mut a = OsArena::new();
        let d = a.dictionary();
        let v1 = a.string("one");
        let v2 = a.string("two");
        a.dict_set(d, "k", v1);
        a.release(v1);
        a.dict_set(d, "k", v2);
        a.release(v2);
        // v1 fully gone, v2 held by the dict.
        assert_eq!(a.dict_get_string(d, "k"), Some("two"));
        assert_eq!(a.live(), 2); // dict + v2
    }

    #[test]
    #[should_panic(expected = "release of freed OSObject")]
    fn over_release_detected() {
        let mut a = OsArena::new();
        let s = a.string("x");
        a.release(s);
        a.release(s);
    }

    #[test]
    fn dict_get_string_type_checked() {
        let mut a = OsArena::new();
        let d = a.dictionary();
        let n = a.number(1);
        a.dict_set(d, "n", n);
        assert_eq!(a.dict_get_string(d, "n"), None);
        assert_eq!(a.dict_get_string(d, "missing"), None);
    }
}
