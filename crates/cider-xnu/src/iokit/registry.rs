//! The I/O Kit registry, service matching, and user clients.
//!
//! This is the core of Apple's driver framework (the XNU `iokit` source
//! directory): a tree of registry entries with OSObject property tables,
//! driver classes instantiated through `OSMetaClass` (the reflection hook
//! Cider's in-kernel C++ runtime provides), provider/driver matching, and
//! `IOUserClient` connections whose external methods are the opaque
//! device-specific calls iOS libraries make.

use std::collections::BTreeMap;
use std::fmt;

use crate::iokit::osobject::{OsArena, OsId, OsValue};
use crate::kern_return::{KernResult, KernReturn};

/// Identifier of a registry entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryId(pub u32);

/// Identifier of an open user-client connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserClientId(pub u32);

/// A driver class instance — what a C++ `IOService` subclass object is.
/// `cider-gfx` implements this for `AppleM2CLCD`.
pub trait IoDriver: Send {
    /// The C++ class name.
    fn class_name(&self) -> &'static str;

    /// `IOService::start`: bind to the provider; return `false` to veto.
    fn start(&mut self, provider: EntryId) -> bool;

    /// `IOUserClient::externalMethod`: the opaque selector-based call
    /// surface user space reaches through Mach IPC.
    ///
    /// # Errors
    ///
    /// `MigBadId` for unknown selectors; driver-specific codes otherwise.
    fn external_method(
        &mut self,
        selector: u32,
        input: &[u64],
        in_data: &[u8],
    ) -> KernResult<(Vec<u64>, Vec<u8>)>;
}

/// One registry entry (device nub or driver instance).
pub struct RegistryEntry {
    /// Entry id.
    pub id: EntryId,
    /// C++ class name (`"AppleM2CLCD"`, `"IOService"`, ...).
    pub class_name: String,
    /// Instance name in the plane.
    pub name: String,
    /// Property dictionary (owned reference in the arena).
    pub properties: OsId,
    /// Parent in the service plane.
    pub parent: Option<EntryId>,
    /// Children in the service plane.
    pub children: Vec<EntryId>,
    /// Attached driver instance, if this entry is a started driver.
    pub driver: Option<Box<dyn IoDriver>>,
}

impl fmt::Debug for RegistryEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegistryEntry")
            .field("id", &self.id)
            .field("class", &self.class_name)
            .field("name", &self.name)
            .field("children", &self.children)
            .field("has_driver", &self.driver.is_some())
            .finish()
    }
}

/// A matching rule: which provider (nub) classes a driver class attaches
/// to — the `IOKitPersonalities` entry of a driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchRule {
    /// The driver class to instantiate via OSMetaClass.
    pub driver_class: String,
    /// Provider class the rule matches (`IOProviderClass`).
    pub provider_class: String,
    /// Optional name match (`IONameMatch`).
    pub name_match: Option<String>,
    /// Probe score; highest wins when several rules match.
    pub probe_score: i32,
}

/// `OSMetaClass`: the class registry the in-kernel C++ runtime maintains,
/// used to instantiate driver objects by name.
#[derive(Default)]
pub struct OsMetaClass {
    factories:
        BTreeMap<String, Box<dyn Fn() -> Box<dyn IoDriver> + Send + Sync>>,
}

impl fmt::Debug for OsMetaClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OsMetaClass")
            .field("classes", &self.factories.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl OsMetaClass {
    /// Registers a class constructor.
    pub fn register_class(
        &mut self,
        name: impl Into<String>,
        factory: Box<dyn Fn() -> Box<dyn IoDriver> + Send + Sync>,
    ) {
        self.factories.insert(name.into(), factory);
    }

    /// Instantiates a class by name.
    pub fn instantiate(&self, name: &str) -> Option<Box<dyn IoDriver>> {
        self.factories.get(name).map(|f| f())
    }

    /// Registered class names.
    pub fn class_names(&self) -> Vec<&str> {
        self.factories.keys().map(|s| s.as_str()).collect()
    }
}

struct UserClient {
    entry: EntryId,
    calls: u64,
}

/// The I/O Kit subsystem: registry + matching + user clients.
#[derive(Default)]
pub struct IoKit {
    /// Property-object arena.
    pub arena: OsArena,
    entries: BTreeMap<u32, RegistryEntry>,
    next_entry: u32,
    root: Option<EntryId>,
    /// The class registry (public so the C++ runtime shim can register).
    pub meta: OsMetaClass,
    rules: Vec<MatchRule>,
    clients: BTreeMap<u32, UserClient>,
    next_client: u32,
    /// Matches performed (diagnostics).
    pub matches_made: u64,
}

impl fmt::Debug for IoKit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IoKit")
            .field("entries", &self.entries.len())
            .field("rules", &self.rules.len())
            .field("clients", &self.clients.len())
            .finish()
    }
}

impl IoKit {
    /// Creates the subsystem with an `IORegistryEntry` root.
    pub fn new() -> IoKit {
        let mut k = IoKit::default();
        let props = k.arena.dictionary();
        let root =
            k.insert_entry("IOPlatformExpertDevice", "J33", props, None);
        k.root = Some(root);
        k
    }

    /// The registry root.
    pub fn root(&self) -> EntryId {
        self.root.expect("constructed with root")
    }

    fn insert_entry(
        &mut self,
        class_name: impl Into<String>,
        name: impl Into<String>,
        properties: OsId,
        parent: Option<EntryId>,
    ) -> EntryId {
        self.next_entry += 1;
        let id = EntryId(self.next_entry);
        self.entries.insert(
            id.0,
            RegistryEntry {
                id,
                class_name: class_name.into(),
                name: name.into(),
                properties,
                parent,
                children: Vec::new(),
                driver: None,
            },
        );
        if let Some(p) = parent {
            if let Some(pe) = self.entries.get_mut(&p.0) {
                pe.children.push(id);
            }
        }
        id
    }

    /// Publishes a device nub (device class instance) under the root —
    /// what Cider's Linux `device_add` hook calls for every Linux device.
    /// Returns the new entry.
    pub fn publish_nub(
        &mut self,
        class_name: impl Into<String>,
        name: impl Into<String>,
        props: &[(&str, OsValue)],
    ) -> EntryId {
        let dict = self.arena.dictionary();
        for (k, v) in props {
            let vid = self.arena.alloc(v.clone());
            self.arena.dict_set(dict, *k, vid);
            self.arena.release(vid);
        }
        let root = self.root();
        let id = self.insert_entry(class_name, name, dict, Some(root));
        self.run_matching();
        id
    }

    /// Registers a driver personality and immediately re-runs matching
    /// (drivers can arrive after their nubs).
    pub fn register_personality(&mut self, rule: MatchRule) {
        self.rules.push(rule);
        self.run_matching();
    }

    /// The matching pass: for every un-driven nub, find the best rule,
    /// instantiate the driver class via OSMetaClass, and `start` it.
    fn run_matching(&mut self) {
        let nub_ids: Vec<EntryId> = self
            .entries
            .values()
            .filter(|e| {
                e.driver.is_none()
                    && !e
                        .children
                        .iter()
                        .any(|c| self.entries[&c.0].driver.is_some())
            })
            .map(|e| e.id)
            .collect();
        for nub in nub_ids {
            let (class, name) = {
                let e = &self.entries[&nub.0];
                (e.class_name.clone(), e.name.clone())
            };
            let best = self
                .rules
                .iter()
                .filter(|r| {
                    r.provider_class == class
                        && r.name_match
                            .as_deref()
                            .map(|n| n == name)
                            .unwrap_or(true)
                })
                .max_by_key(|r| r.probe_score)
                .cloned();
            let Some(rule) = best else { continue };
            let Some(mut driver) = self.meta.instantiate(&rule.driver_class)
            else {
                continue;
            };
            if !driver.start(nub) {
                continue;
            }
            let props = self.arena.dictionary();
            let drv_entry = self.insert_entry(
                rule.driver_class.clone(),
                rule.driver_class.clone(),
                props,
                Some(nub),
            );
            self.entries
                .get_mut(&drv_entry.0)
                .expect("just inserted")
                .driver = Some(driver);
            self.matches_made += 1;
        }
    }

    /// `IOServiceGetMatchingService`: first entry of a class.
    pub fn find_service(&self, class_name: &str) -> Option<EntryId> {
        self.entries
            .values()
            .find(|e| e.class_name == class_name)
            .map(|e| e.id)
    }

    /// All entries of a class.
    pub fn find_services(&self, class_name: &str) -> Vec<EntryId> {
        self.entries
            .values()
            .filter(|e| e.class_name == class_name)
            .map(|e| e.id)
            .collect()
    }

    /// Borrow an entry.
    pub fn entry(&self, id: EntryId) -> Option<&RegistryEntry> {
        self.entries.get(&id.0)
    }

    /// Reads a string property from an entry.
    pub fn property_string(&self, id: EntryId, key: &str) -> Option<&str> {
        let e = self.entry(id)?;
        self.arena.dict_get_string(e.properties, key)
    }

    /// `IOServiceOpen`: opens a user-client connection to a *driven*
    /// service (the entry itself or its attached driver child).
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for unknown entries, `InvalidCapability` when no
    /// driver is attached anywhere at this entry.
    pub fn service_open(&mut self, id: EntryId) -> KernResult<UserClientId> {
        let target = self.driver_entry_for(id)?;
        self.next_client += 1;
        let cid = UserClientId(self.next_client);
        self.clients.insert(
            cid.0,
            UserClient {
                entry: target,
                calls: 0,
            },
        );
        Ok(cid)
    }

    fn driver_entry_for(&self, id: EntryId) -> KernResult<EntryId> {
        let e = self.entries.get(&id.0).ok_or(KernReturn::InvalidArgument)?;
        if e.driver.is_some() {
            return Ok(id);
        }
        for c in &e.children {
            if self.entries[&c.0].driver.is_some() {
                return Ok(*c);
            }
        }
        Err(KernReturn::InvalidCapability)
    }

    /// `IOConnectCallMethod`: dispatches an external method on an open
    /// connection.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for unknown connections; driver errors otherwise.
    pub fn connect_call_method(
        &mut self,
        client: UserClientId,
        selector: u32,
        input: &[u64],
        in_data: &[u8],
    ) -> KernResult<(Vec<u64>, Vec<u8>)> {
        let entry = {
            let c = self
                .clients
                .get_mut(&client.0)
                .ok_or(KernReturn::InvalidArgument)?;
            c.calls += 1;
            c.entry
        };
        let e = self
            .entries
            .get_mut(&entry.0)
            .ok_or(KernReturn::InvalidArgument)?;
        let driver = e.driver.as_mut().ok_or(KernReturn::InvalidCapability)?;
        driver.external_method(selector, input, in_data)
    }

    /// `IOServiceClose`.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for unknown connections.
    pub fn service_close(&mut self, client: UserClientId) -> KernResult<()> {
        self.clients
            .remove(&client.0)
            .map(|_| ())
            .ok_or(KernReturn::InvalidArgument)
    }

    /// Number of registry entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of open user clients.
    pub fn open_clients(&self) -> usize {
        self.clients.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestDriver {
        started: bool,
    }

    impl IoDriver for TestDriver {
        fn class_name(&self) -> &'static str {
            "TestDriver"
        }
        fn start(&mut self, _provider: EntryId) -> bool {
            self.started = true;
            true
        }
        fn external_method(
            &mut self,
            selector: u32,
            input: &[u64],
            _in_data: &[u8],
        ) -> KernResult<(Vec<u64>, Vec<u8>)> {
            match selector {
                0 => Ok((vec![input.iter().sum()], Vec::new())),
                _ => Err(KernReturn::MigBadId),
            }
        }
    }

    fn iokit_with_driver() -> IoKit {
        let mut k = IoKit::new();
        k.meta.register_class(
            "TestDriver",
            Box::new(|| Box::new(TestDriver { started: false })),
        );
        k.register_personality(MatchRule {
            driver_class: "TestDriver".into(),
            provider_class: "IODisplayNub".into(),
            name_match: None,
            probe_score: 1000,
        });
        k
    }

    #[test]
    fn publish_and_match() {
        let mut k = iokit_with_driver();
        let nub = k.publish_nub(
            "IODisplayNub",
            "fb0",
            &[("IOLinuxDevice", OsValue::String("/dev/fb0".into()))],
        );
        assert_eq!(k.matches_made, 1);
        // The driver entry is a child of the nub.
        let e = k.entry(nub).unwrap();
        assert_eq!(e.children.len(), 1);
        assert_eq!(k.entry(e.children[0]).unwrap().class_name, "TestDriver");
        assert_eq!(k.property_string(nub, "IOLinuxDevice"), Some("/dev/fb0"));
    }

    #[test]
    fn matching_runs_when_driver_arrives_late() {
        let mut k = IoKit::new();
        k.publish_nub("IODisplayNub", "fb0", &[]);
        assert_eq!(k.matches_made, 0);
        k.meta.register_class(
            "TestDriver",
            Box::new(|| Box::new(TestDriver { started: false })),
        );
        k.register_personality(MatchRule {
            driver_class: "TestDriver".into(),
            provider_class: "IODisplayNub".into(),
            name_match: None,
            probe_score: 0,
        });
        assert_eq!(k.matches_made, 1);
    }

    #[test]
    fn name_match_filters() {
        let mut k = IoKit::new();
        k.meta.register_class(
            "TestDriver",
            Box::new(|| Box::new(TestDriver { started: false })),
        );
        k.register_personality(MatchRule {
            driver_class: "TestDriver".into(),
            provider_class: "IODisplayNub".into(),
            name_match: Some("fb1".into()),
            probe_score: 0,
        });
        k.publish_nub("IODisplayNub", "fb0", &[]);
        assert_eq!(k.matches_made, 0);
        k.publish_nub("IODisplayNub", "fb1", &[]);
        assert_eq!(k.matches_made, 1);
    }

    #[test]
    fn user_client_external_method() {
        let mut k = iokit_with_driver();
        let nub = k.publish_nub("IODisplayNub", "fb0", &[]);
        let conn = k.service_open(nub).unwrap();
        let (out, _) =
            k.connect_call_method(conn, 0, &[2, 3, 4], &[]).unwrap();
        assert_eq!(out, vec![9]);
        assert_eq!(
            k.connect_call_method(conn, 99, &[], &[]).unwrap_err(),
            KernReturn::MigBadId
        );
        k.service_close(conn).unwrap();
        assert_eq!(k.open_clients(), 0);
        assert_eq!(
            k.service_close(conn).unwrap_err(),
            KernReturn::InvalidArgument
        );
    }

    #[test]
    fn open_undriven_service_fails() {
        let mut k = IoKit::new();
        let nub = k.publish_nub("IOUnknownNub", "x", &[]);
        assert_eq!(
            k.service_open(nub).unwrap_err(),
            KernReturn::InvalidCapability
        );
    }

    #[test]
    fn find_services_by_class() {
        let mut k = iokit_with_driver();
        k.publish_nub("IODisplayNub", "fb0", &[]);
        k.publish_nub("IODisplayNub", "fb1", &[]);
        assert_eq!(k.find_services("IODisplayNub").len(), 2);
        assert!(k.find_service("TestDriver").is_some());
        assert!(k.find_service("Nope").is_none());
    }
}
