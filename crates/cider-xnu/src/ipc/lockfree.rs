//! Deterministic lock-free MPSC message queue for IPC v2.
//!
//! Real mach_r-style ports replace the queue mutex with a multi-producer
//! single-consumer linked list: producers CAS themselves onto the tail and
//! the single receiver pops the head. In a deterministic simulator the
//! interesting property is not the host-level atomicity (the simulation is
//! single-threaded per device) but the *ordering rule* the lock-free
//! structure guarantees:
//!
//! 1. Every enqueue claims a globally unique **sequence number** from an
//!    atomic counter — the simulator's stand-in for the winning CAS.
//! 2. Entries are delivered in `(stamp, seq)` order, where `stamp` is the
//!    producer's virtual-time enqueue instant. Stamps model "which
//!    producer's CAS landed first"; the sequence number breaks ties
//!    between producers that raced within the same virtual nanosecond.
//!
//! Because virtual time is monotone within a device, `(stamp, seq)` order
//! degenerates to plain FIFO for a single producer, so the structure is a
//! drop-in replacement for the mutex-guarded [`crate::queue::XnuQueue`] —
//! minus the two `lck_mtx` duct-tape crossings per operation that the v1
//! path charges to virtual time.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug)]
struct Entry<T> {
    stamp: u64,
    seq: u64,
    item: T,
}

/// Virtual-time-ordered MPSC queue (see module docs for the ordering rule).
#[derive(Debug, Default)]
pub struct LockFreeQueue<T> {
    entries: VecDeque<Entry<T>>,
    next_seq: AtomicU64,
}

impl<T> LockFreeQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> LockFreeQueue<T> {
        LockFreeQueue {
            entries: VecDeque::new(),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Enqueues `item` at virtual time `stamp`, returning the claimed
    /// sequence number. Entries with equal stamps deliver in claim order.
    pub fn enqueue(&mut self, stamp: u64, item: T) -> u64 {
        // The CAS-claim: unique, totally ordered, wait-free.
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        // Insert sorted by (stamp, seq). Producers almost always arrive in
        // stamp order, so scan from the tail.
        let at = self
            .entries
            .iter()
            .rposition(|e| (e.stamp, e.seq) <= (stamp, seq))
            .map(|i| i + 1)
            .unwrap_or(0);
        self.entries.insert(at, Entry { stamp, seq, item });
        seq
    }

    /// Enqueues behind everything already queued (classic FIFO append) —
    /// the v1-compatible path.
    pub fn enqueue_tail(&mut self, item: T) {
        let stamp = self.entries.back().map(|e| e.stamp).unwrap_or(0);
        self.enqueue(stamp, item);
    }

    /// Pops the entry with the smallest `(stamp, seq)`.
    pub fn dequeue_head(&mut self) -> Option<T> {
        self.entries.pop_front().map(|e| e.item)
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is empty (XNU `queue_empty` spelling).
    pub fn queue_empty(&self) -> bool {
        self.is_empty()
    }

    /// Iterates entries in delivery order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().map(|e| &e.item)
    }

    /// Drains all entries in delivery order.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.entries.drain(..).map(|e| e.item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_for_monotone_stamps() {
        let mut q = LockFreeQueue::new();
        q.enqueue(10, "a");
        q.enqueue(20, "b");
        q.enqueue(30, "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.dequeue_head(), Some("a"));
        assert_eq!(q.dequeue_head(), Some("b"));
        assert_eq!(q.dequeue_head(), Some("c"));
        assert_eq!(q.dequeue_head(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_stamps_break_ties_by_claim_order() {
        let mut q = LockFreeQueue::new();
        let s0 = q.enqueue(5, "first");
        let s1 = q.enqueue(5, "second");
        assert!(s0 < s1);
        assert_eq!(q.dequeue_head(), Some("first"));
        assert_eq!(q.dequeue_head(), Some("second"));
    }

    #[test]
    fn late_producer_with_early_stamp_sorts_in() {
        let mut q = LockFreeQueue::new();
        q.enqueue(100, "late");
        q.enqueue(50, "early");
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), ["early", "late"]);
    }

    #[test]
    fn enqueue_tail_preserves_fifo() {
        let mut q = LockFreeQueue::new();
        q.enqueue_tail(1);
        q.enqueue_tail(2);
        q.enqueue(0, 3); // stamp 0 ties the tail stamps; seq breaks the tie
        assert_eq!(q.drain().collect::<Vec<_>>(), [1, 2, 3]);
    }
}
