//! Mach messages: headers, port-right descriptors, and out-of-line data.

use bytes::Bytes;
use cider_abi::ids::PortName;

use crate::ipc::port::PortId;

/// How a port right named in a message is to be transferred
/// (`mach_msg_type_name_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDisposition {
    /// Move the receive right to the receiver.
    MoveReceive,
    /// Move one of the sender's send references.
    MoveSend,
    /// Copy the sender's send right (new system-wide reference).
    CopySend,
    /// Make a new send right from the sender's receive right.
    MakeSend,
    /// Make a new send-once right from the sender's receive right.
    MakeSendOnce,
    /// Move the sender's send-once right.
    MoveSendOnce,
}

/// A port descriptor as user space writes it: a name in the sender's
/// space plus a disposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortDescriptor {
    /// Name in the sender's space.
    pub name: PortName,
    /// Transfer disposition.
    pub disposition: PortDisposition,
}

/// A right in transit inside a queued message (already validated and
/// counted against the port).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitRight {
    /// The port whose right travels.
    pub port: PortId,
    /// What the receiver will get.
    pub kind: TransitKind,
}

/// What kind of right is carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitKind {
    /// A send right.
    Send,
    /// A send-once right.
    SendOnce,
    /// The receive right itself.
    Receive,
}

/// Out-of-line regions at or above this many bytes are eligible for
/// page-table remap under IPC v2 (one 4 KiB page); smaller regions are
/// cheaper to copy inline than to retarget mappings for.
pub const OOL_INLINE_THRESHOLD: usize = 4096;

/// Bytes per page for OOL remap accounting (matches the kernel
/// simulator's `PAGE_SIZE`; cider-xnu cannot depend on cider-kernel).
pub const OOL_PAGE_BYTES: u64 = 4096;

/// A message as user space composes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserMessage {
    /// Destination name (must denote a send or send-once right).
    pub remote_port: PortName,
    /// Disposition applied to the destination right.
    pub remote_disposition: PortDisposition,
    /// Reply port name (`MACH_PORT_NULL` for none); transferred with
    /// [`UserMessage::local_disposition`].
    pub local_port: PortName,
    /// Disposition for the reply port (typically `MakeSendOnce`).
    pub local_disposition: PortDisposition,
    /// Message id (MIG routine number, notification id, ...).
    pub msg_id: i32,
    /// Inline body.
    pub body: Bytes,
    /// Port-right descriptors in the body.
    pub ports: Vec<PortDescriptor>,
    /// Out-of-line memory regions.
    pub ool: Vec<Bytes>,
}

impl UserMessage {
    /// A simple message with inline data only.
    pub fn simple(
        remote_port: PortName,
        msg_id: i32,
        body: impl Into<Bytes>,
    ) -> UserMessage {
        UserMessage {
            remote_port,
            remote_disposition: PortDisposition::CopySend,
            local_port: PortName::NULL,
            local_disposition: PortDisposition::MakeSendOnce,
            msg_id,
            body: body.into(),
            ports: Vec::new(),
            ool: Vec::new(),
        }
    }

    /// Total inline + out-of-line payload size.
    pub fn size(&self) -> usize {
        self.body.len() + self.ool.iter().map(|b| b.len()).sum::<usize>()
    }
}

/// A message queued in the kernel: rights already in transit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Message id.
    pub msg_id: i32,
    /// Inline body.
    pub body: Bytes,
    /// Reply right in transit, if any.
    pub reply: Option<TransitRight>,
    /// Descriptor rights in transit.
    pub ports: Vec<TransitRight>,
    /// Out-of-line regions.
    pub ool: Vec<Bytes>,
    /// Space id of the sender (diagnostics).
    pub sender: u64,
}

impl Message {
    /// Total payload size.
    pub fn size(&self) -> usize {
        self.body.len() + self.ool.iter().map(|b| b.len()).sum::<usize>()
    }
}

/// A message as delivered to the receiver: rights turned into names in
/// the receiving space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedMessage {
    /// Message id.
    pub msg_id: i32,
    /// Inline body.
    pub body: Bytes,
    /// Reply port name in the receiver's space (NULL if none).
    pub reply_port: PortName,
    /// Descriptor port names in the receiver's space.
    pub ports: Vec<PortName>,
    /// Out-of-line regions.
    pub ool: Vec<Bytes>,
}

impl ReceivedMessage {
    /// Total inline + out-of-line payload size.
    pub fn size(&self) -> usize {
        self.body.len() + self.ool.iter().map(|b| b.len()).sum::<usize>()
    }
}

/// Well-known notification message ids.
pub mod notify_ids {
    /// `MACH_NOTIFY_PORT_DELETED`.
    pub const PORT_DELETED: i32 = 65;
    /// `MACH_NOTIFY_NO_SENDERS`.
    pub const NO_SENDERS: i32 = 70;
    /// `MACH_NOTIFY_DEAD_NAME`.
    pub const DEAD_NAME: i32 = 72;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_message_defaults() {
        let m = UserMessage::simple(PortName(5), 100, &b"hi"[..]);
        assert_eq!(m.remote_port, PortName(5));
        assert_eq!(m.local_port, PortName::NULL);
        assert_eq!(m.size(), 2);
        assert!(m.ports.is_empty());
    }

    #[test]
    fn size_includes_ool() {
        let mut m = UserMessage::simple(PortName(1), 0, &b"abc"[..]);
        m.ool.push(Bytes::from(vec![0u8; 100]));
        assert_eq!(m.size(), 103);
    }
}
