//! Mach IPC — the XNU subsystem Cider duct-tapes into the Linux kernel.
//!
//! The module layout mirrors `osfmk/ipc`: [`port`] holds ports and
//! rights, [`space`] the per-task name tables, [`message`] the message
//! and descriptor formats, and [`subsystem`] the transfer engine.

pub mod message;
pub mod port;
pub mod space;
pub mod subsystem;

pub use message::{
    Message, PortDescriptor, PortDisposition, ReceivedMessage, UserMessage,
};
pub use port::{KernelObject, Port, PortId, RightType, SpaceId};
pub use space::IpcSpace;
pub use subsystem::{IpcStats, MachIpc};
