//! Mach IPC — the XNU subsystem Cider duct-tapes into the Linux kernel.
//!
//! The module layout mirrors `osfmk/ipc`: [`port`] holds ports and
//! rights, [`space`] the per-task name tables, [`message`] the message
//! and descriptor formats, [`lockfree`] the v2 virtual-time-ordered
//! queue, and [`subsystem`] the transfer engine.

pub mod lockfree;
pub mod message;
pub mod port;
pub mod space;
pub mod subsystem;

pub use lockfree::LockFreeQueue;
pub use message::{
    Message, PortDescriptor, PortDisposition, ReceivedMessage, UserMessage,
    OOL_INLINE_THRESHOLD, OOL_PAGE_BYTES,
};
pub use port::{KernelObject, Port, PortId, RightCount, RightType, SpaceId};
pub use space::IpcSpace;
pub use subsystem::{IpcStats, MachIpc};
