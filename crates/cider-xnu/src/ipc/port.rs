//! Mach ports and port rights.

use crate::ipc::message::Message;
use crate::queue::XnuQueue;

/// Global identifier of a port object (kernel-internal, not a name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u64);

/// Identifier of an IPC space (one per task).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpaceId(pub u64);

/// The kind of right a name denotes within a space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RightType {
    /// The (unique) receive right.
    Receive,
    /// A send right (user-reference counted).
    Send,
    /// A send-once right.
    SendOnce,
    /// A dead name left behind when the port died.
    DeadName,
}

/// The kernel object a port may represent — how Mach IPC doubles as the
/// syscall surface for kernel services (tasks, I/O Kit connections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelObject {
    /// A plain message queue.
    #[default]
    None,
    /// A task's self port; carries the (simulator) pid.
    Task(u64),
    /// A thread's self port.
    Thread(u64),
    /// The host port.
    Host,
    /// An I/O Kit service registry entry.
    IoService(u32),
    /// An open I/O Kit user-client connection.
    IoUserClient(u32),
    /// A bootstrap/launchd service endpoint (index into the service
    /// registry).
    BootstrapService(u32),
    /// A notification endpoint (notifyd).
    Notification(u32),
}

/// Default per-port message queue limit (`MACH_PORT_QLIMIT_DEFAULT`).
pub const QLIMIT_DEFAULT: usize = 5;
/// Maximum configurable queue limit (`MACH_PORT_QLIMIT_MAX`).
pub const QLIMIT_MAX: usize = 16;

/// A Mach port: one receive right, counted send rights, a message queue.
#[derive(Debug)]
pub struct Port {
    /// Global id.
    pub id: PortId,
    /// Space holding the receive right; `None` once the port is dead.
    pub receiver: Option<SpaceId>,
    /// Outstanding send rights, system-wide (space entries' user refs
    /// plus rights in transit inside queued messages).
    pub srights: u32,
    /// Outstanding send-once rights, system-wide.
    pub sorights: u32,
    /// Times a send right was made from the receive right
    /// (`mscount` — consulted by no-senders notifications).
    pub make_send_count: u32,
    /// Queued messages.
    pub msgs: XnuQueue<Message>,
    /// Queue limit.
    pub qlimit: usize,
    /// Kernel object binding.
    pub kobject: KernelObject,
    /// Armed no-senders notification target: `(space, name)` identifying
    /// a send-once right to fire when `srights` drops to zero.
    pub ns_notify: Option<(SpaceId, cider_abi::ids::PortName)>,
}

impl Port {
    /// Creates a live port with its receive right in `receiver`.
    pub fn new(id: PortId, receiver: SpaceId) -> Port {
        Port {
            id,
            receiver: Some(receiver),
            srights: 0,
            sorights: 0,
            make_send_count: 0,
            msgs: XnuQueue::new(),
            qlimit: QLIMIT_DEFAULT,
            kobject: KernelObject::None,
            ns_notify: None,
        }
    }

    /// Whether the port is dead (receive right destroyed).
    pub fn is_dead(&self) -> bool {
        self.receiver.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_port_is_live_with_no_rights() {
        let p = Port::new(PortId(1), SpaceId(1));
        assert!(!p.is_dead());
        assert_eq!(p.srights, 0);
        assert_eq!(p.qlimit, QLIMIT_DEFAULT);
        assert!(p.msgs.queue_empty());
    }

    #[test]
    fn qlimits_ordered() {
        const { assert!(QLIMIT_DEFAULT < QLIMIT_MAX) };
    }
}
