//! Mach ports and port rights.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::ipc::lockfree::LockFreeQueue;
use crate::ipc::message::Message;

/// Global identifier of a port object (kernel-internal, not a name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u64);

/// Identifier of an IPC space (one per task).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpaceId(pub u64);

/// The kind of right a name denotes within a space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RightType {
    /// The (unique) receive right.
    Receive,
    /// A send right (user-reference counted).
    Send,
    /// A send-once right.
    SendOnce,
    /// A dead name left behind when the port died.
    DeadName,
}

/// The kernel object a port may represent — how Mach IPC doubles as the
/// syscall surface for kernel services (tasks, I/O Kit connections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelObject {
    /// A plain message queue.
    #[default]
    None,
    /// A task's self port; carries the (simulator) pid.
    Task(u64),
    /// A thread's self port.
    Thread(u64),
    /// The host port.
    Host,
    /// An I/O Kit service registry entry.
    IoService(u32),
    /// An open I/O Kit user-client connection.
    IoUserClient(u32),
    /// A bootstrap/launchd service endpoint (index into the service
    /// registry).
    BootstrapService(u32),
    /// A notification endpoint (notifyd).
    Notification(u32),
}

/// Default per-port message queue limit (`MACH_PORT_QLIMIT_DEFAULT`).
pub const QLIMIT_DEFAULT: usize = 5;
/// Maximum configurable queue limit (`MACH_PORT_QLIMIT_MAX`).
pub const QLIMIT_MAX: usize = 16;

/// An atomically maintained right reference count.
///
/// mach_r keeps send/send-once rights as plain refcounts bumped with
/// atomic RMW instructions instead of under the port lock; this wrapper
/// is the simulator's equivalent. Equality and ordering compare the
/// loaded value, so counts keep working in assertions and diagnostics.
#[derive(Debug, Default)]
pub struct RightCount(AtomicU32);

impl RightCount {
    /// A zero count.
    pub const fn new(v: u32) -> RightCount {
        RightCount(AtomicU32::new(v))
    }

    /// Current value.
    pub fn get(&self) -> u32 {
        self.0.load(Ordering::Relaxed)
    }

    /// Atomically adds one reference.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Atomically drops one reference; saturates at zero (a dead port's
    /// rights may be released after the count was force-cleared).
    pub fn dec(&self) {
        let _ =
            self.0
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    v.checked_sub(1)
                });
    }

    /// Overwrites the count (port teardown).
    pub fn set(&self, v: u32) {
        self.0.store(v, Ordering::Relaxed);
    }
}

impl PartialEq<u32> for RightCount {
    fn eq(&self, other: &u32) -> bool {
        self.get() == *other
    }
}

impl PartialEq for RightCount {
    fn eq(&self, other: &RightCount) -> bool {
        self.get() == other.get()
    }
}

impl Eq for RightCount {}

/// A Mach port: one receive right, counted send rights, a message queue.
#[derive(Debug)]
pub struct Port {
    /// Global id.
    pub id: PortId,
    /// Space holding the receive right; `None` once the port is dead.
    pub receiver: Option<SpaceId>,
    /// Outstanding send rights, system-wide (space entries' user refs
    /// plus rights in transit inside queued messages).
    pub srights: RightCount,
    /// Outstanding send-once rights, system-wide.
    pub sorights: RightCount,
    /// Times a send right was made from the receive right
    /// (`mscount` — consulted by no-senders notifications).
    pub make_send_count: u32,
    /// Queued messages, delivered in `(stamp, seq)` order.
    pub msgs: LockFreeQueue<Message>,
    /// Queue limit.
    pub qlimit: usize,
    /// Kernel object binding.
    pub kobject: KernelObject,
    /// Armed no-senders notification target: `(space, name)` identifying
    /// a send-once right to fire when `srights` drops to zero.
    pub ns_notify: Option<(SpaceId, cider_abi::ids::PortName)>,
}

impl Port {
    /// Creates a live port with its receive right in `receiver`.
    pub fn new(id: PortId, receiver: SpaceId) -> Port {
        Port {
            id,
            receiver: Some(receiver),
            srights: RightCount::new(0),
            sorights: RightCount::new(0),
            make_send_count: 0,
            msgs: LockFreeQueue::new(),
            qlimit: QLIMIT_DEFAULT,
            kobject: KernelObject::None,
            ns_notify: None,
        }
    }

    /// Whether the port is dead (receive right destroyed).
    pub fn is_dead(&self) -> bool {
        self.receiver.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_port_is_live_with_no_rights() {
        let p = Port::new(PortId(1), SpaceId(1));
        assert!(!p.is_dead());
        assert_eq!(p.srights, 0);
        assert_eq!(p.qlimit, QLIMIT_DEFAULT);
        assert!(p.msgs.queue_empty());
    }

    #[test]
    fn qlimits_ordered() {
        const { assert!(QLIMIT_DEFAULT < QLIMIT_MAX) };
    }

    #[test]
    fn right_counts_are_saturating() {
        let c = RightCount::new(1);
        c.inc();
        assert_eq!(c.get(), 2);
        c.dec();
        c.dec();
        c.dec(); // already zero: saturates instead of wrapping
        assert_eq!(c.get(), 0);
        c.set(7);
        assert_eq!(c, 7);
    }
}
