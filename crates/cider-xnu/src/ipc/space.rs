//! Per-task IPC spaces: the name tables mapping task-local port names to
//! port rights, exactly as XNU's `ipc_space`/`ipc_entry` do.

use std::collections::BTreeMap;

use cider_abi::ids::PortName;

use crate::ipc::port::{PortId, RightType, SpaceId};
use crate::kern_return::{KernResult, KernReturn};

/// One entry in a space's name table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameEntry {
    /// The port the name denotes.
    pub port: PortId,
    /// The kind of right.
    pub right: RightType,
    /// User references (send rights and dead names are counted; receive
    /// and send-once rights always hold exactly one).
    pub urefs: u32,
}

/// A task's IPC space.
#[derive(Debug)]
pub struct IpcSpace {
    /// Space id.
    pub id: SpaceId,
    names: BTreeMap<u32, NameEntry>,
    next_name: u32,
}

impl IpcSpace {
    /// Creates an empty space.
    pub fn new(id: SpaceId) -> IpcSpace {
        IpcSpace {
            id,
            names: BTreeMap::new(),
            // Real XNU hands out small names starting near 0x103.
            next_name: 0x103,
        }
    }

    fn fresh_name(&mut self) -> PortName {
        let n = self.next_name;
        self.next_name += 4; // XNU name generations step by 4
        PortName(n)
    }

    /// Looks up a name.
    ///
    /// # Errors
    ///
    /// `InvalidName` if the name denotes nothing.
    pub fn lookup(&self, name: PortName) -> KernResult<NameEntry> {
        self.names
            .get(&name.as_raw())
            .copied()
            .ok_or(KernReturn::InvalidName)
    }

    /// Inserts a brand-new right under a fresh name.
    pub fn insert_new(&mut self, port: PortId, right: RightType) -> PortName {
        let name = self.fresh_name();
        self.names.insert(
            name.as_raw(),
            NameEntry {
                port,
                right,
                urefs: 1,
            },
        );
        name
    }

    /// Adds a send right for `port`, coalescing with an existing send
    /// entry for the same port (Mach guarantees one name per (space,
    /// port, send) pair). Returns the name.
    pub fn add_send_right(&mut self, port: PortId) -> PortName {
        for (raw, e) in self.names.iter_mut() {
            if e.port == port && e.right == RightType::Send {
                e.urefs += 1;
                return PortName(*raw);
            }
        }
        self.insert_new(port, RightType::Send)
    }

    /// Adds a send-once right (never coalesced).
    pub fn add_send_once_right(&mut self, port: PortId) -> PortName {
        self.insert_new(port, RightType::SendOnce)
    }

    /// Releases one user reference on a name, removing the entry when the
    /// count reaches zero. Returns the entry as it was before release.
    ///
    /// # Errors
    ///
    /// `InvalidName` for unknown names; `InvalidRight` when releasing a
    /// receive right this way (use [`IpcSpace::remove`]).
    pub fn release(&mut self, name: PortName) -> KernResult<NameEntry> {
        let e = self.lookup(name)?;
        if e.right == RightType::Receive {
            return Err(KernReturn::InvalidRight);
        }
        let entry =
            self.names.get_mut(&name.as_raw()).expect("looked up above");
        entry.urefs -= 1;
        if entry.urefs == 0 {
            self.names.remove(&name.as_raw());
        }
        Ok(e)
    }

    /// Removes an entry outright (receive-right moves, port death).
    ///
    /// # Errors
    ///
    /// `InvalidName` for unknown names.
    pub fn remove(&mut self, name: PortName) -> KernResult<NameEntry> {
        self.names
            .remove(&name.as_raw())
            .ok_or(KernReturn::InvalidName)
    }

    /// Converts every entry referring to `port` into a dead name,
    /// returning how many send/send-once user references were destroyed.
    pub fn make_dead(&mut self, port: PortId) -> (u32, u32) {
        let mut send = 0;
        let mut sonce = 0;
        for e in self.names.values_mut() {
            if e.port == port {
                match e.right {
                    RightType::Send => send += e.urefs,
                    RightType::SendOnce => sonce += e.urefs,
                    _ => {}
                }
                e.right = RightType::DeadName;
            }
        }
        (send, sonce)
    }

    /// The name holding the receive right for `port`, if any.
    pub fn find_receive(&self, port: PortId) -> Option<PortName> {
        self.names
            .iter()
            .find(|(_, e)| e.port == port && e.right == RightType::Receive)
            .map(|(raw, _)| PortName(*raw))
    }

    /// Iterates over `(name, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PortName, NameEntry)> + '_ {
        self.names.iter().map(|(&raw, &e)| (PortName(raw), e))
    }

    /// Number of names in the table.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let mut s = IpcSpace::new(SpaceId(1));
        let a = s.insert_new(PortId(10), RightType::Receive);
        let b = s.insert_new(PortId(11), RightType::Receive);
        assert_ne!(a, b);
        assert_eq!(s.lookup(a).unwrap().port, PortId(10));
    }

    #[test]
    fn send_rights_coalesce() {
        let mut s = IpcSpace::new(SpaceId(1));
        let a = s.add_send_right(PortId(7));
        let b = s.add_send_right(PortId(7));
        assert_eq!(a, b);
        assert_eq!(s.lookup(a).unwrap().urefs, 2);
        // Send-once rights never coalesce.
        let c = s.add_send_once_right(PortId(7));
        let d = s.add_send_once_right(PortId(7));
        assert_ne!(c, d);
    }

    #[test]
    fn release_counts_down_and_removes() {
        let mut s = IpcSpace::new(SpaceId(1));
        let a = s.add_send_right(PortId(7));
        s.add_send_right(PortId(7));
        s.release(a).unwrap();
        assert_eq!(s.lookup(a).unwrap().urefs, 1);
        s.release(a).unwrap();
        assert_eq!(s.lookup(a).unwrap_err(), KernReturn::InvalidName);
    }

    #[test]
    fn receive_right_cannot_be_released() {
        let mut s = IpcSpace::new(SpaceId(1));
        let a = s.insert_new(PortId(1), RightType::Receive);
        assert_eq!(s.release(a).unwrap_err(), KernReturn::InvalidRight);
    }

    #[test]
    fn make_dead_converts_and_counts() {
        let mut s = IpcSpace::new(SpaceId(1));
        let a = s.add_send_right(PortId(9));
        s.add_send_right(PortId(9));
        let b = s.add_send_once_right(PortId(9));
        let (send, sonce) = s.make_dead(PortId(9));
        assert_eq!((send, sonce), (2, 1));
        assert_eq!(s.lookup(a).unwrap().right, RightType::DeadName);
        assert_eq!(s.lookup(b).unwrap().right, RightType::DeadName);
    }

    #[test]
    fn find_receive_locates_name() {
        let mut s = IpcSpace::new(SpaceId(1));
        let a = s.insert_new(PortId(3), RightType::Receive);
        s.add_send_right(PortId(3));
        assert_eq!(s.find_receive(PortId(3)), Some(a));
        assert_eq!(s.find_receive(PortId(4)), None);
    }
}
