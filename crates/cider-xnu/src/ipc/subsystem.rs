//! The Mach IPC engine: spaces, ports, rights transfer, message queues,
//! and no-senders notifications.
//!
//! This is the reproduction's equivalent of the XNU `osfmk/ipc` directory
//! that Cider duct-tapes into Linux — "a rich and complicated API
//! providing inter-process communication and memory sharing" (§4.2). All
//! locking and allocation goes through the [`ForeignKernelApi`], so the
//! code itself never touches the domestic kernel.
//!
//! # IPC v2
//!
//! The subsystem has two personalities selected by [`MachIpc::set_v2`]:
//!
//! * **v1** (default): every message operation takes the subsystem mutex
//!   through the duct tape (two `lck_mtx` crossings per op) and copies
//!   all payload inline. This is the original lock-coarse model and its
//!   virtual-time charging is bit-for-bit unchanged.
//! * **v2**: rights are atomic refcounts
//!   ([`RightCount`](crate::ipc::port::RightCount)), message queues are
//!   lock-free and delivered in `(stamp, seq)` order
//!   ([`LockFreeQueue`](crate::ipc::lockfree::LockFreeQueue)), and
//!   out-of-line regions at or above [`OOL_INLINE_THRESHOLD`] move by
//!   page-table remap (`vm_remap_pages`) instead of byte copy, falling
//!   back to an inline copy when the host refuses the remap.
//!
//! The typed API ([`MachIpc::alloc_receive`], [`MachIpc::insert_send`],
//! [`MachIpc::send`], [`MachIpc::receive`], ...) is the supported
//! surface; the old name-based free functions remain as thin deprecated
//! shims for out-of-tree callers.

use std::collections::BTreeMap;

use bytes::Bytes;
use cider_abi::ids::PortName;
use cider_abi::rights::{ReceiveRight, SendOnceRight, SendRight};

use crate::api::{Event, ForeignKernelApi, ZoneHandle};
use crate::ipc::message::{
    notify_ids, Message, PortDescriptor, PortDisposition, ReceivedMessage,
    TransitKind, TransitRight, UserMessage, OOL_INLINE_THRESHOLD,
    OOL_PAGE_BYTES,
};
use crate::ipc::port::{KernelObject, Port, PortId, RightType, SpaceId};
use crate::ipc::space::IpcSpace;
use crate::kern_return::{KernResult, KernReturn};

/// Counters the benchmarks and tests observe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IpcStats {
    /// Messages successfully queued.
    pub msgs_sent: u64,
    /// Messages successfully received.
    pub msgs_received: u64,
    /// Payload bytes moved.
    pub bytes_moved: u64,
    /// Port rights transferred in message bodies.
    pub rights_transferred: u64,
    /// No-senders notifications fired.
    pub no_senders_fired: u64,
    /// Out-of-line bytes moved by page remap instead of copy (v2 only).
    pub ool_bytes_remapped: u64,
}

/// The Mach IPC subsystem state.
#[derive(Debug)]
pub struct MachIpc {
    ports: BTreeMap<u64, Port>,
    spaces: BTreeMap<u64, IpcSpace>,
    next_port: u64,
    next_space: u64,
    lock: Option<crate::api::LckMtx>,
    ports_zone: Option<ZoneHandle>,
    v2: bool,
    /// Observable statistics.
    pub stats: IpcStats,
}

impl Default for MachIpc {
    fn default() -> Self {
        Self::new()
    }
}

impl MachIpc {
    /// Creates the subsystem without kernel resources; call
    /// [`MachIpc::bootstrap`] before use.
    pub fn new() -> MachIpc {
        MachIpc {
            ports: BTreeMap::new(),
            spaces: BTreeMap::new(),
            next_port: 1,
            next_space: 1,
            lock: None,
            ports_zone: None,
            v2: false,
            stats: IpcStats::default(),
        }
    }

    /// Acquires kernel resources (zones, locks) through the foreign API —
    /// XNU's `ipc_bootstrap`.
    pub fn bootstrap(&mut self, api: &mut dyn ForeignKernelApi) {
        self.lock = Some(api.lck_mtx_alloc());
        self.ports_zone = Some(api.zinit("ipc.ports", 168));
        api.kprintf("mach_ipc: bootstrap complete");
    }

    /// Switches the message path between v1 (lock-coarse, copy-always)
    /// and v2 (lock-free queues, OOL remap). Off by default; flipping it
    /// mid-run only affects subsequent operations.
    pub fn set_v2(&mut self, on: bool) {
        self.v2 = on;
    }

    /// Whether the v2 message path is active.
    pub fn v2_enabled(&self) -> bool {
        self.v2
    }

    fn with_lock<R>(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        f: impl FnOnce(&mut Self, &mut dyn ForeignKernelApi) -> R,
    ) -> R {
        if let Some(l) = self.lock {
            api.lck_mtx_lock(l);
        }
        let r = f(self, api);
        if let Some(l) = self.lock {
            api.lck_mtx_unlock(l);
        }
        r
    }

    // ------------------------------------------------------------------
    // Spaces and ports.
    // ------------------------------------------------------------------

    /// Creates an IPC space (one per task).
    pub fn create_space(&mut self) -> SpaceId {
        let id = SpaceId(self.next_space);
        self.next_space += 1;
        self.spaces.insert(id.0, IpcSpace::new(id));
        id
    }

    /// Tears down a space: all its receive rights die, all its send
    /// references are released.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for unknown spaces.
    pub fn destroy_space(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        space: SpaceId,
    ) -> KernResult<()> {
        let entries: Vec<(PortName, crate::ipc::space::NameEntry)> =
            self.space(space)?.iter().collect();
        for (name, entry) in entries {
            match entry.right {
                RightType::Receive => {
                    let _ = self.port_destroy(api, space, name);
                }
                RightType::Send => {
                    for _ in 0..entry.urefs {
                        let _ = self.port_deallocate(api, space, name);
                    }
                }
                RightType::SendOnce | RightType::DeadName => {
                    let _ = self.port_deallocate(api, space, name);
                }
            }
        }
        self.spaces.remove(&space.0);
        Ok(())
    }

    fn space(&self, id: SpaceId) -> KernResult<&IpcSpace> {
        self.spaces.get(&id.0).ok_or(KernReturn::InvalidArgument)
    }

    fn space_mut(&mut self, id: SpaceId) -> KernResult<&mut IpcSpace> {
        self.spaces
            .get_mut(&id.0)
            .ok_or(KernReturn::InvalidArgument)
    }

    fn port(&self, id: PortId) -> KernResult<&Port> {
        self.ports.get(&id.0).ok_or(KernReturn::InvalidName)
    }

    fn port_mut(&mut self, id: PortId) -> KernResult<&mut Port> {
        self.ports.get_mut(&id.0).ok_or(KernReturn::InvalidName)
    }

    /// `mach_port_allocate(MACH_PORT_RIGHT_RECEIVE)`: creates a port and
    /// returns its typed receive right.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for unknown spaces, `ResourceShortage` on zone
    /// exhaustion.
    pub fn alloc_receive(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        space: SpaceId,
    ) -> KernResult<ReceiveRight> {
        self.with_lock(api, |ipc, api| {
            ipc.space(space)?;
            if let Some(z) = ipc.ports_zone {
                // NULL from zalloc is zone exhaustion: no port element
                // can be built, the classic XNU resource failure.
                if api.zalloc(z) == 0 {
                    return Err(KernReturn::ResourceShortage);
                }
            }
            let id = PortId(ipc.next_port);
            ipc.next_port += 1;
            ipc.ports.insert(id.0, Port::new(id, space));
            Ok(ReceiveRight::from_name(
                ipc.space_mut(space)
                    .expect("checked above")
                    .insert_new(id, RightType::Receive),
            ))
        })
    }

    /// Resolves a raw name (from trap registers or the wire) into a
    /// validated [`ReceiveRight`].
    ///
    /// # Errors
    ///
    /// `InvalidName` for unknown names, `InvalidRight` when the name does
    /// not denote a receive right.
    pub fn receive_right(
        &self,
        space: SpaceId,
        name: PortName,
    ) -> KernResult<ReceiveRight> {
        let entry = self.space(space)?.lookup(name)?;
        if entry.right != RightType::Receive {
            return Err(KernReturn::InvalidRight);
        }
        Ok(ReceiveRight::from_name(name))
    }

    /// Resolves a raw name into a validated [`SendRight`].
    ///
    /// # Errors
    ///
    /// `InvalidName` for unknown names, `InvalidRight` when the name does
    /// not denote a send right.
    pub fn send_right(
        &self,
        space: SpaceId,
        name: PortName,
    ) -> KernResult<SendRight> {
        let entry = self.space(space)?.lookup(name)?;
        if entry.right != RightType::Send {
            return Err(KernReturn::InvalidRight);
        }
        Ok(SendRight::from_name(name))
    }

    /// Binds a kernel object to a port (task self, I/O Kit connection).
    ///
    /// # Errors
    ///
    /// `InvalidName` for unknown names.
    pub fn set_kobject(
        &mut self,
        space: SpaceId,
        name: PortName,
        ko: KernelObject,
    ) -> KernResult<()> {
        let entry = self.space(space)?.lookup(name)?;
        self.port_mut(entry.port)?.kobject = ko;
        Ok(())
    }

    /// The kernel object bound to the port a name denotes.
    ///
    /// # Errors
    ///
    /// `InvalidName` for unknown names.
    pub fn kobject_of(
        &self,
        space: SpaceId,
        name: PortName,
    ) -> KernResult<KernelObject> {
        let entry = self.space(space)?.lookup(name)?;
        Ok(self.port(entry.port)?.kobject)
    }

    /// Sets a port's queue limit (`mach_port_set_attributes`).
    ///
    /// # Errors
    ///
    /// `InvalidRight` if the name is not a receive right; `InvalidArgument`
    /// for limits above `QLIMIT_MAX`.
    pub fn set_qlimit(
        &mut self,
        space: SpaceId,
        name: PortName,
        qlimit: usize,
    ) -> KernResult<()> {
        if qlimit > crate::ipc::port::QLIMIT_MAX {
            return Err(KernReturn::InvalidArgument);
        }
        let entry = self.space(space)?.lookup(name)?;
        if entry.right != RightType::Receive {
            return Err(KernReturn::InvalidRight);
        }
        self.port_mut(entry.port)?.qlimit = qlimit;
        Ok(())
    }

    /// Mints a send right from a receive right in the same space
    /// (`mach_port_insert_right(..., MACH_MSG_TYPE_MAKE_SEND)`).
    ///
    /// # Errors
    ///
    /// `InvalidName`/`InvalidRight` if the receive right is stale.
    pub fn insert_send(
        &mut self,
        space: SpaceId,
        recv: ReceiveRight,
    ) -> KernResult<SendRight> {
        let entry = self.space(space)?.lookup(recv.name())?;
        if entry.right != RightType::Receive {
            return Err(KernReturn::InvalidRight);
        }
        let port = self.port_mut(entry.port)?;
        port.srights.inc();
        port.make_send_count += 1;
        Ok(SendRight::from_name(
            self.space_mut(space)?.add_send_right(entry.port),
        ))
    }

    /// Mints a send-once right from a receive right in the same space
    /// (`MACH_MSG_TYPE_MAKE_SEND_ONCE`).
    ///
    /// # Errors
    ///
    /// `InvalidName`/`InvalidRight` if the receive right is stale.
    pub fn insert_send_once(
        &mut self,
        space: SpaceId,
        recv: ReceiveRight,
    ) -> KernResult<SendOnceRight> {
        let entry = self.space(space)?.lookup(recv.name())?;
        if entry.right != RightType::Receive {
            return Err(KernReturn::InvalidRight);
        }
        self.port_mut(entry.port)?.sorights.inc();
        Ok(SendOnceRight::from_name(
            self.space_mut(space)?.add_send_once_right(entry.port),
        ))
    }

    /// Copies a send right from one space into another — how launchd
    /// hands service ports to clients.
    ///
    /// # Errors
    ///
    /// `InvalidRight` if the right is stale, `InvalidCapability` if the
    /// port died.
    pub fn copy_send(
        &mut self,
        from: SpaceId,
        send: SendRight,
        to: SpaceId,
    ) -> KernResult<SendRight> {
        let entry = self.space(from)?.lookup(send.name())?;
        if entry.right != RightType::Send {
            return Err(KernReturn::InvalidRight);
        }
        if self.port(entry.port)?.is_dead() {
            return Err(KernReturn::InvalidCapability);
        }
        self.port_mut(entry.port)?.srights.inc();
        Ok(SendRight::from_name(
            self.space_mut(to)?.add_send_right(entry.port),
        ))
    }

    /// Releases one user reference on a send/send-once/dead name
    /// (`mach_port_deallocate`).
    ///
    /// # Errors
    ///
    /// `InvalidName`/`InvalidRight` per the space's rules.
    pub fn port_deallocate(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        space: SpaceId,
        name: PortName,
    ) -> KernResult<()> {
        let before = self.space_mut(space)?.release(name)?;
        match before.right {
            RightType::Send => {
                let pid = before.port;
                {
                    let port = self.port_mut(pid)?;
                    if !port.is_dead() {
                        port.srights.dec();
                    }
                }
                self.maybe_fire_no_senders(api, pid);
            }
            RightType::SendOnce => {
                let port = self.port_mut(before.port)?;
                if !port.is_dead() {
                    port.sorights.dec();
                }
            }
            RightType::DeadName => {}
            RightType::Receive => unreachable!("release rejects receive"),
        }
        Ok(())
    }

    /// Destroys a receive right, killing the port: queued messages are
    /// destroyed (their carried rights released) and every other space's
    /// rights become dead names.
    ///
    /// # Errors
    ///
    /// `InvalidRight` if `name` is not a receive right.
    pub fn port_destroy(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        space: SpaceId,
        name: PortName,
    ) -> KernResult<()> {
        let entry = self.space(space)?.lookup(name)?;
        if entry.right != RightType::Receive {
            return Err(KernReturn::InvalidRight);
        }
        self.space_mut(space)?.remove(name)?;
        self.kill_port(api, entry.port);
        Ok(())
    }

    fn kill_port(&mut self, api: &mut dyn ForeignKernelApi, pid: PortId) {
        // Drain the queue, destroying carried rights (may cascade).
        let msgs = {
            let Ok(port) = self.port_mut(pid) else { return };
            port.receiver = None;
            port.msgs.drain().collect::<Vec<_>>()
        };
        for m in msgs {
            self.destroy_message_rights(api, m);
        }
        // Convert all rights across spaces into dead names.
        let space_ids: Vec<u64> = self.spaces.keys().copied().collect();
        for sid in space_ids {
            if let Some(s) = self.spaces.get_mut(&sid) {
                s.make_dead(pid);
            }
        }
        if let Ok(port) = self.port_mut(pid) {
            port.srights.set(0);
            port.sorights.set(0);
            port.ns_notify = None;
        }
        api.kprintf("mach_ipc: port died");
    }

    fn destroy_message_rights(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        m: Message,
    ) {
        let mut rights = m.ports;
        if let Some(r) = m.reply {
            rights.push(r);
        }
        for r in rights {
            match r.kind {
                TransitKind::Send => {
                    let fire = {
                        if let Ok(p) = self.port_mut(r.port) {
                            if !p.is_dead() {
                                p.srights.dec();
                            }
                            true
                        } else {
                            false
                        }
                    };
                    if fire {
                        self.maybe_fire_no_senders(api, r.port);
                    }
                }
                TransitKind::SendOnce => {
                    if let Ok(p) = self.port_mut(r.port) {
                        if !p.is_dead() {
                            p.sorights.dec();
                        }
                    }
                }
                TransitKind::Receive => {
                    // A receive right destroyed in transit kills its port.
                    self.kill_port(api, r.port);
                }
            }
        }
    }

    /// Arms a no-senders notification on a receive right: when the port's
    /// send-right count drops to zero, a `MACH_NOTIFY_NO_SENDERS` message
    /// is sent using the provided send-once right.
    ///
    /// # Errors
    ///
    /// `InvalidRight` if `recv_name` is not a receive right or
    /// `notify_name` is not a send-once right.
    pub fn arm_no_senders(
        &mut self,
        space: SpaceId,
        recv_name: PortName,
        notify_name: PortName,
    ) -> KernResult<()> {
        let recv = self.space(space)?.lookup(recv_name)?;
        if recv.right != RightType::Receive {
            return Err(KernReturn::InvalidRight);
        }
        let notify = self.space(space)?.lookup(notify_name)?;
        if notify.right != RightType::SendOnce {
            return Err(KernReturn::InvalidRight);
        }
        self.port_mut(recv.port)?.ns_notify = Some((space, notify_name));
        Ok(())
    }

    fn maybe_fire_no_senders(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        pid: PortId,
    ) {
        let fire = {
            let Ok(port) = self.port(pid) else { return };
            port.srights.get() == 0
                && !port.is_dead()
                && port.ns_notify.is_some()
        };
        if !fire {
            return;
        }
        let (sid, notify_name) = {
            let port = self.port_mut(pid).expect("checked above");
            port.ns_notify.take().expect("checked above")
        };
        // Consume the armed send-once right by sending the notification.
        let notify = UserMessage {
            remote_port: notify_name,
            remote_disposition: PortDisposition::MoveSendOnce,
            local_port: PortName::NULL,
            local_disposition: PortDisposition::MakeSendOnce,
            msg_id: notify_ids::NO_SENDERS,
            body: Bytes::new(),
            ports: Vec::new(),
            ool: Vec::new(),
        };
        if self.send(api, sid, notify).is_ok() {
            self.stats.no_senders_fired += 1;
        }
    }

    // ------------------------------------------------------------------
    // Message transfer.
    // ------------------------------------------------------------------

    fn take_right(
        &mut self,
        space: SpaceId,
        desc: PortDescriptor,
    ) -> KernResult<TransitRight> {
        let entry = self.space(space)?.lookup(desc.name)?;
        match desc.disposition {
            PortDisposition::CopySend => {
                if entry.right != RightType::Send {
                    return Err(KernReturn::InvalidRight);
                }
                self.port_mut(entry.port)?.srights.inc();
                Ok(TransitRight {
                    port: entry.port,
                    kind: TransitKind::Send,
                })
            }
            PortDisposition::MoveSend => {
                if entry.right != RightType::Send {
                    return Err(KernReturn::InvalidRight);
                }
                // The reference moves from the space into the message;
                // the system-wide count is unchanged.
                self.space_mut(space)?.release(desc.name)?;
                Ok(TransitRight {
                    port: entry.port,
                    kind: TransitKind::Send,
                })
            }
            PortDisposition::MakeSend => {
                if entry.right != RightType::Receive {
                    return Err(KernReturn::InvalidRight);
                }
                let port = self.port_mut(entry.port)?;
                port.srights.inc();
                port.make_send_count += 1;
                Ok(TransitRight {
                    port: entry.port,
                    kind: TransitKind::Send,
                })
            }
            PortDisposition::MakeSendOnce => {
                if entry.right != RightType::Receive {
                    return Err(KernReturn::InvalidRight);
                }
                self.port_mut(entry.port)?.sorights.inc();
                Ok(TransitRight {
                    port: entry.port,
                    kind: TransitKind::SendOnce,
                })
            }
            PortDisposition::MoveSendOnce => {
                if entry.right != RightType::SendOnce {
                    return Err(KernReturn::InvalidRight);
                }
                self.space_mut(space)?.release(desc.name)?;
                Ok(TransitRight {
                    port: entry.port,
                    kind: TransitKind::SendOnce,
                })
            }
            PortDisposition::MoveReceive => {
                if entry.right != RightType::Receive {
                    return Err(KernReturn::InvalidRight);
                }
                self.space_mut(space)?.remove(desc.name)?;
                self.port_mut(entry.port)?.receiver = None;
                Ok(TransitRight {
                    port: entry.port,
                    kind: TransitKind::Receive,
                })
            }
        }
    }

    /// `mach_msg(MACH_SEND_MSG)`: validates the destination right,
    /// processes dispositions, and queues the message.
    ///
    /// Under v2 the subsystem mutex is skipped (the queue is lock-free
    /// and rights are atomic), inline payload is charged through
    /// `copyin`, and out-of-line regions at or above
    /// [`OOL_INLINE_THRESHOLD`] move by page remap with inline-copy
    /// fallback.
    ///
    /// # Errors
    ///
    /// `SendInvalidDest` for dead or invalid destinations,
    /// `SendTooLarge` when the queue is at its limit,
    /// `InvalidRight` for disposition mismatches.
    pub fn send(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        space: SpaceId,
        msg: UserMessage,
    ) -> KernResult<()> {
        if self.v2 {
            self.send_inner(api, space, msg, true)
        } else {
            self.with_lock(api, |ipc, api| {
                ipc.send_inner(api, space, msg, false)
            })
        }
    }

    fn send_inner(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        space: SpaceId,
        msg: UserMessage,
        v2: bool,
    ) -> KernResult<()> {
        let dest = self
            .space(space)?
            .lookup(msg.remote_port)
            .map_err(|_| KernReturn::SendInvalidDest)?;
        let dest_port = dest.port;
        match dest.right {
            RightType::Send | RightType::SendOnce => {}
            RightType::DeadName => return Err(KernReturn::SendInvalidDest),
            RightType::Receive => return Err(KernReturn::InvalidRight),
        }
        if self.port(dest_port)?.is_dead() {
            return Err(KernReturn::SendInvalidDest);
        }
        if self.port(dest_port)?.msgs.len() >= self.port(dest_port)?.qlimit {
            return Err(KernReturn::SendTooLarge);
        }

        // Reply port.
        let reply = if msg.local_port.is_valid() {
            Some(self.take_right(
                space,
                PortDescriptor {
                    name: msg.local_port,
                    disposition: msg.local_disposition,
                },
            )?)
        } else {
            None
        };

        // Body descriptors.
        let mut ports = Vec::with_capacity(msg.ports.len());
        for desc in &msg.ports {
            ports.push(self.take_right(space, *desc)?);
        }
        self.stats.rights_transferred +=
            (ports.len() + reply.is_some() as usize) as u64;

        // Destination disposition: send-once rights are consumed by the
        // send; moved send rights leave the sender's table.
        match msg.remote_disposition {
            PortDisposition::MoveSend => {
                self.space_mut(space)?.release(msg.remote_port)?;
                self.port_mut(dest_port)?.srights.dec();
            }
            PortDisposition::MoveSendOnce => {
                if dest.right != RightType::SendOnce {
                    return Err(KernReturn::InvalidRight);
                }
                self.space_mut(space)?.release(msg.remote_port)?;
                self.port_mut(dest_port)?.sorights.dec();
            }
            _ => {
                if dest.right == RightType::SendOnce {
                    // Send-once rights are always consumed.
                    self.space_mut(space)?.release(msg.remote_port)?;
                    self.port_mut(dest_port)?.sorights.dec();
                }
            }
        }

        if v2 {
            // v2 pays its boundary costs explicitly: inline payload is
            // copied in; OOL regions over the threshold move by remapping
            // whole pages, falling back to a copy if the host refuses.
            api.copyin(msg.body.len() as u64);
            for blob in &msg.ool {
                let len = blob.len() as u64;
                if blob.len() >= OOL_INLINE_THRESHOLD {
                    let pages = len.div_ceil(OOL_PAGE_BYTES);
                    if api.vm_remap_pages(pages) {
                        self.stats.ool_bytes_remapped += len;
                        continue;
                    }
                }
                api.copyin(len);
            }
        }

        let queued = Message {
            msg_id: msg.msg_id,
            body: msg.body,
            reply,
            ports,
            ool: msg.ool,
            sender: space.0,
        };
        self.stats.bytes_moved += queued.size() as u64;
        self.stats.msgs_sent += 1;
        if v2 {
            // Lock-free enqueue: the producer's claim is stamped with its
            // virtual-time instant; delivery follows (stamp, seq) order.
            let stamp = api.mach_absolute_time();
            self.port_mut(dest_port)?.msgs.enqueue(stamp, queued);
        } else {
            self.port_mut(dest_port)?.msgs.enqueue_tail(queued);
        }
        api.thread_wakeup(Event(0x1000_0000 + dest_port.0));
        // A moved send right may have been the last one.
        if msg.remote_disposition == PortDisposition::MoveSend {
            self.maybe_fire_no_senders(api, dest_port);
        }
        Ok(())
    }

    /// `mach_msg(MACH_RCV_MSG)` with zero timeout: dequeues the next
    /// message on the receive right, materialising carried rights as
    /// names in the receiving space. Under v2 the subsystem mutex is
    /// skipped and the body copy-out is charged through `copyin`.
    ///
    /// # Errors
    ///
    /// `RcvInvalidName` if the right is stale;
    /// `RcvTimedOut` when the queue is empty (callers block through the
    /// foreign API and retry).
    pub fn receive(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        space: SpaceId,
        recv: ReceiveRight,
    ) -> KernResult<ReceivedMessage> {
        if self.v2 {
            let got = self.msg_receive_locked(api, space, recv.name())?;
            api.copyin(got.body.len() as u64);
            Ok(got)
        } else {
            self.with_lock(api, |ipc, api| {
                ipc.msg_receive_locked(api, space, recv.name())
            })
        }
    }

    fn msg_receive_locked(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        space: SpaceId,
        recv_name: PortName,
    ) -> KernResult<ReceivedMessage> {
        let entry = self
            .space(space)?
            .lookup(recv_name)
            .map_err(|_| KernReturn::RcvInvalidName)?;
        if entry.right != RightType::Receive {
            return Err(KernReturn::RcvInvalidName);
        }
        let pid = entry.port;
        let Some(msg) = self.port_mut(pid)?.msgs.dequeue_head() else {
            api.assert_wait(Event(0x1000_0000 + pid.0));
            let _ = api.thread_block();
            return Err(KernReturn::RcvTimedOut);
        };

        let reply_port = match msg.reply {
            Some(r) => self.materialise(space, r)?,
            None => PortName::NULL,
        };
        let mut names = Vec::with_capacity(msg.ports.len());
        for r in msg.ports {
            names.push(self.materialise(space, r)?);
        }
        self.stats.msgs_received += 1;
        Ok(ReceivedMessage {
            msg_id: msg.msg_id,
            body: msg.body,
            reply_port,
            ports: names,
            ool: msg.ool,
        })
    }

    fn materialise(
        &mut self,
        space: SpaceId,
        r: TransitRight,
    ) -> KernResult<PortName> {
        if r.kind == TransitKind::Receive {
            // A port whose receive right is in transit reads as
            // receiver-less, but it is alive: the right lands here.
            self.port_mut(r.port)?.receiver = Some(space);
            return Ok(self
                .space_mut(space)?
                .insert_new(r.port, RightType::Receive));
        }
        if self.port(r.port)?.is_dead() {
            // The right died in transit: the receiver gets a dead name.
            return Ok(self
                .space_mut(space)?
                .insert_new(r.port, RightType::DeadName));
        }
        Ok(match r.kind {
            TransitKind::Send => self.space_mut(space)?.add_send_right(r.port),
            TransitKind::SendOnce => {
                self.space_mut(space)?.add_send_once_right(r.port)
            }
            TransitKind::Receive => unreachable!("handled above"),
        })
    }

    // ------------------------------------------------------------------
    // Deprecated name-based shims (pre-v2 API).
    // ------------------------------------------------------------------

    /// Old name-based allocation.
    #[deprecated(note = "use the typed `MachIpc::alloc_receive`")]
    pub fn port_allocate(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        space: SpaceId,
    ) -> KernResult<PortName> {
        self.alloc_receive(api, space).map(|r| r.name())
    }

    /// Old name-based send-right minting.
    #[deprecated(note = "use the typed `MachIpc::insert_send`")]
    pub fn make_send(
        &mut self,
        space: SpaceId,
        recv_name: PortName,
    ) -> KernResult<PortName> {
        let recv = self.receive_right(space, recv_name)?;
        self.insert_send(space, recv).map(|s| s.name())
    }

    /// Old name-based cross-space copy.
    #[deprecated(note = "use the typed `MachIpc::copy_send`")]
    pub fn copy_send_to_space(
        &mut self,
        from: SpaceId,
        name: PortName,
        to: SpaceId,
    ) -> KernResult<PortName> {
        let send = self.send_right(from, name)?;
        self.copy_send(from, send, to).map(|s| s.name())
    }

    /// Old spelling of [`MachIpc::send`].
    #[deprecated(note = "use `MachIpc::send`")]
    pub fn msg_send(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        space: SpaceId,
        msg: UserMessage,
    ) -> KernResult<()> {
        self.send(api, space, msg)
    }

    /// Old name-based receive.
    #[deprecated(note = "use the typed `MachIpc::receive`")]
    pub fn msg_receive(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        space: SpaceId,
        recv_name: PortName,
    ) -> KernResult<ReceivedMessage> {
        // The typed path re-validates, so errors keep the RCV convention.
        self.receive(api, space, ReceiveRight::from_name(recv_name))
    }

    // ------------------------------------------------------------------
    // Observability.
    // ------------------------------------------------------------------

    /// Messages currently queued on the port a receive-right name denotes.
    ///
    /// # Errors
    ///
    /// `RcvInvalidName` if the name is not a receive right.
    pub fn queued(&self, space: SpaceId, name: PortName) -> KernResult<usize> {
        let entry = self.space(space)?.lookup(name)?;
        if entry.right != RightType::Receive {
            return Err(KernReturn::RcvInvalidName);
        }
        Ok(self.port(entry.port)?.msgs.len())
    }

    /// The names and right kinds held by a space (empty for unknown
    /// spaces) — observability for tests and debuggers.
    pub fn space_names(&self, space: SpaceId) -> Vec<(PortName, RightType)> {
        self.spaces
            .get(&space.0)
            .map(|s| s.iter().map(|(n, e)| (n, e.right)).collect())
            .unwrap_or_default()
    }

    /// Number of live (non-dead) ports.
    pub fn live_ports(&self) -> usize {
        self.ports.values().filter(|p| !p.is_dead()).count()
    }

    /// Verifies the port-right conservation invariant: for every live
    /// port, its system-wide send / send-once counts equal the sum of
    /// space entries plus rights in transit inside queued messages.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic if any port's books don't balance — used
    /// by tests and property tests.
    pub fn check_invariants(&self) {
        for port in self.ports.values() {
            if port.is_dead() {
                continue;
            }
            let mut send = 0u32;
            let mut sonce = 0u32;
            for s in self.spaces.values() {
                for (_, e) in s.iter() {
                    if e.port == port.id {
                        match e.right {
                            RightType::Send => send += e.urefs,
                            RightType::SendOnce => sonce += e.urefs,
                            _ => {}
                        }
                    }
                }
            }
            for p in self.ports.values() {
                for m in p.msgs.iter() {
                    for r in m.ports.iter().chain(m.reply.as_ref()) {
                        if r.port == port.id {
                            match r.kind {
                                TransitKind::Send => send += 1,
                                TransitKind::SendOnce => sonce += 1,
                                TransitKind::Receive => {}
                            }
                        }
                    }
                }
            }
            assert_eq!(
                port.srights.get(),
                send,
                "send-right count mismatch on {:?}",
                port.id
            );
            assert_eq!(
                port.sorights.get(),
                sonce,
                "send-once count mismatch on {:?}",
                port.id
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MockForeignKernel;

    fn setup() -> (MachIpc, MockForeignKernel) {
        let mut api = MockForeignKernel::new();
        let mut ipc = MachIpc::new();
        ipc.bootstrap(&mut api);
        (ipc, api)
    }

    #[test]
    fn allocate_and_send_receive() {
        let (mut ipc, mut api) = setup();
        let server = ipc.create_space();
        let client = ipc.create_space();
        let recv = ipc.alloc_receive(&mut api, server).unwrap();
        let send_srv = ipc.insert_send(server, recv).unwrap();
        let send_cli = ipc.copy_send(server, send_srv, client).unwrap();

        let msg = UserMessage::simple(send_cli.name(), 42, &b"hello"[..]);
        ipc.send(&mut api, client, msg).unwrap();
        assert_eq!(ipc.queued(server, recv.name()).unwrap(), 1);

        let got = ipc.receive(&mut api, server, recv).unwrap();
        assert_eq!(got.msg_id, 42);
        assert_eq!(&got.body[..], b"hello");
        assert_eq!(got.reply_port, PortName::NULL);
        ipc.check_invariants();
    }

    #[test]
    fn receive_empty_times_out_and_blocks() {
        let (mut ipc, mut api) = setup();
        let s = ipc.create_space();
        let recv = ipc.alloc_receive(&mut api, s).unwrap();
        assert_eq!(
            ipc.receive(&mut api, s, recv).unwrap_err(),
            KernReturn::RcvTimedOut
        );
        // The caller was parked on the port's wait event.
        assert_eq!(api.sleepers.len(), 1);
    }

    #[test]
    fn reply_port_roundtrip() {
        let (mut ipc, mut api) = setup();
        let server = ipc.create_space();
        let client = ipc.create_space();
        let srv_recv = ipc.alloc_receive(&mut api, server).unwrap();
        let srv_send = ipc.insert_send(server, srv_recv).unwrap();
        let cli_send = ipc.copy_send(server, srv_send, client).unwrap();
        let cli_reply = ipc.alloc_receive(&mut api, client).unwrap();

        let mut msg = UserMessage::simple(cli_send.name(), 7, &b"req"[..]);
        msg.local_port = cli_reply.name();
        ipc.send(&mut api, client, msg).unwrap();
        ipc.check_invariants();

        let req = ipc.receive(&mut api, server, srv_recv).unwrap();
        assert!(req.reply_port.is_valid());

        // Server answers through the send-once right.
        let mut resp = UserMessage::simple(req.reply_port, 8, &b"resp"[..]);
        resp.remote_disposition = PortDisposition::MoveSendOnce;
        ipc.send(&mut api, server, resp).unwrap();
        let got = ipc.receive(&mut api, client, cli_reply).unwrap();
        assert_eq!(got.msg_id, 8);
        assert_eq!(&got.body[..], b"resp");
        ipc.check_invariants();
    }

    #[test]
    fn port_right_transfer_in_body() {
        let (mut ipc, mut api) = setup();
        let a = ipc.create_space();
        let b = ipc.create_space();
        // a creates a port and sends b a send right to it.
        let chan = ipc.alloc_receive(&mut api, a).unwrap();
        let b_recv = ipc.alloc_receive(&mut api, b).unwrap();
        let b_send_in_b = ipc.insert_send(b, b_recv).unwrap();
        let b_send_in_a = ipc.copy_send(b, b_send_in_b, a).unwrap();

        let mut msg = UserMessage::simple(b_send_in_a.name(), 1, &b""[..]);
        msg.ports.push(PortDescriptor {
            name: chan.name(),
            disposition: PortDisposition::MakeSend,
        });
        ipc.send(&mut api, a, msg).unwrap();
        ipc.check_invariants();

        let got = ipc.receive(&mut api, b, b_recv).unwrap();
        assert_eq!(got.ports.len(), 1);
        // b can now send to a's port.
        ipc.send(
            &mut api,
            b,
            UserMessage::simple(got.ports[0], 2, &b"via right"[..]),
        )
        .unwrap();
        let m = ipc.receive(&mut api, a, chan).unwrap();
        assert_eq!(m.msg_id, 2);
        ipc.check_invariants();
    }

    #[test]
    fn move_receive_right() {
        let (mut ipc, mut api) = setup();
        let a = ipc.create_space();
        let b = ipc.create_space();
        let chan = ipc.alloc_receive(&mut api, a).unwrap();
        let b_recv = ipc.alloc_receive(&mut api, b).unwrap();
        let to_b = {
            let s = ipc.insert_send(b, b_recv).unwrap();
            ipc.copy_send(b, s, a).unwrap()
        };
        let mut msg = UserMessage::simple(to_b.name(), 9, &b""[..]);
        msg.ports.push(PortDescriptor {
            name: chan.name(),
            disposition: PortDisposition::MoveReceive,
        });
        ipc.send(&mut api, a, msg).unwrap();
        let got = ipc.receive(&mut api, b, b_recv).unwrap();
        let new_recv = ipc.receive_right(b, got.ports[0]).unwrap();
        // b now owns the receive right; a's name is gone.
        assert!(ipc.queued(b, new_recv.name()).is_ok());
        assert!(ipc.queued(a, chan.name()).is_err());
        ipc.check_invariants();
    }

    #[test]
    fn qlimit_enforced() {
        let (mut ipc, mut api) = setup();
        let s = ipc.create_space();
        let recv = ipc.alloc_receive(&mut api, s).unwrap();
        let send = ipc.insert_send(s, recv).unwrap();
        for i in 0..crate::ipc::port::QLIMIT_DEFAULT {
            ipc.send(
                &mut api,
                s,
                UserMessage::simple(send.name(), i as i32, &b""[..]),
            )
            .unwrap();
        }
        assert_eq!(
            ipc.send(
                &mut api,
                s,
                UserMessage::simple(send.name(), 99, &b""[..])
            )
            .unwrap_err(),
            KernReturn::SendTooLarge
        );
        ipc.set_qlimit(s, recv.name(), crate::ipc::port::QLIMIT_MAX)
            .unwrap();
        ipc.send(&mut api, s, UserMessage::simple(send.name(), 99, &b""[..]))
            .unwrap();
        ipc.check_invariants();
    }

    #[test]
    fn dead_port_send_fails_and_names_go_dead() {
        let (mut ipc, mut api) = setup();
        let srv = ipc.create_space();
        let cli = ipc.create_space();
        let recv = ipc.alloc_receive(&mut api, srv).unwrap();
        let s0 = ipc.insert_send(srv, recv).unwrap();
        let s1 = ipc.copy_send(srv, s0, cli).unwrap();
        ipc.port_destroy(&mut api, srv, recv.name()).unwrap();
        assert_eq!(
            ipc.send(
                &mut api,
                cli,
                UserMessage::simple(s1.name(), 0, &b""[..])
            )
            .unwrap_err(),
            KernReturn::SendInvalidDest
        );
        ipc.check_invariants();
    }

    #[test]
    fn no_senders_notification_fires() {
        let (mut ipc, mut api) = setup();
        let srv = ipc.create_space();
        let service = ipc.alloc_receive(&mut api, srv).unwrap();
        let notify = ipc.alloc_receive(&mut api, srv).unwrap();
        // Arm: mint a send-once right targeting the notify port.
        let sonce = ipc.insert_send_once(srv, notify).unwrap();
        ipc.arm_no_senders(srv, service.name(), sonce.name())
            .unwrap();

        // One send right exists, then is dropped.
        let send = ipc.insert_send(srv, service).unwrap();
        ipc.port_deallocate(&mut api, srv, send.name()).unwrap();

        assert_eq!(ipc.stats.no_senders_fired, 1);
        let got = ipc.receive(&mut api, srv, notify).unwrap();
        assert_eq!(got.msg_id, notify_ids::NO_SENDERS);
        ipc.check_invariants();
    }

    #[test]
    fn destroy_space_releases_everything() {
        let (mut ipc, mut api) = setup();
        let a = ipc.create_space();
        let b = ipc.create_space();
        let recv = ipc.alloc_receive(&mut api, a).unwrap();
        let s = ipc.insert_send(a, recv).unwrap();
        ipc.copy_send(a, s, b).unwrap();
        assert_eq!(ipc.live_ports(), 1);
        ipc.destroy_space(&mut api, a).unwrap();
        // Port died with its receive right.
        assert_eq!(ipc.live_ports(), 0);
        ipc.check_invariants();
    }

    #[test]
    fn copy_send_disposition_preserves_sender_right() {
        let (mut ipc, mut api) = setup();
        let s = ipc.create_space();
        let recv = ipc.alloc_receive(&mut api, s).unwrap();
        let send = ipc.insert_send(s, recv).unwrap();
        ipc.send(&mut api, s, UserMessage::simple(send.name(), 1, &b""[..]))
            .unwrap();
        // CopySend: the sender still holds its right.
        assert!(ipc.send_right(s, send.name()).is_ok());
        ipc.check_invariants();
    }

    #[test]
    fn stats_track_traffic() {
        let (mut ipc, mut api) = setup();
        let s = ipc.create_space();
        let recv = ipc.alloc_receive(&mut api, s).unwrap();
        let send = ipc.insert_send(s, recv).unwrap();
        ipc.send(
            &mut api,
            s,
            UserMessage::simple(send.name(), 1, &b"xyz"[..]),
        )
        .unwrap();
        ipc.receive(&mut api, s, recv).unwrap();
        assert_eq!(ipc.stats.msgs_sent, 1);
        assert_eq!(ipc.stats.msgs_received, 1);
        assert_eq!(ipc.stats.bytes_moved, 3);
    }

    #[test]
    fn typed_resolvers_reject_wrong_kinds() {
        let (mut ipc, mut api) = setup();
        let s = ipc.create_space();
        let recv = ipc.alloc_receive(&mut api, s).unwrap();
        let send = ipc.insert_send(s, recv).unwrap();
        assert_eq!(
            ipc.receive_right(s, send.name()).unwrap_err(),
            KernReturn::InvalidRight
        );
        assert_eq!(
            ipc.send_right(s, recv.name()).unwrap_err(),
            KernReturn::InvalidRight
        );
        assert!(ipc.receive_right(s, recv.name()).is_ok());
        assert!(ipc.send_right(s, send.name()).is_ok());
    }

    #[test]
    fn v2_send_receive_skips_the_subsystem_mutex() {
        let (mut ipc, mut api) = setup();
        ipc.set_v2(true);
        let s = ipc.create_space();
        let recv = ipc.alloc_receive(&mut api, s).unwrap();
        let send = ipc.insert_send(s, recv).unwrap();
        let locks_before = api.lock_ops.len();
        ipc.send(
            &mut api,
            s,
            UserMessage::simple(send.name(), 5, &b"fast"[..]),
        )
        .unwrap();
        let got = ipc.receive(&mut api, s, recv).unwrap();
        assert_eq!(got.msg_id, 5);
        // No lck_mtx traffic on the v2 message path.
        assert_eq!(api.lock_ops.len(), locks_before);
        // Inline payload was charged through copyin (send + receive).
        assert_eq!(api.copied_bytes, 8);
        ipc.check_invariants();
    }

    #[test]
    fn v2_large_ool_remaps_instead_of_copying() {
        let (mut ipc, mut api) = setup();
        ipc.set_v2(true);
        let s = ipc.create_space();
        let recv = ipc.alloc_receive(&mut api, s).unwrap();
        let send = ipc.insert_send(s, recv).unwrap();
        let mut msg = UserMessage::simple(send.name(), 1, &b""[..]);
        msg.ool.push(Bytes::from(vec![0xAB; 16 * 1024]));
        ipc.send(&mut api, s, msg).unwrap();
        assert_eq!(api.remapped_pages, 4);
        assert_eq!(ipc.stats.ool_bytes_remapped, 16 * 1024);
        assert_eq!(api.copied_bytes, 0);
        let got = ipc.receive(&mut api, s, recv).unwrap();
        assert_eq!(got.ool[0].len(), 16 * 1024);
    }

    #[test]
    fn v2_ool_falls_back_to_copy_when_remap_refused() {
        let (mut ipc, mut api) = setup();
        ipc.set_v2(true);
        api.refuse_remap = true;
        let s = ipc.create_space();
        let recv = ipc.alloc_receive(&mut api, s).unwrap();
        let send = ipc.insert_send(s, recv).unwrap();
        let mut msg = UserMessage::simple(send.name(), 1, &b""[..]);
        msg.ool.push(Bytes::from(vec![0xCD; 8192]));
        ipc.send(&mut api, s, msg).unwrap();
        // Degraded gracefully: bytes were copied inline, none remapped.
        assert_eq!(api.remapped_pages, 0);
        assert_eq!(ipc.stats.ool_bytes_remapped, 0);
        assert_eq!(api.copied_bytes, 8192);
        let got = ipc.receive(&mut api, s, recv).unwrap();
        assert_eq!(got.ool[0].len(), 8192);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        let (mut ipc, mut api) = setup();
        let s = ipc.create_space();
        let recv = ipc.port_allocate(&mut api, s).unwrap();
        let send = ipc.make_send(s, recv).unwrap();
        ipc.msg_send(&mut api, s, UserMessage::simple(send, 3, &b"old"[..]))
            .unwrap();
        let got = ipc.msg_receive(&mut api, s, recv).unwrap();
        assert_eq!(got.msg_id, 3);
        assert_eq!(&got.body[..], b"old");
        ipc.check_invariants();
    }
}
