//! `kern_return_t` codes as XNU user and kernel space use them.

use std::fmt;

/// Mach kernel return codes (genuine XNU values for the subset we use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum KernReturn {
    /// Success.
    Success,
    /// Address/argument invalid (`KERN_INVALID_ARGUMENT` = 4).
    InvalidArgument,
    /// No space in the target (`KERN_NO_SPACE` = 3).
    NoSpace,
    /// Resource shortage (`KERN_RESOURCE_SHORTAGE` = 6).
    ResourceShortage,
    /// Named right does not exist (`KERN_INVALID_NAME` = 15).
    InvalidName,
    /// The named right is of the wrong kind (`KERN_INVALID_RIGHT` = 17).
    InvalidRight,
    /// Operation on a dead port (`KERN_INVALID_CAPABILITY` = 20).
    InvalidCapability,
    /// `MACH_SEND_INVALID_DEST` (0x10000003).
    SendInvalidDest,
    /// `MACH_SEND_TOO_LARGE` (0x10000004): queue full.
    SendTooLarge,
    /// `MACH_RCV_TIMED_OUT` (0x10004003): nothing queued.
    RcvTimedOut,
    /// `MACH_RCV_TOO_LARGE` (0x10004004): caller's buffer too small.
    RcvTooLarge,
    /// `MACH_RCV_INVALID_NAME` (0x10004002).
    RcvInvalidName,
    /// MIG bad id (`MIG_BAD_ID` = -303).
    MigBadId,
    /// Generic failure (`KERN_FAILURE` = 5).
    Failure,
}

impl KernReturn {
    /// The raw `kern_return_t` value.
    pub fn as_raw(self) -> i64 {
        match self {
            KernReturn::Success => 0,
            KernReturn::NoSpace => 3,
            KernReturn::InvalidArgument => 4,
            KernReturn::Failure => 5,
            KernReturn::ResourceShortage => 6,
            KernReturn::InvalidName => 15,
            KernReturn::InvalidRight => 17,
            KernReturn::InvalidCapability => 20,
            KernReturn::SendInvalidDest => 0x1000_0003,
            KernReturn::SendTooLarge => 0x1000_0004,
            KernReturn::RcvInvalidName => 0x1000_4002,
            KernReturn::RcvTimedOut => 0x1000_4003,
            KernReturn::RcvTooLarge => 0x1000_4004,
            KernReturn::MigBadId => -303,
        }
    }

    /// Decodes a raw `kern_return_t` back into the typed code. The
    /// inverse of [`KernReturn::as_raw`]; `None` for values outside the
    /// modelled subset (trap handlers treat those as `Failure`).
    pub fn from_raw(raw: i64) -> Option<KernReturn> {
        Some(match raw {
            0 => KernReturn::Success,
            3 => KernReturn::NoSpace,
            4 => KernReturn::InvalidArgument,
            5 => KernReturn::Failure,
            6 => KernReturn::ResourceShortage,
            15 => KernReturn::InvalidName,
            17 => KernReturn::InvalidRight,
            20 => KernReturn::InvalidCapability,
            0x1000_0003 => KernReturn::SendInvalidDest,
            0x1000_0004 => KernReturn::SendTooLarge,
            0x1000_4002 => KernReturn::RcvInvalidName,
            0x1000_4003 => KernReturn::RcvTimedOut,
            0x1000_4004 => KernReturn::RcvTooLarge,
            -303 => KernReturn::MigBadId,
            _ => return None,
        })
    }

    /// Whether the code is `KERN_SUCCESS`.
    pub fn is_success(self) -> bool {
        self == KernReturn::Success
    }
}

impl fmt::Display for KernReturn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?} ({:#x})", self.as_raw())
    }
}

impl std::error::Error for KernReturn {}

/// Shorthand result type for Mach operations.
pub type KernResult<T> = Result<T, KernReturn>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_values_match_xnu() {
        assert_eq!(KernReturn::Success.as_raw(), 0);
        assert_eq!(KernReturn::InvalidArgument.as_raw(), 4);
        assert_eq!(KernReturn::SendInvalidDest.as_raw(), 0x10000003);
        assert_eq!(KernReturn::RcvTimedOut.as_raw(), 0x10004003);
        assert_eq!(KernReturn::MigBadId.as_raw(), -303);
    }

    #[test]
    fn from_raw_inverts_as_raw() {
        for kr in [
            KernReturn::Success,
            KernReturn::NoSpace,
            KernReturn::InvalidArgument,
            KernReturn::Failure,
            KernReturn::ResourceShortage,
            KernReturn::InvalidName,
            KernReturn::InvalidRight,
            KernReturn::InvalidCapability,
            KernReturn::SendInvalidDest,
            KernReturn::SendTooLarge,
            KernReturn::RcvInvalidName,
            KernReturn::RcvTimedOut,
            KernReturn::RcvTooLarge,
            KernReturn::MigBadId,
        ] {
            assert_eq!(KernReturn::from_raw(kr.as_raw()), Some(kr));
        }
        assert_eq!(KernReturn::from_raw(0x7fff_ffff), None);
    }

    #[test]
    fn success_predicate() {
        assert!(KernReturn::Success.is_success());
        assert!(!KernReturn::Failure.is_success());
    }
}
