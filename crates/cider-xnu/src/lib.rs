//! The foreign (XNU-flavoured) kernel source corpus for the Cider
//! reproduction.
//!
//! Cider's *duct tape* mechanism compiles unmodified foreign kernel code
//! into the domestic kernel (paper §4.2). This crate plays the role of
//! that foreign source tree: the three subsystems the paper imports —
//! kernel-side pthread support ([`psynch`]), Mach IPC ([`ipc`]), and
//! Apple's I/O Kit driver framework ([`iokit`]) — plus the `queue.h`
//! structures ([`queue`]) and `kern_return_t` codes ([`kern_return`])
//! they rely on.
//!
//! **Zone discipline.** Nothing here references the domestic kernel.
//! Every kernel service (locking, zone allocation, thread block/wakeup,
//! time) is reached through the [`api::ForeignKernelApi`] trait — the set
//! of "external symbols" that the duct-tape layer (`cider-ducttape`)
//! remaps onto domestic primitives. Unit tests exercise the subsystems
//! against [`api::MockForeignKernel`], proving the code is genuinely
//! host-independent.
//!
//! # Example
//!
//! ```
//! use cider_xnu::api::MockForeignKernel;
//! use cider_xnu::ipc::{MachIpc, UserMessage};
//!
//! let mut api = MockForeignKernel::new();
//! let mut ipc = MachIpc::new();
//! ipc.bootstrap(&mut api);
//! let task = ipc.create_space();
//! // The typed rights API: allocation yields a ReceiveRight, minting a
//! // SendRight requires one — mismatches are compile errors, not traps.
//! let recv = ipc.alloc_receive(&mut api, task)?;
//! let send = ipc.insert_send(task, recv)?;
//! let msg = UserMessage::simple(send.name(), 1, &b"hi"[..]);
//! ipc.send(&mut api, task, msg)?;
//! let got = ipc.receive(&mut api, task, recv)?;
//! assert_eq!(&got.body[..], b"hi");
//! # Ok::<(), cider_xnu::kern_return::KernReturn>(())
//! ```

pub mod api;
pub mod iokit;
pub mod ipc;
pub mod kern_return;
pub mod psynch;
pub mod queue;

pub use api::{ForeignKernelApi, ForeignThread};
pub use kern_return::{KernResult, KernReturn};
