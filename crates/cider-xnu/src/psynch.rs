//! Kernel-side pthread support (`bsd/kern/pthread_support.c`).
//!
//! "The iOS user space pthread library makes extensive use of kernel-level
//! support for mutexes, semaphores, and condition variables, none of which
//! are present in the Linux kernel. ... Cider uses duct tape to directly
//! compile this file without modification" (§4.2). This module is that
//! file's stand-in: the `psynch_*` entry points iOS's libpthread traps
//! into, keyed by user-space addresses, written against the foreign
//! kernel API only.
//!
//! Because the simulator cannot suspend host threads, blocking calls
//! return [`PsynchOutcome::Blocked`] after parking the thread through
//! `assert_wait`/`thread_block`; the caller retries after a wakeup —
//! XNU's own continuation style, flattened.

use std::collections::BTreeMap;

use crate::api::{Event, ForeignKernelApi, ForeignThread, WaitResult};
use crate::kern_return::{KernResult, KernReturn};
use crate::queue::XnuQueue;

/// Result of a potentially blocking psynch operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsynchOutcome {
    /// The caller acquired the object / was signalled.
    Acquired,
    /// The caller is parked; retry after wakeup.
    Blocked,
}

#[derive(Debug, Default)]
struct KernelMutex {
    owner: Option<ForeignThread>,
    waiters: XnuQueue<ForeignThread>,
    /// Lock sequence number, as the real psynch protocol carries.
    lseq: u32,
}

#[derive(Debug, Default)]
struct KernelCondvar {
    waiters: XnuQueue<ForeignThread>,
    cseq: u32,
}

#[derive(Debug, Default)]
struct KernelSemaphore {
    count: i32,
    waiters: XnuQueue<ForeignThread>,
}

/// The psynch state tables, keyed by user-space object addresses exactly
/// as XNU keys them.
#[derive(Debug, Default)]
pub struct PsynchState {
    mutexes: BTreeMap<u64, KernelMutex>,
    condvars: BTreeMap<u64, KernelCondvar>,
    semaphores: BTreeMap<u64, KernelSemaphore>,
}

const MTX_EVENT_BASE: u64 = 0x2000_0000;
const CV_EVENT_BASE: u64 = 0x3000_0000;
const SEM_EVENT_BASE: u64 = 0x4000_0000;

impl PsynchState {
    /// Empty tables.
    pub fn new() -> PsynchState {
        PsynchState::default()
    }

    // ------------------------------------------------------------------
    // Mutexes (`psynch_mutexwait` / `psynch_mutexdrop`).
    // ------------------------------------------------------------------

    /// `psynch_mutexwait`: acquire the mutex at `addr` or park.
    pub fn mutexwait(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        addr: u64,
    ) -> PsynchOutcome {
        let me = api.current_thread();
        let m = self.mutexes.entry(addr).or_default();
        match m.owner {
            None => {
                m.owner = Some(me);
                m.lseq += 1;
                PsynchOutcome::Acquired
            }
            Some(owner) if owner == me => {
                // Recursive acquisition attempt: XNU would return the
                // kwe unchanged; we treat it as acquired (non-checking
                // mutex semantics).
                PsynchOutcome::Acquired
            }
            Some(_) => {
                m.waiters.enqueue_tail(me);
                api.assert_wait(Event(MTX_EVENT_BASE + addr));
                match api.thread_block() {
                    WaitResult::Awakened => PsynchOutcome::Acquired,
                    _ => PsynchOutcome::Blocked,
                }
            }
        }
    }

    /// `psynch_mutexdrop`: release the mutex; ownership passes directly
    /// to the first waiter, which is woken.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` if the caller does not own the mutex.
    pub fn mutexdrop(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        addr: u64,
    ) -> KernResult<()> {
        let me = api.current_thread();
        let m = self
            .mutexes
            .get_mut(&addr)
            .ok_or(KernReturn::InvalidArgument)?;
        if m.owner != Some(me) {
            return Err(KernReturn::InvalidArgument);
        }
        m.owner = m.waiters.dequeue_head();
        if m.owner.is_some() {
            m.lseq += 1;
            api.thread_wakeup(Event(MTX_EVENT_BASE + addr));
        }
        Ok(())
    }

    /// Current owner of the mutex at `addr`.
    pub fn mutex_owner(&self, addr: u64) -> Option<ForeignThread> {
        self.mutexes.get(&addr).and_then(|m| m.owner)
    }

    /// Waiters parked on the mutex at `addr`.
    pub fn mutex_waiters(&self, addr: u64) -> usize {
        self.mutexes
            .get(&addr)
            .map(|m| m.waiters.len())
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Condition variables (`psynch_cvwait` / `cvsignal` / `cvbroad`).
    // ------------------------------------------------------------------

    /// `psynch_cvwait`: atomically drop the mutex at `mutex_addr` and
    /// park on the condvar at `cv_addr`.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` if the caller does not own the mutex.
    pub fn cvwait(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        cv_addr: u64,
        mutex_addr: u64,
    ) -> KernResult<PsynchOutcome> {
        let me = api.current_thread();
        self.mutexdrop(api, mutex_addr)?;
        let cv = self.condvars.entry(cv_addr).or_default();
        cv.waiters.enqueue_tail(me);
        api.assert_wait(Event(CV_EVENT_BASE + cv_addr));
        match api.thread_block() {
            WaitResult::Awakened => Ok(PsynchOutcome::Acquired),
            _ => Ok(PsynchOutcome::Blocked),
        }
    }

    /// `psynch_cvsignal`: wakes one waiter; returns the woken thread.
    pub fn cvsignal(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        cv_addr: u64,
    ) -> Option<ForeignThread> {
        let cv = self.condvars.get_mut(&cv_addr)?;
        let woken = cv.waiters.dequeue_head()?;
        cv.cseq += 1;
        api.thread_wakeup(Event(CV_EVENT_BASE + cv_addr));
        Some(woken)
    }

    /// `psynch_cvbroad`: wakes all waiters; returns how many.
    pub fn cvbroadcast(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        cv_addr: u64,
    ) -> usize {
        let Some(cv) = self.condvars.get_mut(&cv_addr) else {
            return 0;
        };
        let mut n = 0;
        while cv.waiters.dequeue_head().is_some() {
            n += 1;
        }
        if n > 0 {
            cv.cseq += 1;
            api.thread_wakeup(Event(CV_EVENT_BASE + cv_addr));
        }
        n
    }

    /// Waiters parked on the condvar at `addr`.
    pub fn cv_waiters(&self, addr: u64) -> usize {
        self.condvars
            .get(&addr)
            .map(|c| c.waiters.len())
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Semaphores (`semaphore_create` / `wait` / `signal` traps).
    // ------------------------------------------------------------------

    /// `semaphore_create` with an initial count.
    pub fn semaphore_create(&mut self, addr: u64, value: i32) {
        self.semaphores.insert(
            addr,
            KernelSemaphore {
                count: value,
                waiters: XnuQueue::new(),
            },
        );
    }

    /// `semaphore_wait_trap`.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for unknown semaphores.
    pub fn semaphore_wait(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        addr: u64,
    ) -> KernResult<PsynchOutcome> {
        let me = api.current_thread();
        let s = self
            .semaphores
            .get_mut(&addr)
            .ok_or(KernReturn::InvalidArgument)?;
        if s.count > 0 {
            s.count -= 1;
            Ok(PsynchOutcome::Acquired)
        } else {
            s.waiters.enqueue_tail(me);
            api.assert_wait(Event(SEM_EVENT_BASE + addr));
            match api.thread_block() {
                WaitResult::Awakened => Ok(PsynchOutcome::Acquired),
                _ => Ok(PsynchOutcome::Blocked),
            }
        }
    }

    /// `semaphore_signal_trap`: wakes one waiter or increments the count.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` for unknown semaphores.
    pub fn semaphore_signal(
        &mut self,
        api: &mut dyn ForeignKernelApi,
        addr: u64,
    ) -> KernResult<()> {
        let s = self
            .semaphores
            .get_mut(&addr)
            .ok_or(KernReturn::InvalidArgument)?;
        if s.waiters.dequeue_head().is_some() {
            api.thread_wakeup(Event(SEM_EVENT_BASE + addr));
        } else {
            s.count += 1;
        }
        Ok(())
    }

    /// Current semaphore count.
    pub fn semaphore_count(&self, addr: u64) -> Option<i32> {
        self.semaphores.get(&addr).map(|s| s.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MockForeignKernel;

    const M: u64 = 0x1000;
    const CV: u64 = 0x2000;
    const SEM: u64 = 0x3000;

    #[test]
    fn uncontended_mutex_acquires() {
        let mut api = MockForeignKernel::new();
        let mut ps = PsynchState::new();
        assert_eq!(ps.mutexwait(&mut api, M), PsynchOutcome::Acquired);
        assert_eq!(ps.mutex_owner(M), Some(ForeignThread(1)));
        ps.mutexdrop(&mut api, M).unwrap();
        assert_eq!(ps.mutex_owner(M), None);
    }

    #[test]
    fn contended_mutex_blocks_then_hands_off() {
        let mut api = MockForeignKernel::new();
        let mut ps = PsynchState::new();
        api.thread = ForeignThread(1);
        assert_eq!(ps.mutexwait(&mut api, M), PsynchOutcome::Acquired);
        api.thread = ForeignThread(2);
        assert_eq!(ps.mutexwait(&mut api, M), PsynchOutcome::Blocked);
        assert_eq!(ps.mutex_waiters(M), 1);
        // Owner drops: ownership hands directly to the waiter.
        api.thread = ForeignThread(1);
        ps.mutexdrop(&mut api, M).unwrap();
        assert_eq!(ps.mutex_owner(M), Some(ForeignThread(2)));
        assert_eq!(ps.mutex_waiters(M), 0);
    }

    #[test]
    fn drop_by_non_owner_rejected() {
        let mut api = MockForeignKernel::new();
        let mut ps = PsynchState::new();
        api.thread = ForeignThread(1);
        ps.mutexwait(&mut api, M);
        api.thread = ForeignThread(2);
        assert_eq!(
            ps.mutexdrop(&mut api, M).unwrap_err(),
            KernReturn::InvalidArgument
        );
    }

    #[test]
    fn cvwait_drops_mutex_and_parks() {
        let mut api = MockForeignKernel::new();
        let mut ps = PsynchState::new();
        ps.mutexwait(&mut api, M);
        let out = ps.cvwait(&mut api, CV, M).unwrap();
        assert_eq!(out, PsynchOutcome::Blocked);
        assert_eq!(ps.mutex_owner(M), None);
        assert_eq!(ps.cv_waiters(CV), 1);
    }

    #[test]
    fn cvsignal_wakes_one_broadcast_wakes_all() {
        let mut api = MockForeignKernel::new();
        let mut ps = PsynchState::new();
        for t in 1..=3 {
            api.thread = ForeignThread(t);
            ps.mutexwait(&mut api, M);
            ps.cvwait(&mut api, CV, M).unwrap();
        }
        assert_eq!(ps.cv_waiters(CV), 3);
        assert_eq!(ps.cvsignal(&mut api, CV), Some(ForeignThread(1)));
        assert_eq!(ps.cv_waiters(CV), 2);
        assert_eq!(ps.cvbroadcast(&mut api, CV), 2);
        assert_eq!(ps.cv_waiters(CV), 0);
        assert_eq!(ps.cvsignal(&mut api, CV), None);
    }

    #[test]
    fn mutex_handoff_is_fair_fifo_across_three_waiters() {
        let mut api = MockForeignKernel::new();
        let mut ps = PsynchState::new();
        api.thread = ForeignThread(1);
        assert_eq!(ps.mutexwait(&mut api, M), PsynchOutcome::Acquired);
        // Three contenders park in arrival order.
        for t in 2..=4 {
            api.thread = ForeignThread(t);
            assert_eq!(ps.mutexwait(&mut api, M), PsynchOutcome::Blocked);
        }
        assert_eq!(ps.mutex_waiters(M), 3);
        // Each drop hands the lock to the oldest waiter, never to a
        // later arrival (no barging).
        for t in 1..=3 {
            api.thread = ForeignThread(t);
            ps.mutexdrop(&mut api, M).unwrap();
            assert_eq!(
                ps.mutex_owner(M),
                Some(ForeignThread(t + 1)),
                "drop by {t} must hand off to {}",
                t + 1
            );
            assert_eq!(ps.mutex_waiters(M), (3 - t) as usize);
        }
        api.thread = ForeignThread(4);
        ps.mutexdrop(&mut api, M).unwrap();
        assert_eq!(ps.mutex_owner(M), None);
    }

    #[test]
    fn cond_wake_counts_are_exact_under_virtual_clock() {
        let mut api = MockForeignKernel::new();
        let mut ps = PsynchState::new();
        // Waiters arrive at distinct virtual times; the wake counts and
        // order must depend only on arrival order, not on the clock.
        for t in 1..=4 {
            api.thread = ForeignThread(t);
            api.now += 1_000 * t;
            ps.mutexwait(&mut api, M);
            assert_eq!(
                ps.cvwait(&mut api, CV, M).unwrap(),
                PsynchOutcome::Blocked
            );
        }
        assert_eq!(ps.cv_waiters(CV), 4);
        // Signals wake exactly one each, oldest first.
        api.now += 5_000;
        assert_eq!(ps.cvsignal(&mut api, CV), Some(ForeignThread(1)));
        assert_eq!(ps.cvsignal(&mut api, CV), Some(ForeignThread(2)));
        assert_eq!(ps.cv_waiters(CV), 2);
        // Broadcast wakes exactly the remaining two, no more.
        assert_eq!(ps.cvbroadcast(&mut api, CV), 2);
        assert_eq!(ps.cv_waiters(CV), 0);
        // Wakes on an empty condvar observe nothing.
        assert_eq!(ps.cvsignal(&mut api, CV), None);
        assert_eq!(ps.cvbroadcast(&mut api, CV), 0);
    }

    #[test]
    fn semaphore_counts_and_blocks() {
        let mut api = MockForeignKernel::new();
        let mut ps = PsynchState::new();
        ps.semaphore_create(SEM, 1);
        assert_eq!(
            ps.semaphore_wait(&mut api, SEM).unwrap(),
            PsynchOutcome::Acquired
        );
        assert_eq!(
            ps.semaphore_wait(&mut api, SEM).unwrap(),
            PsynchOutcome::Blocked
        );
        // Signal wakes the waiter rather than bumping the count.
        ps.semaphore_signal(&mut api, SEM).unwrap();
        assert_eq!(ps.semaphore_count(SEM), Some(0));
        // Signal with no waiters increments.
        ps.semaphore_signal(&mut api, SEM).unwrap();
        assert_eq!(ps.semaphore_count(SEM), Some(1));
    }

    #[test]
    fn unknown_objects_rejected() {
        let mut api = MockForeignKernel::new();
        let mut ps = PsynchState::new();
        assert!(ps.mutexdrop(&mut api, 0xdead).is_err());
        assert!(ps.semaphore_wait(&mut api, 0xdead).is_err());
        assert!(ps.cvwait(&mut api, CV, 0xdead).is_err());
    }
}
