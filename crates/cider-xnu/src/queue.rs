//! XNU `queue.h`-style queues.
//!
//! Mach IPC threads its message and waiter lists through these. The
//! original XNU code uses *recursive* queue chains (queues containing
//! queue heads); the paper notes that this "was rewritten to better fit
//! within Linux" (§4.2) — [`XnuQueue`] keeps the XNU-flavoured API while
//! the duct-taped build uses the flat representation, and
//! [`RecursiveQueue`] preserves the original recursive shape so the
//! ablation benchmark can compare the two.

use std::collections::VecDeque;

/// A flat queue with the XNU `queue.h` vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XnuQueue<T> {
    items: VecDeque<T>,
}

impl<T> Default for XnuQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> XnuQueue<T> {
    /// `queue_init`.
    pub fn new() -> XnuQueue<T> {
        XnuQueue {
            items: VecDeque::new(),
        }
    }

    /// `enqueue_tail`.
    pub fn enqueue_tail(&mut self, item: T) {
        self.items.push_back(item);
    }

    /// `enqueue_head`.
    pub fn enqueue_head(&mut self, item: T) {
        self.items.push_front(item);
    }

    /// `dequeue_head`.
    pub fn dequeue_head(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// `queue_empty`.
    pub fn queue_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `queue_iterate`.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes the first item matching the predicate (`remqueue`).
    pub fn remqueue<F: FnMut(&T) -> bool>(&mut self, pred: F) -> Option<T> {
        let pos = self.items.iter().position(pred)?;
        self.items.remove(pos)
    }
}

impl<T> FromIterator<T> for XnuQueue<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        XnuQueue {
            items: iter.into_iter().collect(),
        }
    }
}

/// The original recursive queue shape: a node is either a payload or a
/// nested queue head, and traversal recurses through nested heads. XNU's
/// IPC "pset" queues look like this; the Linux port flattens them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueNode<T> {
    /// A payload element.
    Item(T),
    /// A nested queue, traversed in place.
    SubQueue(RecursiveQueue<T>),
}

/// A queue whose elements may themselves be queues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecursiveQueue<T> {
    nodes: Vec<QueueNode<T>>,
}

impl<T> Default for RecursiveQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RecursiveQueue<T> {
    /// Empty recursive queue.
    pub fn new() -> RecursiveQueue<T> {
        RecursiveQueue { nodes: Vec::new() }
    }

    /// Appends a payload element.
    pub fn push_item(&mut self, item: T) {
        self.nodes.push(QueueNode::Item(item));
    }

    /// Appends a nested queue head.
    pub fn push_subqueue(&mut self, q: RecursiveQueue<T>) {
        self.nodes.push(QueueNode::SubQueue(q));
    }

    /// Total payload elements, recursing through sub-queues.
    pub fn total_items(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                QueueNode::Item(_) => 1,
                QueueNode::SubQueue(q) => q.total_items(),
            })
            .sum()
    }

    /// Maximum nesting depth (1 for a flat queue).
    pub fn depth(&self) -> usize {
        1 + self
            .nodes
            .iter()
            .map(|n| match n {
                QueueNode::Item(_) => 0,
                QueueNode::SubQueue(q) => q.depth(),
            })
            .max()
            .unwrap_or(0)
    }

    /// Removes and returns the first payload element in traversal order
    /// (depth-first), recursing through nested heads.
    pub fn pop_first(&mut self) -> Option<T> {
        while !self.nodes.is_empty() {
            match &mut self.nodes[0] {
                QueueNode::Item(_) => {
                    let QueueNode::Item(item) = self.nodes.remove(0) else {
                        unreachable!()
                    };
                    return Some(item);
                }
                QueueNode::SubQueue(q) => {
                    if let Some(item) = q.pop_first() {
                        return Some(item);
                    }
                    // Empty sub-queue: drop the head.
                    self.nodes.remove(0);
                }
            }
        }
        None
    }

    /// Flattens into an [`XnuQueue`] — the "rewritten to better fit
    /// within Linux" transformation.
    pub fn flatten(mut self) -> XnuQueue<T> {
        let mut out = XnuQueue::new();
        while let Some(item) = self.pop_first() {
            out.enqueue_tail(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_queue_fifo() {
        let mut q = XnuQueue::new();
        q.enqueue_tail(1);
        q.enqueue_tail(2);
        q.enqueue_head(0);
        assert_eq!(q.len(), 3);
        assert_eq!(q.dequeue_head(), Some(0));
        assert_eq!(q.dequeue_head(), Some(1));
        assert_eq!(q.dequeue_head(), Some(2));
        assert!(q.queue_empty());
    }

    #[test]
    fn remqueue_removes_matching() {
        let mut q: XnuQueue<i32> = [1, 2, 3, 4].into_iter().collect();
        assert_eq!(q.remqueue(|&x| x == 3), Some(3));
        assert_eq!(q.remqueue(|&x| x == 3), None);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn recursive_queue_counts_and_depth() {
        let mut inner = RecursiveQueue::new();
        inner.push_item("a");
        inner.push_item("b");
        let mut outer = RecursiveQueue::new();
        outer.push_item("x");
        outer.push_subqueue(inner);
        outer.push_item("y");
        assert_eq!(outer.total_items(), 4);
        assert_eq!(outer.depth(), 2);
    }

    #[test]
    fn recursive_pop_is_depth_first_order() {
        let mut inner = RecursiveQueue::new();
        inner.push_item(2);
        let mut outer = RecursiveQueue::new();
        outer.push_item(1);
        outer.push_subqueue(inner);
        outer.push_item(3);
        assert_eq!(outer.pop_first(), Some(1));
        assert_eq!(outer.pop_first(), Some(2));
        assert_eq!(outer.pop_first(), Some(3));
        assert_eq!(outer.pop_first(), None);
    }

    #[test]
    fn flatten_preserves_order() {
        let mut inner = RecursiveQueue::new();
        inner.push_item(2);
        inner.push_item(3);
        let mut outer = RecursiveQueue::new();
        outer.push_item(1);
        outer.push_subqueue(inner);
        outer.push_item(4);
        let flat = outer.flatten();
        let items: Vec<i32> = flat.iter().copied().collect();
        assert_eq!(items, vec![1, 2, 3, 4]);
    }
}
