//! The "Calculator Pro for iPad Free" scenario from Figure 4b: a real
//! App Store utility running on Cider, taking touch input, computing,
//! rendering through the diplomatic graphics stack, and fetching an iAd
//! banner through the Mach-IPC service layer.
//!
//! ```text
//! cargo run --example ios_calculator
//! ```

use bytes::Bytes;
use cider_apps::ciderpress::CiderPress;
use cider_apps::launcher::{install_ipa_with_shortcut, Launcher};
use cider_apps::package::{build_ios_app, decrypt_ipa, DeviceKey};
use cider_core::services::msg_ids;
use cider_core::system::CiderSystem;
use cider_gfx::stack::{install_gfx, GfxConfig};
use cider_input::events::IosHidEvent;
use cider_input::gestures::synth_tap;
use cider_kernel::profile::DeviceProfile;
use cider_xnu::ipc::UserMessage;

/// The calculator's on-screen keypad layout (x, y) per key.
fn key_pos(key: char) -> (i32, i32) {
    let digits = "789456123 0=";
    let idx = digits.find(key).unwrap_or(0) as i32;
    (160 + (idx % 3) * 220, 300 + (idx / 3) * 120)
}

fn main() {
    let mut sys = CiderSystem::new(DeviceProfile::nexus7());
    let (gfx, _) = install_gfx(&mut sys, GfxConfig::default());

    // Install the decrypted app, exactly as the paper's §6.1 pipeline.
    let ipa = decrypt_ipa(
        &build_ios_app(
            "com.apalon.calculator",
            "Calculator Pro",
            "calc_main",
            true,
        ),
        DeviceKey::from_jailbroken_device(),
    )
    .expect("decryption");
    let mut launcher = Launcher::new();
    let binary = install_ipa_with_shortcut(&mut sys, &mut launcher, &ipa)
        .expect("install");
    sys.kernel
        .register_program("calc_main", std::sync::Arc::new(|_, _| 0));

    let mut cp = CiderPress::launch(&mut sys, &gfx, &binary).expect("launch");
    println!("Calculator Pro launched under CiderPress");

    // Set up the app's EAGL rendering surface through the diplomatic
    // OpenGL ES library.
    let lib = "OpenGLES.framework/OpenGLES";
    let tid = cp.app.1;
    let ctx = sys
        .diplomat_call(tid, lib, "EAGLContext_initWithAPI", &[])
        .expect("EAGL context");
    sys.diplomat_call(tid, lib, "EAGLContext_setCurrentContext", &[ctx])
        .expect("make current");
    sys.diplomat_call(
        tid,
        lib,
        "EAGLContext_renderbufferStorage",
        &[ctx, 1280, 800],
    )
    .expect("window memory from SurfaceFlinger");

    // Tap out "78 * 6 =" on the keypad; every tap crosses the
    // CiderPress -> socket -> eventpump -> Mach-port path and comes back
    // out as an IOHID touch the app's gesture recognisers consume.
    let mut display = String::new();
    for key in ['7', '8', '=', '6'] {
        let (x, y) = key_pos(key);
        for event in synth_tap(x, y, 0) {
            cp.deliver_input(&mut sys, &event).expect("input");
        }
        while let Ok(ev) = cp.bridge.receive_app_event(&mut sys, tid) {
            if let IosHidEvent::Touch { phase, touches, .. } = ev {
                if phase == cider_input::events::TouchPhase::Began {
                    display.push(key);
                    let _ = touches;
                }
            }
        }
        // Each keypress redraws the display through the GPU.
        sys.diplomat_call(tid, lib, "glClear", &[0x4000])
            .expect("gl");
        sys.diplomat_call(tid, lib, "glDrawArrays", &[4, 0, 240])
            .expect("gl");
        sys.diplomat_call(tid, lib, "EAGLContext_presentRenderbuffer", &[])
            .expect("present");
    }
    println!("keypad input registered: {display}");

    // The iAd banner: the app asks configd for its network state over
    // Mach IPC before fetching the ad.
    let configd = sys
        .bootstrap_look_up(tid, "com.apple.SystemConfiguration.configd")
        .expect("bootstrap_look_up");
    sys.mach_msg_send(
        tid,
        UserMessage::simple(
            configd,
            msg_ids::CONFIG_SET,
            Bytes::from(&b"network=wifi"[..]),
        ),
    )
    .expect("config set");
    sys.run_services();
    println!(
        "iAd framework sees network={}",
        sys.services.config_value("network").unwrap_or("?")
    );

    let frames = gfx.lock().unwrap().flinger.frames_presented;
    println!(
        "rendered {frames} frames through diplomatic OpenGL ES \
         ({} diplomat calls total)",
        sys.diplomatic[lib].stats.calls
    );

    // Home button: pause, screenshot into recents, then quit.
    cp.pause(&mut sys, &gfx).expect("pause");
    if let Some((_, shot)) = gfx.lock().unwrap().last_screenshot_of() {
        launcher.push_recent("Calculator Pro", shot);
    }
    cp.stop(&mut sys, &gfx).expect("stop");
    println!(
        "app stopped; recents list holds {} entries; virtual time {:.2} ms",
        launcher.recents.len(),
        sys.kernel.clock.now_ns() as f64 / 1e6
    );
}

/// Helper trait object access: the compositor's screenshot.
trait ScreenshotExt {
    fn last_screenshot_of(&self) -> Option<(u64, Vec<u32>)>;
}

impl ScreenshotExt for cider_gfx::stack::GfxStack {
    fn last_screenshot_of(&self) -> Option<(u64, Vec<u32>)> {
        self.flinger
            .last_screenshot
            .as_ref()
            .map(|(id, shot)| (id.0, shot.clone()))
    }
}
