//! Reproduces Figure 5: the lmbench 3.0 microbenchmarks on all four
//! configurations, normalized to vanilla Android.
//!
//! ```text
//! cargo run --release --example lmbench
//! ```

fn main() {
    println!("Running lmbench 3.0 on all four configurations...\n");
    let table = cider_bench::fig5::run();
    println!("{table}");
    println!(
        "Headline shapes (paper §6.2):\n\
         * null syscall: +8.5% on Cider (persona check), +40% with the\n\
           iOS persona (trap translation).\n\
         * signal handler: +3% / +25%; the iPad takes ~175% longer than\n\
           Cider iOS.\n\
         * fork+exit: ~14x for the iOS binary (90 MB of dyld mappings to\n\
           duplicate, 345 atfork + 115 atexit handlers to run); the\n\
           iPad's shared cache makes it significantly faster there.\n\
         * fork+exec(ios): dominated by dyld walking the filesystem for\n\
           all 115 libraries on every exec.\n\
         * select: the iPad grows superlinearly and fails outright at\n\
           250 descriptors; Cider handles all sizes."
    );
}
