//! A multi-touch iOS game on Cider: pinch-to-zoom and pan gestures
//! drive a 3D scene rendered through the diplomatic OpenGL ES library,
//! while a second, *domestic* thread in the same process streams frames
//! — the paper's §4.3 multi-persona showcase ("while one thread executes
//! complicated OpenGL ES rendering algorithms using the domestic
//! persona, another thread in the same app can simultaneously process
//! input data using the foreign persona").
//!
//! ```text
//! cargo run --example multitouch_game
//! ```

use cider_abi::persona::Persona;
use cider_apps::ciderpress::CiderPress;
use cider_apps::launcher::install_ipa;
use cider_apps::package::{build_ios_app, decrypt_ipa, DeviceKey};
use cider_core::persona::{persona_of, set_persona};
use cider_core::system::CiderSystem;
use cider_gfx::stack::{install_gfx, GfxConfig};
use cider_input::events::translate;
use cider_input::gestures::{
    synth_pan, synth_pinch, Gesture, GestureRecognizer,
};
use cider_kernel::profile::DeviceProfile;

fn main() {
    let mut sys = CiderSystem::new(DeviceProfile::nexus7());
    let (gfx, _) = install_gfx(&mut sys, GfxConfig::default());

    let ipa = decrypt_ipa(
        &build_ios_app("com.example.game", "SpaceGame", "game_main", true),
        DeviceKey::from_jailbroken_device(),
    )
    .expect("decrypt");
    let binary = install_ipa(&mut sys, &ipa).expect("install");
    sys.kernel
        .register_program("game_main", std::sync::Arc::new(|_, _| 0));
    let mut cp = CiderPress::launch(&mut sys, &gfx, &binary).expect("launch");
    let input_tid = cp.app.1;

    // The render thread: same process, switched to the domestic persona
    // for its entire GL-heavy lifetime.
    let render_tid = sys.kernel.spawn_thread(input_tid).expect("clone");
    let linux = sys.kernel.linux_personality();
    cider_core::persona::persona_ext_mut(&mut sys.kernel, render_tid)
        .expect("cloned persona ext")
        .install(Persona::Domestic, linux);
    set_persona(&mut sys.kernel, render_tid, Persona::Domestic)
        .expect("render thread goes domestic");
    println!(
        "one process, two personas: input thread = {}, render thread = {}",
        persona_of(&sys.kernel, input_tid).expect("thread"),
        persona_of(&sys.kernel, render_tid).expect("thread"),
    );

    // Set up the scene through the diplomatic GL library (input thread,
    // foreign persona — each call round-trips through set_persona).
    let lib = "OpenGLES.framework/OpenGLES";
    let ctx = sys
        .diplomat_call(input_tid, lib, "EAGLContext_initWithAPI", &[])
        .expect("ctx");
    sys.diplomat_call(input_tid, lib, "EAGLContext_setCurrentContext", &[ctx])
        .expect("current");
    sys.diplomat_call(
        input_tid,
        lib,
        "EAGLContext_renderbufferStorage",
        &[ctx, 1280, 800],
    )
    .expect("surface");

    // The player pinches to zoom, then pans the view.
    let mut recognizer = GestureRecognizer::new();
    let mut zoom = 1.0f32;
    let mut camera = (0i32, 0i32);
    let mut frames = 0u64;
    let gestures: Vec<Vec<_>> = vec![
        synth_pinch((640, 400), 80, 240, 8, 0),
        synth_pan((900, 600), (300, 200), 10, 2_000_000_000),
        synth_pinch((640, 400), 200, 100, 6, 4_000_000_000),
    ];
    for stream in gestures {
        for event in &stream {
            cp.deliver_input(&mut sys, event).expect("input");
            // The app drains its Mach event port and feeds the
            // recognisers, then the render thread draws a frame.
            while let Ok(ev) = cp.bridge.receive_app_event(&mut sys, input_tid)
            {
                recognizer.feed(&ev);
            }
            // Render thread (already domestic): straight host-library
            // calls, no diplomat round trip needed.
            let gl = sys.host.find_symbol("glDrawArrays").expect("gl").1;
            gl(&mut sys.kernel, render_tid, &[4, 0, 1200]).expect("draw");
            frames += 1;
        }
        for g in recognizer.recognized.drain(..) {
            match g {
                Gesture::Pinch { scale } => {
                    zoom *= scale;
                    println!("pinch: zoom now {zoom:.2}x");
                }
                Gesture::Pan { dx, dy } => {
                    camera.0 += dx;
                    camera.1 += dy;
                    println!("pan: camera now {camera:?}");
                }
                Gesture::Tap { x, y } => println!("tap at ({x},{y})"),
            }
        }
        sys.diplomat_call(
            input_tid,
            lib,
            "EAGLContext_presentRenderbuffer",
            &[],
        )
        .expect("present");
    }

    // Also exercise the event stream against the raw translation layer.
    let sample = synth_pan((0, 0), (10, 0), 2, 0);
    let _ios_events: Vec<_> = sample.iter().map(translate).collect();

    println!(
        "game loop done: {frames} draw calls, {} composited frames, \
         virtual time {:.2} ms",
        gfx.lock().unwrap().flinger.frames_presented,
        sys.kernel.clock.now_ns() as f64 / 1e6
    );
    assert!(zoom > 1.0, "net zoom in");
    cp.stop(&mut sys, &gfx).expect("stop");
}
