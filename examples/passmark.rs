//! Reproduces Figure 6: the PassMark app on all four configurations.
//!
//! ```text
//! cargo run --release --example passmark
//! ```

fn main() {
    println!("Running the PassMark suite on all four configurations...\n");
    let table = cider_bench::fig6::run();
    println!("{table}");
    println!(
        "Headline shapes (paper §6.3):\n\
         * CPU & memory: the native iOS binary beats the interpreted\n\
           Android app on the same device, and Cider beats the iPad\n\
           (faster CPU).\n\
         * Storage: the iPad's flash writes much faster.\n\
         * 2D: Android's drawing libraries win, except complex vectors;\n\
           image rendering on Cider additionally pays the fence bug.\n\
         * 3D: Cider iOS lands 20-37% below the Android app (diplomat\n\
           mediation per GL call); the iPad's faster GPU wins outright."
    );
}
