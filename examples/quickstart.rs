//! Quickstart: boot a Cider device, install an App Store app, and run it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the paper's end-to-end flow: decrypt an `.ipa` with a
//! jailbroken device's key (§6.1), let the background unpacker install
//! it and create a Launcher shortcut (§3), launch it through CiderPress,
//! deliver a touch, and read the app's output.

use cider_apps::ciderpress::CiderPress;
use cider_apps::launcher::{install_ipa_with_shortcut, Launcher};
use cider_apps::package::{build_ios_app, decrypt_ipa, DeviceKey};
use cider_core::system::CiderSystem;
use cider_gfx::stack::{install_gfx, GfxConfig};
use cider_input::gestures::synth_tap;
use cider_kernel::profile::DeviceProfile;

fn main() {
    // 1. Boot the Nexus 7 with the Cider kernel extensions.
    let mut sys = CiderSystem::new(DeviceProfile::nexus7());
    let (_gfx, report) = install_gfx(&mut sys, GfxConfig::default());
    println!(
        "booted {}: {} GL diplomats generated, {} EAGL bridges",
        sys.kernel.profile.name, report.matched, report.bridged_eagl
    );
    let gfx = _gfx;

    // 2. An encrypted App Store app arrives; decrypt it the way the
    //    paper did, on a jailbroken device.
    let store_ipa =
        build_ios_app("com.example.hello", "HelloIOS", "app_main", true);
    assert!(store_ipa.is_encrypted());
    let ipa = decrypt_ipa(&store_ipa, DeviceKey::from_jailbroken_device())
        .expect("jailbroken device key");

    // 3. The background unpacker installs it and creates a home-screen
    //    shortcut pointing at CiderPress.
    let mut launcher = Launcher::new();
    launcher.add_android_app("Gmail", "com.google.android.gm");
    let binary = install_ipa_with_shortcut(&mut sys, &mut launcher, &ipa)
        .expect("install");
    println!(
        "installed {binary}; home screen now shows {} shortcuts",
        launcher.shortcuts.len()
    );

    // 4. Register what the app's main() does, then tap the shortcut.
    sys.kernel.register_program(
        "app_main",
        std::sync::Arc::new(|k, tid| {
            let _ = k.sys_write(
                tid,
                cider_abi::ids::Fd::STDOUT,
                b"Hello from an unmodified iOS binary!\n",
            );
            0
        }),
    );
    let mut cp = CiderPress::launch(&mut sys, &gfx, &binary).expect("launch");
    println!(
        "launched: app pid {} runs the {} persona",
        cp.app.0,
        cider_core::persona::persona_of(&sys.kernel, cp.app.1)
            .expect("thread exists")
    );

    // 5. A tap travels CiderPress -> BSD socket -> eventpump -> Mach port.
    for event in synth_tap(640, 400, 0) {
        cp.deliver_input(&mut sys, &event).expect("input path");
    }
    println!(
        "delivered a tap ({} events through the eventpump)",
        cp.bridge.events_forwarded
    );

    // 6. Run the app's main and read its console.
    let code = sys.kernel.run_entry(cp.app.1).expect("app main");
    let console = sys.kernel.console_of(cp.app.0).expect("process");
    print!(
        "app exited {code}; console: {}",
        String::from_utf8_lossy(console)
    );

    println!(
        "virtual time elapsed: {:.3} ms",
        sys.kernel.clock.now_ns() as f64 / 1e6,
    );
}
