//! Trace viewer: run a traced Figure-5 workload and inspect the result.
//!
//! ```text
//! cargo run --example trace_viewer
//! ```
//!
//! Boots two beds — vanilla Android and Cider running an iOS binary —
//! with the cider-trace subsystem enabled, drives the syscall/signal
//! and process microbenchmarks on each, then:
//!
//! * prints the tail of the typed event stream (virtual-clock stamped);
//! * prints the per-persona syscall latency histograms side by side,
//!   making the paper's persona-check overhead directly visible;
//! * writes a Chrome `trace_event` JSON file (load in `chrome://tracing`
//!   or Perfetto) and flamegraph folded stacks under `target/trace/`.
//!
//! Tracing never charges the virtual clock, so every number here is
//! identical to an untraced run.

use std::fs;
use std::path::Path;

use cider_abi::memorystatus::LifecycleEvent;
use cider_bench::apps::{app_spec, render_trap};
use cider_bench::config::{SystemConfig, TestBed};
use cider_bench::fig5::{run_micro, Micro};
use cider_core::RingOp;
use cider_frameworks::scenarios;
use cider_trace::{chrome, flame, TraceSnapshot};
use cider_xnu::ipc::UserMessage;

/// A short Mach IPC v2 burst so the `ipc/` counters have something to
/// show: one out-of-line round trip (large enough to take the page
/// remap path) and a ring batch of four messages behind one flush.
fn ipc_burst(bed: &mut TestBed, tid: cider_abi::ids::Tid) {
    bed.sys.enable_ipc_v2();
    let port = bed.sys.mach_port_allocate(tid).expect("ports zone");
    let send = bed.sys.mach_make_send(tid, port).expect("send right");
    let mut msg = UserMessage::simple(send, 0x1C, &b"ool"[..]);
    msg.ool.push(vec![0x5Au8; 8192].into());
    bed.sys.mach_msg_send(tid, msg).expect("ool send");
    bed.sys.mach_msg_receive(tid, port).expect("ool receive");
    for i in 0..4 {
        let msg = UserMessage::simple(send, 0x20 + i, &b"ring"[..]);
        bed.sys.ring_submit(tid, RingOp::Send(msg)).expect("submit");
        bed.sys
            .ring_submit(tid, RingOp::Recv(port))
            .expect("submit");
    }
    bed.sys.ring_flush(tid).expect("flush");
}

fn drive(config: SystemConfig) -> TraceSnapshot {
    let mut bed = TestBed::builder(config).traced().build();
    let (pid, tid) = bed.spawn_measured().expect("bench binary installed");
    for micro in [
        Micro::NullSyscall,
        Micro::Read,
        Micro::Write,
        Micro::OpenClose,
        Micro::SignalHandler,
        Micro::ForkExit,
        Micro::LatCtx(4),
    ] {
        let _ = run_micro(&mut bed, pid, tid, micro);
    }
    if config.runs_ios_binary() {
        ipc_burst(&mut bed, tid);
        app_lane(&mut bed);
    }
    bed.trace_snapshot().expect("tracing enabled")
}

/// Populates the app-lifecycle lane: one full launch → background →
/// suspend → jetsam → relaunch cycle plus a short realtime-audio burst,
/// so the `app/` counters (lifecycle transitions, jetsam kills, bundle
/// and resource loads, deadline misses) show real traffic.
fn app_lane(bed: &mut TestBed) {
    let spec = app_spec(bed);
    scenarios::background_jetsam_relaunch(&mut bed.sys, &spec)
        .expect("jetsam round trip");
    let on_render = render_trap(bed.config);
    scenarios::realtime_audio(&mut bed.sys, &spec, 16, 23, on_render)
        .expect("audio session");
}

fn main() {
    let vanilla = drive(SystemConfig::VanillaAndroid);
    let cider_ios = drive(SystemConfig::CiderIos);

    println!("== event stream (Cider iOS, last 12 of {}) ==", {
        cider_ios.events.len()
    });
    for e in cider_ios.events.iter().rev().take(12).rev() {
        println!("{e}");
    }

    println!("\n== per-persona syscall latency (log2 histograms) ==");
    println!("vanilla Android (domestic persona):");
    for (name, h) in vanilla.metrics.histograms_with_prefix("syscall/") {
        println!("  {name:<36} {h}");
    }
    println!("Cider running the iOS binary (foreign persona):");
    for (name, h) in cider_ios.metrics.histograms_with_prefix("syscall/") {
        println!("  {name:<36} {h}");
    }

    println!("\n== mechanism counters (Cider iOS) ==");
    for prefix in [
        "kernel/", "signal/", "dyld/", "mach/", "ipc/", "persona/", "sched/",
    ] {
        for (name, v) in cider_ios.metrics.counters_with_prefix(prefix) {
            println!("  {name:<36} {v}");
        }
    }

    println!("\n== app lifecycle lane (Cider iOS) ==");
    for (name, v) in cider_ios.metrics.counters_with_prefix("app/") {
        println!("  {name:<36} {v}");
    }
    print!("  transition order                    ");
    for ev in LifecycleEvent::ALL {
        let n = cider_ios
            .metrics
            .counter(&format!("app/lifecycle/{}", ev.name()));
        if n > 0 {
            print!(" {}x{n}", ev.name());
        }
    }
    println!();

    println!("\n== scheduler (Cider iOS, lat_ctx 4p) ==");
    for (name, h) in cider_ios.metrics.histograms_with_prefix("sched/") {
        println!("  {name:<36} {h}");
    }
    let switches = cider_ios
        .events
        .iter()
        .filter(|e| e.kind.category() == "sched")
        .count();
    println!("  context-switch events in stream      {switches}");

    let dir = Path::new("target").join("trace");
    fs::create_dir_all(&dir).expect("create target/trace");
    let json = dir.join("trace_viewer.trace.json");
    let folded = dir.join("trace_viewer.folded");
    fs::write(&json, chrome::export(&cider_ios)).expect("write json");
    fs::write(&folded, flame::export(&cider_ios)).expect("write folded");
    println!("\nwrote {}", json.display());
    println!("wrote {}  (pipe into flamegraph.pl)", folded.display());
}
