//! Prints the full evaluation: Figure 5, Figure 6, and the ablations.
//!
//! ```text
//! cargo run --release --bin cider-report [-- --raw] [-- --trace] [-- --fleet]
//! ```
//!
//! With `--raw`, the tables additionally list the raw virtual-time
//! values (ns for Figure 5 latencies, ops/s for Figure 6 throughput)
//! behind the normalized cells.
//!
//! With `--trace`, Figure 5 runs with the cider-trace subsystem enabled
//! (bit-identical virtual-time results — tracing never charges the
//! clock). Per configuration the report prints the syscall latency
//! histograms and mechanism counters, and writes a Chrome
//! `trace_event` JSON file plus flamegraph folded stacks under
//! `target/trace/`. Load the `.trace.json` in `chrome://tracing` or
//! Perfetto; feed the `.folded` file to `flamegraph.pl`.
//!
//! With `--conform`, the report ends with the differential ABI
//! conformance matrix from `cider-conform` (default seed and program
//! count): per-personality agreement across outcome, VFS state,
//! fd-table shape, cwd, and Mach port topology.
//!
//! With `--apps`, the report includes the app-framework scenario table
//! from `cider-bench::apps`: launch-to-foreground,
//! background-jetsam-relaunch, and realtime-audio across the four
//! configurations (normalized like Figure 5; audio misses are raw
//! counts).
//!
//! With `--fleet`, the report ends with fleet-level percentile tables
//! from `cider-fleet`: a 64-device mixed-persona fleet per workload
//! (lmbench mix and launch storm), p50/p95/p99 per group. Host-side
//! fleet progress (`fleet/devices_completed`, per-device wall-clock)
//! is traced and exported as Chrome `trace_event` JSON under
//! `target/trace/fleet.trace.json`.

use std::fs;
use std::path::Path;

use cider_bench::config::SystemConfig;
use cider_bench::report::Table;
use cider_trace::{chrome, flame, TraceSnapshot};

fn print_raw(table: &Table) {
    println!("### raw values ({})", table.unit);
    print!("{:<28}", "test");
    for c in SystemConfig::ALL {
        print!("{:>18}", c.label());
    }
    println!();
    for row in &table.rows {
        print!("{:<28}", row.name);
        for v in row.values {
            match v {
                Some(v) if v >= 1000.0 => print!("{v:>18.0}"),
                Some(v) => print!("{v:>18.2}"),
                None => print!("{:>18}", "n/a"),
            }
        }
        println!();
    }
    println!();
}

fn dump_trace(config: SystemConfig, snap: &TraceSnapshot, dir: &Path) {
    println!("### trace: {}", config.label());
    println!(
        "{} events retained, {} dropped",
        snap.events.len(),
        snap.dropped
    );
    let syscalls = snap.metrics.histograms.iter().filter(|(name, _)| {
        name.starts_with("syscall/") || name.starts_with("diplomat/")
    });
    for (name, h) in syscalls {
        println!("  {name:<40} {h}");
    }
    for prefix in [
        "kernel/",
        "signal/",
        "mach/",
        "dyld/",
        "persona/",
        "gpu/",
        "fault/",
        "recovery/",
    ] {
        for (name, v) in &snap.metrics.counters {
            if name.starts_with(prefix) {
                println!("  {name:<40} {v}");
            }
        }
    }
    let ledger: Vec<_> = snap
        .events
        .iter()
        .filter(|e| matches!(e.kind.category(), "fault" | "recovery"))
        .collect();
    if !ledger.is_empty() {
        println!("  fault/recovery ledger:");
        for e in &ledger {
            println!(
                "    {:>14} ns  {:<9} {}",
                e.ctx.ts_ns,
                e.kind.category(),
                e.kind.name()
            );
        }
    }

    let base = dir.join(format!("fig5_{}", config.slug()));
    let json = base.with_extension("trace.json");
    let folded = base.with_extension("folded");
    match fs::write(&json, chrome::export(snap)) {
        Ok(()) => println!("  wrote {}", json.display()),
        Err(e) => println!("  write {} failed: {e}", json.display()),
    }
    match fs::write(&folded, flame::export(snap)) {
        Ok(()) => println!("  wrote {}", folded.display()),
        Err(e) => println!("  write {} failed: {e}", folded.display()),
    }
    println!();
}

fn print_fleet_group(name: &str, g: &cider_fleet::report::GroupReport) {
    println!(
        "  {name}: {} devices, {} units, {} faults, {} recoveries",
        g.devices, g.units_total, g.faults_total, g.recoveries_total
    );
    for (counter, p) in &g.counters {
        println!(
            "    {counter:<28} p50 {:>12}  p95 {:>12}  p99 {:>12}",
            p.p50, p.p95, p.p99
        );
    }
    for (latency, p) in &g.latencies {
        println!(
            "    {latency:<28} p50 {:>9} ns  p95 {:>9} ns  p99 {:>9} ns",
            p.p50, p.p95, p.p99
        );
    }
    if let Some(p) = &g.launches_per_vsec_milli {
        println!(
            "    {:<28} p50 {:>9.3}  p95 {:>9.3}  p99 {:>9.3}",
            "launches/vsec",
            p.p50 as f64 / 1000.0,
            p.p95 as f64 / 1000.0,
            p.p99 as f64 / 1000.0
        );
    }
}

fn print_fleet(dir: &Path) {
    use cider_fleet::{
        driver::run_fleet_with_sink, FleetReport, FleetSpec, Workload,
    };
    let sink = cider_trace::TraceSink::enabled_default();
    for workload in [
        Workload::LmbenchMix { ops: 16 },
        Workload::LaunchStorm { launches: 8 },
    ] {
        let spec = FleetSpec::new(64, 42, workload).host_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        );
        let run = run_fleet_with_sink(&spec, &sink);
        let report = FleetReport::from_run(&run);
        println!(
            "### fleet: {} x{} devices (mix {}), fingerprint {:016x}",
            report.workload,
            report.devices,
            report.mix,
            report.fleet_fingerprint
        );
        for (name, group) in &report.groups {
            print_fleet_group(name, group);
        }
        println!();
    }
    if let Some(snap) = sink.snapshot() {
        println!(
            "fleet host progress: {} devices completed",
            snap.metrics.counter("fleet/devices_completed")
        );
        let path = dir.join("fleet.trace.json");
        match fs::write(&path, chrome::export(&snap)) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => println!("write {} failed: {e}", path.display()),
        }
    }
}

fn main() {
    let raw = std::env::args().any(|a| a == "--raw");
    let trace = std::env::args().any(|a| a == "--trace");
    let conform = std::env::args().any(|a| a == "--conform");
    let fleet = std::env::args().any(|a| a == "--fleet");
    let apps = std::env::args().any(|a| a == "--apps");
    println!("Cider reproduction — full evaluation (virtual time)\n");
    let fig5 = if trace {
        let (fig5, snapshots) = cider_bench::fig5::run_traced();
        println!("{fig5}");
        let dir = Path::new("target").join("trace");
        if let Err(e) = fs::create_dir_all(&dir) {
            println!("cannot create {}: {e}", dir.display());
        }
        for (config, snap) in &snapshots {
            dump_trace(*config, snap, &dir);
        }
        fig5
    } else {
        let fig5 = cider_bench::fig5::run();
        println!("{fig5}");
        fig5
    };
    if raw {
        print_raw(&fig5);
    }
    let fig6 = cider_bench::fig6::run();
    println!("{fig6}");
    if raw {
        print_raw(&fig6);
    }
    if apps {
        let table = cider_bench::apps::run();
        println!("{table}");
        if raw {
            print_raw(&table);
        }
    }
    println!("## Ablations");
    match cider_bench::ablations::run_all() {
        Ok(ablations) => {
            for a in ablations {
                println!(
                    "{:<48} baseline {:>14.1} -> variant {:>14.1} ({:.2}x) [{}]",
                    a.name,
                    a.baseline,
                    a.variant,
                    a.ratio(),
                    a.metric
                );
            }
        }
        Err(e) => println!("ablations failed: {e}"),
    }
    if conform {
        use cider_conform::engine::{run_engine, EngineConfig};
        let cfg = EngineConfig::default();
        println!("\n## Conformance (cider-conform)");
        print!("{}", run_engine(&cfg).render(cfg.seed));
    }
    if fleet {
        println!("\n## Fleet simulation (cider-fleet)");
        let dir = Path::new("target").join("trace");
        if let Err(e) = fs::create_dir_all(&dir) {
            println!("cannot create {}: {e}", dir.display());
        }
        print_fleet(&dir);
    }
}
