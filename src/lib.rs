//! Umbrella crate for the Cider reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`); the library
//! surface itself lives in the member crates, re-exported here for
//! convenience:
//!
//! * [`cider_abi`] — personas, errno/signal/syscall numbering, calling
//!   conventions;
//! * [`cider_kernel`] — the domestic kernel simulator with its virtual
//!   clock and device profiles;
//! * [`cider_xnu`] — the foreign kernel corpus (Mach IPC, psynch,
//!   I/O Kit);
//! * [`cider_ducttape`] — symbol zones and the foreign-API adapter;
//! * [`cider_loader`] — Mach-O/ELF formats, dyld, the framework set;
//! * [`cider_core`] — Cider itself: personas, trap translation,
//!   diplomats, services, [`cider_core::CiderSystem`];
//! * [`cider_gfx`] — GPU, SurfaceFlinger, GLES, the diplomatic graphics
//!   libraries;
//! * [`cider_input`] — the CiderPress → eventpump → Mach-port input
//!   path and gestures;
//! * [`cider_apps`] — the Dalvik-stand-in VM, PassMark, packages,
//!   Launcher, CiderPress;
//! * [`cider_bench`] — the Figure 5 / Figure 6 harnesses and ablations.
//!
//! # Example
//!
//! ```
//! use cider_suite::prelude::*;
//!
//! let mut sys = CiderSystem::new(DeviceProfile::nexus7());
//! let (_gfx, _) = install_gfx(&mut sys, GfxConfig::default());
//! assert!(sys.kernel.vfs.exists(
//!     "/System/Library/Frameworks/UIKit.framework/UIKit"
//! ));
//! ```

pub use cider_abi;
pub use cider_apps;
pub use cider_bench;
pub use cider_core;
pub use cider_ducttape;
pub use cider_gfx;
pub use cider_input;
pub use cider_kernel;
pub use cider_loader;
pub use cider_xnu;

/// The names most programs start from.
pub mod prelude {
    pub use cider_abi::Persona;
    pub use cider_apps::{CiderPress, Launcher, Passmark};
    pub use cider_core::CiderSystem;
    pub use cider_gfx::{install_gfx, GfxConfig};
    pub use cider_kernel::{DeviceProfile, Kernel};
}
