//! Checkpoint/restore and fleet self-healing: the crash-consistency
//! contract.
//!
//! Three layers are pinned here. Frame level: a serialized checkpoint
//! survives the byte round trip exactly, and any single flipped bit is
//! caught by the checksum — corruption is detected, never silently
//! restored. Device level: `restore(checkpoint(d)) ≡ d` — re-booting a
//! device and deterministically replaying to a checkpoint's cursor
//! reproduces the checkpointed state image byte-for-byte, and the
//! resumed device finishes with the same trace fingerprint as one that
//! never stopped (property-tested across seeds, workloads and
//! checkpoint positions). Fleet level: a 64-device fleet under
//! injected crashes/wedges/checkpoint corruption heals itself — killed
//! devices restore from their last good frame and replay forward — and
//! the final report JSON, recovery ledger included, is byte-identical
//! across repeat runs and host-thread counts.

use cider_bench::config::SystemConfig;
use cider_ckpt::{Checkpoint, CkptError, CkptHeader};
use cider_fault::{FaultPlan, FaultSite};
use cider_fleet::{
    run_device, run_device_healed, DeviceOutcome, DeviceSim, DeviceSpec,
    FleetReport, FleetSpec, HealConfig, PersonaMix, Workload,
};
use proptest::prelude::*;

fn spec(seed: u64, ios: bool, workload: Workload) -> DeviceSpec {
    DeviceSpec {
        device_id: 0,
        seed,
        config: if ios {
            SystemConfig::CiderIos
        } else {
            SystemConfig::CiderAndroid
        },
        workload,
        fault_plan: None,
    }
}

fn checkpoint_at(sim: &DeviceSim, spec: &DeviceSpec) -> Vec<u8> {
    Checkpoint::new(
        CkptHeader {
            device_id: spec.device_id,
            seed: spec.seed,
            config: spec.config.slug().to_string(),
            workload: spec.workload.slug().to_string(),
            cursor: sim.cursor(),
            virtual_ns: sim.now_ns(),
        },
        sim.capture(),
    )
    .to_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// restore(checkpoint(d)) ≡ d: checkpoint mid-run, re-boot, replay
    /// to the cursor — the state image matches byte-for-byte and the
    /// finished device is fingerprint-identical to an uninterrupted
    /// run.
    #[test]
    fn restore_of_checkpoint_is_identity(
        seed in 0u64..1_000_000,
        ops in 2u32..8,
        at in 1u64..8,
        ios in any::<bool>(),
    ) {
        let s = spec(seed, ios, Workload::LmbenchMix { ops });
        let cut = at % u64::from(ops);

        // The uninterrupted run.
        let direct = run_device(&s);

        // Checkpoint at `cut`, then restore: fresh boot + replay.
        let mut live = DeviceSim::boot(&s);
        for _ in 0..cut {
            live.step();
        }
        let bytes = checkpoint_at(&live, &s);
        let ckpt = Checkpoint::from_bytes(&bytes).unwrap();
        prop_assert_eq!(ckpt.header.cursor, cut);

        let mut restored = DeviceSim::boot(&s);
        for _ in 0..ckpt.header.cursor {
            restored.step();
        }
        prop_assert_eq!(&restored.capture(), &ckpt.image);
        prop_assert_eq!(restored.now_ns(), ckpt.header.virtual_ns);

        // The restored device finishes exactly like the direct one.
        while !restored.done() {
            restored.step();
        }
        let resumed = restored.finish(DeviceOutcome::Completed, None);
        prop_assert_eq!(
            resumed.trace_fingerprint,
            direct.trace_fingerprint
        );
        prop_assert_eq!(resumed.virtual_ns, direct.virtual_ns);
    }

    /// Every single-bit flip anywhere in a frame is caught: restore
    /// reports a checksum (or structural) error instead of handing
    /// back corrupt state.
    #[test]
    fn any_bit_flip_is_detected(
        seed in 0u64..100_000,
        bit in 0usize..4096,
    ) {
        let s = spec(seed, seed % 2 == 0, Workload::LmbenchMix { ops: 2 });
        let mut sim = DeviceSim::boot(&s);
        sim.step();
        let mut bytes = checkpoint_at(&sim, &s);
        let pos = bit % (bytes.len() * 8);
        bytes[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(Checkpoint::from_bytes(&bytes).is_err());
    }
}

/// Warm-start state is part of the crash-consistency contract: a
/// checkpoint cut mid-storm carries the populated shared-cache image
/// in `kernel/warm`, restores by replay byte-for-byte (the replay
/// re-bakes the cache deterministically), and the resumed device
/// finishes fingerprint-identical to one that never stopped.
#[test]
fn warm_storm_checkpoint_round_trips_with_populated_cache() {
    let s = spec(13, true, Workload::LaunchStormWarm { launches: 6 });
    let direct = run_device(&s);

    let mut live = DeviceSim::boot(&s);
    for _ in 0..3 {
        live.step();
    }
    let bytes = checkpoint_at(&live, &s);
    let ckpt = Checkpoint::from_bytes(&bytes).unwrap();

    // The captured image holds a baked cache, not a cold stub.
    let warm = ckpt.image.section("kernel/warm").expect("kernel/warm");
    let record = &warm.records[0].1;
    assert!(
        record.contains("enabled=true"),
        "warm off in image: {record}"
    );
    assert!(!record.contains("cache=none"), "cache not baked: {record}");
    assert!(
        !record.contains("cow_forks=0 "),
        "storm never CoW-forked: {record}"
    );

    let mut restored = DeviceSim::boot(&s);
    for _ in 0..ckpt.header.cursor {
        restored.step();
    }
    assert_eq!(restored.capture(), ckpt.image);
    while !restored.done() {
        restored.step();
    }
    let resumed = restored.finish(DeviceOutcome::Completed, None);
    assert_eq!(resumed.trace_fingerprint, direct.trace_fingerprint);
    assert_eq!(resumed.virtual_ns, direct.virtual_ns);
}

/// A half-materialized CoW fork — forked, some pages written, the rest
/// still owed — is observable state: the procs section records the
/// outstanding debt, the image round-trips exactly, and a bit flipped
/// inside the CoW record itself is rejected by the frame checksum.
#[test]
fn half_materialized_cow_fork_is_checkpointed_and_checksummed() {
    use cider_ckpt::capture_kernel;
    use cider_kernel::mm::{MappingKind, Prot, PAGE_SIZE};
    use cider_kernel::profile::DeviceProfile;
    use cider_kernel::Kernel;

    let boot = || {
        let mut k = Kernel::boot(DeviceProfile::nexus7());
        k.warm.set_enabled(true);
        let (pid, tid) = k.spawn_process();
        let base = k
            .process_mut(pid)
            .unwrap()
            .mm
            .map(4 * PAGE_SIZE, Prot::RW, MappingKind::Anonymous, "[heap]")
            .unwrap();
        let (_child, ctid) = k.sys_fork(tid).unwrap();
        for page in 0..2 {
            assert_eq!(
                k.sys_page_write(ctid, base + page * PAGE_SIZE),
                Ok(1),
                "first write must materialize"
            );
        }
        k
    };
    let img = capture_kernel(&boot());
    assert_eq!(img, capture_kernel(&boot()), "CoW capture not repeatable");

    let procs = img.section("kernel/procs").expect("kernel/procs");
    assert!(
        procs.records.iter().any(|(_, v)| v.contains("+cow2p/2d")),
        "outstanding CoW debt missing from procs: {:?}",
        procs.records
    );
    let warm = img.section("kernel/warm").expect("kernel/warm");
    assert!(
        warm.records[0].1.contains("cow_forks=1"),
        "fork not counted: {}",
        warm.records[0].1
    );

    let bytes = Checkpoint::new(
        CkptHeader {
            device_id: 9,
            seed: 0,
            config: "cider_ios".to_string(),
            workload: "cow".to_string(),
            cursor: 0,
            virtual_ns: 0,
        },
        img.clone(),
    )
    .to_bytes();
    assert_eq!(Checkpoint::from_bytes(&bytes).unwrap().image, img);

    let at = bytes
        .windows(4)
        .position(|w| w == b"+cow")
        .expect("CoW record bytes in frame");
    let mut bad = bytes.clone();
    bad[at] ^= 0x04;
    assert!(Checkpoint::from_bytes(&bad).is_err());
}

#[test]
fn truncated_frame_is_rejected_not_panicked() {
    let s = spec(7, true, Workload::LmbenchMix { ops: 2 });
    let sim = DeviceSim::boot(&s);
    let bytes = checkpoint_at(&sim, &s);
    for cut in [0, 1, 4, bytes.len() / 2, bytes.len() - 1] {
        let err = Checkpoint::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                CkptError::Truncated
                    | CkptError::ChecksumMismatch { .. }
                    | CkptError::Malformed
            ),
            "cut={cut}: {err}"
        );
    }
}

fn healing_fleet(threads: usize) -> FleetSpec {
    FleetSpec::new(64, 42, Workload::LmbenchMix { ops: 8 })
        .mix(PersonaMix::EVEN)
        .fault_plan(FaultPlan::lifecycle(23))
        .heal(HealConfig::default())
        .host_threads(threads)
}

/// The headline fleet-healing contract: 64 devices under injected
/// crashes/wedges/checkpoint corruption, every killed device recovers,
/// and the aggregated report (recovery ledger included) renders
/// byte-identical JSON across repeat runs and 1 vs 8 host threads.
#[test]
fn faulted_fleet_heals_and_report_is_thread_invariant() {
    let first =
        FleetReport::from_run(&cider_fleet::run_fleet(&healing_fleet(1)));
    let again =
        FleetReport::from_run(&cider_fleet::run_fleet(&healing_fleet(1)));
    let wide =
        FleetReport::from_run(&cider_fleet::run_fleet(&healing_fleet(8)));
    assert_eq!(first.to_json(), again.to_json(), "repeat run diverged");
    assert_eq!(first.to_json(), wide.to_json(), "thread count leaked");

    let healing = first.healing.as_ref().expect("healed run");
    // The lifecycle plan really killed devices, and they came back:
    // every fault was answered by a restore and every device finished
    // its full workload (no device wedged out at these rates).
    assert!(healing.crashes + healing.wedges > 0, "no faults fired");
    assert!(healing.recovered_devices > 0, "nobody recovered");
    assert_eq!(first.groups["all"].units_total, 64 * 8);
    assert_eq!(healing.wedged_devices, 0);
    // Baseline frames alone give one checkpoint per device.
    assert!(healing.checkpoints_taken >= 64);
}

/// Corrupt frames are part of the healing loop, not an abort: with
/// certain corruption on every write plus guaranteed crashes, restores
/// fall back past rejected frames (checksum mismatch in the ledger)
/// and the device still completes.
#[test]
fn corrupt_checkpoints_fall_back_to_older_good_frames() {
    let plan = FaultPlan::new(5)
        .with(FaultSite::DeviceCrash, 120)
        .with(FaultSite::CheckpointCorrupt, 1000);
    let s = DeviceSpec {
        fault_plan: Some(plan),
        ..spec(31, true, Workload::LmbenchMix { ops: 10 })
    };
    let r = run_device_healed(&s, &HealConfig::default());
    assert_eq!(r.outcome, DeviceOutcome::Completed);
    let stats = r.heal.expect("healed run");
    assert!(stats.crashes > 0, "crash plan never fired");
    assert!(stats.corrupt_detected > 0, "corruption never detected");
    assert!(
        stats
            .ledger
            .iter()
            .any(|l| l.contains("rejected") && l.contains("checksum")),
        "ledger missing checksum rejection: {:?}",
        stats.ledger
    );
}
