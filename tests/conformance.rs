//! Tier-1 integration for the differential conformance engine: the
//! fixed default seed must generate its full program batch
//! deterministically, the checked-in regression corpus must replay
//! byte-for-byte, and regenerating the corpus from the same seed must
//! reproduce exactly the files under `tests/corpus/`.

use std::fs;
use std::path::PathBuf;

use cider_conform::engine::{run_engine, EngineConfig};
use cider_conform::CorpusEntry;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "conform"))
        .collect();
    paths.sort();
    paths
}

/// Every checked-in corpus entry parses and replays green, standalone
/// from the generator.
#[test]
fn checked_in_corpus_replays_green() {
    let files = corpus_files();
    assert!(
        files.len() >= 10,
        "corpus has only {} entries, need at least 10",
        files.len()
    );
    for path in &files {
        let text = fs::read_to_string(path).unwrap();
        let entry = CorpusEntry::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            path.file_stem().and_then(|s| s.to_str()),
            Some(entry.name.as_str()),
            "file name and entry name disagree"
        );
        entry.replay().unwrap_or_else(|m| panic!("{m}"));
    }
}

/// The default seed runs its full 200-program batch, agrees with the
/// domestic personality on every dimension, and regenerates the
/// checked-in corpus byte-for-byte — determinism across processes and
/// checkouts, not merely within one run.
#[test]
fn default_seed_regenerates_the_checked_in_corpus() {
    let cfg = EngineConfig::default();
    let report = run_engine(&cfg);
    assert!(report.programs_run >= 200, "{}", report.programs_run);
    assert!(report.total_ops > report.programs_run);

    // The translated persona must be indistinguishable from native
    // Linux wherever a domestic equivalent exists.
    for (pair, dim, compared, diverged) in report.matrix.rows() {
        if pair == "xnu vs linux" {
            assert_eq!(
                diverged,
                0,
                "{pair} diverged on {} ({compared} comparisons)",
                dim.label()
            );
        }
    }
    assert!(report.matrix.total_comparisons() > 1000);

    let files = corpus_files();
    assert_eq!(
        report.corpus.len(),
        files.len(),
        "engine produced a different corpus size than checked in"
    );
    for entry in &report.corpus {
        let path = corpus_dir().join(format!("{}.conform", entry.name));
        let want = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            entry.serialize(),
            want,
            "{} drifted from the checked-in corpus; regenerate with \
             `cargo run -p cider-conform --bin cider-conform -- \
             --seed 7 --programs 200 --write-corpus tests/corpus`",
            entry.name
        );
    }
}

/// Two engine runs under one seed are byte-identical in both report
/// and corpus (in-process determinism on a small batch).
#[test]
fn same_seed_is_byte_identical() {
    let cfg = EngineConfig {
        programs: 24,
        ..EngineConfig::default()
    };
    let a = run_engine(&cfg);
    let b = run_engine(&cfg);
    assert_eq!(a.render(cfg.seed), b.render(cfg.seed));
    let sa: Vec<String> = a.corpus.iter().map(|e| e.serialize()).collect();
    let sb: Vec<String> = b.corpus.iter().map(|e| e.serialize()).collect();
    assert_eq!(sa, sb);
}
