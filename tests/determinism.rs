//! Determinism: the virtual-clock simulator's core promise (DESIGN.md
//! §7) — identical configurations produce bit-identical measurements,
//! which is what makes the reproduced figures exactly re-runnable.

use cider_apps::passmark::Test;
use cider_bench::config::{SystemConfig, TestBed};
use cider_bench::{fig6, lmbench};

fn micro_fingerprint(config: SystemConfig) -> Vec<u64> {
    let mut bed = TestBed::builder(config).build();
    let (pid, tid) = bed.spawn_measured().expect("bench binaries");
    let mut out = vec![
        lmbench::null_syscall(&mut bed, tid).ns,
        lmbench::signal_handler_lat(&mut bed, pid, tid).unwrap().ns,
        lmbench::fork_exit_lat(&mut bed, tid).unwrap().ns,
        lmbench::pipe_lat(&mut bed, tid).unwrap().ns,
        lmbench::file_create_delete_lat(&mut bed, tid, 10 * 1024)
            .unwrap()
            .ns,
    ];
    out.push(bed.sys.kernel.clock.now_ns());
    out
}

#[test]
fn microbenchmarks_are_bit_identical_across_runs() {
    for config in SystemConfig::ALL {
        let a = micro_fingerprint(config);
        let b = micro_fingerprint(config);
        assert_eq!(a, b, "{config:?} must be deterministic");
    }
}

#[test]
fn passmark_is_bit_identical_across_runs() {
    let run = || {
        let mut bed = TestBed::builder(SystemConfig::CiderIos).build();
        let tid = fig6::prepare_passmark_thread(&mut bed);
        let mut values = Vec::new();
        for test in [
            Test::CpuInteger,
            Test::CpuStringSort,
            Test::Gfx2dImageRendering,
            Test::Gfx3dSimple,
        ] {
            values.push(
                fig6::run_test_with(
                    &mut bed,
                    tid,
                    test,
                    cider_apps::workloads::Sizes::quick(),
                )
                .unwrap()
                .to_bits(),
            );
        }
        values.push(bed.sys.kernel.clock.now_ns());
        values
    };
    assert_eq!(run(), run());
}

#[test]
fn workload_results_are_seed_deterministic() {
    let a = cider_apps::workloads::sort_input(128, 42);
    let b = cider_apps::workloads::sort_input(128, 42);
    assert_eq!(a, b);
    let c = cider_apps::workloads::sort_input(128, 43);
    assert_ne!(a, c, "different seeds diverge");
}
