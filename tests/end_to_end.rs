//! End-to-end integration: the full §3 user experience, spanning every
//! crate — package decryption, installation, CiderPress launch, input,
//! diplomatic rendering, lifecycle, and teardown.

use cider_apps::ciderpress::{AppState, CiderPress};
use cider_apps::launcher::{install_ipa_with_shortcut, Launcher};
use cider_apps::package::{build_ios_app, decrypt_ipa, DeviceKey, Ipa};
use cider_core::persona::persona_of;
use cider_core::system::CiderSystem;
use cider_gfx::stack::{install_gfx, GfxConfig, SharedGfx};
use cider_input::gestures::{synth_pinch, synth_tap};
use cider_kernel::profile::DeviceProfile;

fn booted() -> (CiderSystem, SharedGfx) {
    let mut sys = CiderSystem::new(DeviceProfile::nexus7());
    let (gfx, _) = install_gfx(&mut sys, GfxConfig::default());
    sys.kernel
        .register_program("app_main", std::sync::Arc::new(|_, _| 0));
    (sys, gfx)
}

fn installed_app(sys: &mut CiderSystem) -> (Launcher, String, Ipa) {
    let ipa = decrypt_ipa(
        &build_ios_app("com.example.e2e", "E2E", "app_main", true),
        DeviceKey::from_jailbroken_device(),
    )
    .expect("decrypt");
    let mut launcher = Launcher::new();
    let path =
        install_ipa_with_shortcut(sys, &mut launcher, &ipa).expect("install");
    (launcher, path, ipa)
}

#[test]
fn full_app_lifecycle() {
    let (mut sys, gfx) = booted();
    let (launcher, path, ipa) = installed_app(&mut sys);
    assert_eq!(launcher.shortcuts[0].icon, ipa.icon);

    let mut cp = CiderPress::launch(&mut sys, &gfx, &path).expect("launch");
    assert_eq!(
        persona_of(&sys.kernel, cp.app.1).unwrap(),
        cider_abi::Persona::Foreign
    );

    // Touch input end to end, including multi-touch.
    for ev in synth_tap(100, 100, 0) {
        cp.deliver_input(&mut sys, &ev).unwrap();
    }
    for ev in synth_pinch((640, 400), 100, 200, 5, 1_000_000) {
        cp.deliver_input(&mut sys, &ev).unwrap();
    }
    assert!(cp.bridge.events_forwarded >= 9);

    // Render a frame through the diplomatic stack.
    let lib = "OpenGLES.framework/OpenGLES";
    let tid = cp.app.1;
    let ctx = sys
        .diplomat_call(tid, lib, "EAGLContext_initWithAPI", &[])
        .unwrap();
    sys.diplomat_call(tid, lib, "EAGLContext_setCurrentContext", &[ctx])
        .unwrap();
    sys.diplomat_call(
        tid,
        lib,
        "EAGLContext_renderbufferStorage",
        &[ctx, 1280, 800],
    )
    .unwrap();
    sys.diplomat_call(tid, lib, "glClear", &[0x4000]).unwrap();
    sys.diplomat_call(tid, lib, "glDrawArrays", &[4, 0, 300])
        .unwrap();
    sys.diplomat_call(tid, lib, "EAGLContext_presentRenderbuffer", &[])
        .unwrap();
    assert_eq!(gfx.lock().unwrap().flinger.frames_presented, 1);

    // Lifecycle: pause, resume, stop.
    cp.pause(&mut sys, &gfx).unwrap();
    assert_eq!(cp.state, AppState::Paused);
    cp.resume(&mut sys, &gfx).unwrap();
    cp.stop(&mut sys, &gfx).unwrap();
    assert_eq!(cp.state, AppState::Stopped);

    // Mach IPC books balance after the whole story.
    cider_core::with_state(&mut sys.kernel, |_, st| {
        st.machipc.check_invariants()
    });
}

#[test]
fn android_and_ios_apps_coexist() {
    let (mut sys, gfx) = booted();
    let (_, path, _) = installed_app(&mut sys);

    // An Android app (interpreted workload) runs alongside the iOS app.
    let (android_pid, android_tid) = sys.spawn_process();
    let cp = CiderPress::launch(&mut sys, &gfx, &path).expect("launch");

    let prog = cider_apps::workloads::integer_program(200, 5);
    let mut vm = cider_apps::vm::Vm::new();
    let vm_result = vm.run(&mut sys.kernel, &prog).unwrap();
    let native =
        cider_apps::workloads::integer_native(&mut sys.kernel, 200, 5);
    assert_eq!(vm_result.value, native);

    assert_eq!(
        persona_of(&sys.kernel, android_tid).unwrap(),
        cider_abi::Persona::Domestic
    );
    assert_eq!(
        persona_of(&sys.kernel, cp.app.1).unwrap(),
        cider_abi::Persona::Foreign
    );
    assert_ne!(android_pid, cp.app.0);
}

#[test]
fn yelp_style_fallback_when_device_missing() {
    // §6.4: the Yelp app runs even though GPS is unsupported — it asks,
    // gets "no such device", and continues on its fallback path.
    let (mut sys, gfx) = booted();
    let (_, path, _) = installed_app(&mut sys);
    let cp = CiderPress::launch(&mut sys, &gfx, &path).expect("launch");

    // The app queries I/O Kit for a GPS service; none is registered.
    let found = cider_core::with_state(&mut sys.kernel, |_, st| {
        st.iokit.find_service("IOGPSNub")
    });
    assert!(found.is_none(), "no GPS on the Nexus 7 bridge");

    // The app continues: it can still render and take input.
    let tid = cp.app.1;
    let lib = "IOSurface.framework/IOSurface";
    let buf = sys
        .diplomat_call(tid, lib, "IOSurfaceCreate", &[64, 64])
        .unwrap();
    assert!(buf > 0);

    // Plug in a GPS-class device later and the bridge publishes it.
    sys.add_device("gps", "gps", "/dev/gps0").unwrap();
    let found = cider_core::with_state(&mut sys.kernel, |_, st| {
        st.iokit.find_service("IOGpsNub")
    });
    assert!(found.is_some(), "hotplugged device reaches I/O Kit");
}

#[test]
fn eventpump_can_wait_with_kqueue() {
    // §4.2: kqueue/kevent are supported "as user space libraries ...
    // simply via API interposition" — here the eventpump's run loop
    // watches its bridge socket through the interposed kqueue.
    use cider_core::kqueue::{EvAction, EvFilter, KQueue, Kevent};
    let (mut sys, gfx) = booted();
    let (_, path, _) = installed_app(&mut sys);
    let mut cp = CiderPress::launch(&mut sys, &gfx, &path).expect("launch");
    let (_, pump_tid, sock) = cp.bridge.pump;

    let mut kq = KQueue::new();
    kq.apply(
        &sys.kernel,
        EvAction::Add,
        Kevent {
            ident: sock.as_raw() as u64,
            filter: EvFilter::Read,
            udata: 0xE7,
            timer_ms: 0,
        },
    )
    .unwrap();

    // Quiet socket: no events.
    assert!(kq.poll(&mut sys.kernel, pump_tid).unwrap().is_empty());

    // CiderPress forwards a tap; the kqueue wakes the pump.
    cp.bridge
        .send_from_ciderpress(&mut sys, &synth_tap(5, 5, 0)[0])
        .unwrap();
    let evs = kq.poll(&mut sys.kernel, pump_tid).unwrap();
    assert_eq!(evs.len(), 1);
    assert_eq!(evs[0].udata, 0xE7);

    // The pump drains and forwards; the kqueue goes quiet again.
    assert_eq!(cp.bridge.pump_once(&mut sys).unwrap(), 1);
    assert!(kq.poll(&mut sys.kernel, pump_tid).unwrap().is_empty());
}

#[test]
fn accelerometer_samples_reach_the_app() {
    // §5.2: "The events sent to this port include mouse, button,
    // accelerometer, proximity and touch screen events."
    let (mut sys, gfx) = booted();
    let (_, path, _) = installed_app(&mut sys);
    let mut cp = CiderPress::launch(&mut sys, &gfx, &path).expect("launch");
    let tid = cp.app.1;
    for i in 0..10i32 {
        cp.deliver_input(
            &mut sys,
            &cider_input::events::AndroidEvent::Accelerometer {
                x: i * 10,
                y: -i * 10,
                z: 1000,
                time_ns: i as u64 * 10_000_000,
            },
        )
        .unwrap();
    }
    let mut samples = 0;
    while let Ok(ev) = cp.bridge.receive_app_event(&mut sys, tid) {
        let cider_input::events::IosHidEvent::Accelerometer { z, .. } = ev
        else {
            panic!("expected accelerometer, got {ev:?}");
        };
        // Android milli-g scaled to iOS micro-g.
        assert_eq!(z, 1_000_000);
        samples += 1;
    }
    assert_eq!(samples, 10);
}

#[test]
fn screenshot_flows_into_recents() {
    let (mut sys, gfx) = booted();
    let (mut launcher, path, _) = installed_app(&mut sys);
    let cp = CiderPress::launch(&mut sys, &gfx, &path).expect("launch");

    // Draw into the proxied surface and composite.
    {
        let mut g = gfx.lock().unwrap();
        let buf = g.flinger.dequeue_buffer(cp.surface).unwrap();
        g.gralloc.get_mut(buf).unwrap().pixels[0] = 0xC1DE;
        g.flinger.queue_buffer(cp.surface).unwrap();
        let cider_gfx::stack::GfxStack {
            gpu,
            flinger,
            gralloc,
            ..
        } = &mut *g;
        flinger.composite(&mut sys.kernel, gpu, gralloc);
    }
    let shot = gfx
        .lock()
        .unwrap()
        .flinger
        .last_screenshot
        .clone()
        .expect("screenshot captured");
    assert_eq!(shot.1[0], 0xC1DE);
    launcher.push_recent("E2E", shot.1);
    assert_eq!(launcher.recents.len(), 1);
}

// ----------------------------------------------------------------------
// Deterministic fault injection: every injected fault class either
// surfaces as a correctly translated error or triggers a traced
// recovery — the stack never panics under the fault matrix.
// ----------------------------------------------------------------------

use cider_abi::errno::Errno;
use cider_abi::syscall::LinuxSyscall;
use cider_core::state::with_state;
use cider_fault::{FaultLayer, FaultPlan, FaultSite};
use cider_frameworks::scenarios;
use cider_kernel::dispatch::{SyscallArgs, SyscallData};
use cider_kernel::kernel::Kernel;

#[test]
fn linux_convention_translates_every_injected_fault_class() {
    use cider_abi::types::OpenFlags;
    let mut k = Kernel::boot(DeviceProfile::nexus7());
    let (_pid, tid) = k.spawn_process();
    k.vfs.mkdir_p("/tmp").unwrap();
    fn arm(k: &mut Kernel, site: FaultSite) {
        k.faults = FaultLayer::with_plan(FaultPlan::new(3).with(site, 1000));
    }

    // A clean file so read and write reach their injection sites.
    let creat = (OpenFlags::CREAT | OpenFlags::RDWR).0 as i64;
    let mut open = SyscallArgs::regs([0, creat, 0o644, 0, 0, 0, 0]);
    open.data = SyscallData::Path("/tmp/faulty".into());
    let fd = k.trap(tid, LinuxSyscall::Open.number() as i64, &open).reg;
    assert!(fd >= 0);
    let mut w = SyscallArgs::regs([fd, 0, 1, 0, 0, 0, 0]);
    w.data = SyscallData::Bytes(vec![b'a'].into());
    assert!(k.trap(tid, LinuxSyscall::Write.number() as i64, &w).reg > 0);

    // Linux persona: faults come back as negative errnos, and the CPU
    // flags stay untouched (no carry bit in this convention).
    arm(&mut k, FaultSite::VfsRead);
    let args = SyscallArgs::regs([fd, 0, 1, 0, 0, 0, 0]);
    let r = k.trap(tid, LinuxSyscall::Read.number() as i64, &args);
    assert_eq!(r.reg, -(Errno::EIO.as_raw() as i64));
    assert!(!r.flags.carry);

    arm(&mut k, FaultSite::VfsWrite);
    let r = k.trap(tid, LinuxSyscall::Write.number() as i64, &w);
    assert_eq!(r.reg, -(Errno::EIO.as_raw() as i64));

    arm(&mut k, FaultSite::VfsCreate);
    let mut c = SyscallArgs::regs([0, creat, 0o644, 0, 0, 0, 0]);
    c.data = SyscallData::Path("/tmp/full".into());
    let r = k.trap(tid, LinuxSyscall::Open.number() as i64, &c);
    assert_eq!(r.reg, -(Errno::ENOSPC.as_raw() as i64));

    arm(&mut k, FaultSite::ForkPteCopy);
    let r = k.trap(
        tid,
        LinuxSyscall::Fork.number() as i64,
        &SyscallArgs::none(),
    );
    assert_eq!(r.reg, -(Errno::ENOMEM.as_raw() as i64));
}

#[test]
fn lost_wakeups_are_flushed_without_deadlocking_virtual_time() {
    use cider_kernel::process::ThreadState;
    use cider_xnu::psynch::PsynchOutcome;

    let (mut sys, _gfx) = booted();
    sys.kernel.trace = cider_trace::TraceSink::enabled_default();
    let (_pid, t1) = sys.kernel.spawn_process();
    let t2 = sys.kernel.spawn_thread(t1).unwrap();
    const MUTEX: u64 = 0x7000_0000;

    // t1 owns the mutex; t2 contends and parks on its wait channel.
    let k = &mut sys.kernel;
    assert_eq!(
        with_state(k, |k2, st| st.psynch_mutexwait(k2, t1, MUTEX)),
        PsynchOutcome::Acquired
    );
    assert_eq!(
        with_state(k, |k2, st| st.psynch_mutexwait(k2, t2, MUTEX)),
        PsynchOutcome::Blocked
    );
    assert!(matches!(
        k.thread(t2).unwrap().state,
        ThreadState::Blocked(_)
    ));

    // Arm the lost-wakeup site and drop the mutex: ownership transfers
    // to t2, but the wakeup that should unpark it vanishes.
    k.faults = FaultLayer::with_plan(
        FaultPlan::new(5).with(FaultSite::SchedWakeup, 1000),
    );
    with_state(k, |k2, st| st.psynch_mutexdrop(k2, t1, MUTEX)).unwrap();
    assert!(
        matches!(k.thread(t2).unwrap().state, ThreadState::Blocked(_)),
        "the armed site must actually lose the wakeup"
    );

    // The site stays armed: survival must not depend on the fault
    // clearing. The next scheduling point flushes the deferred channel,
    // t2 runs, and virtual time advances finitely instead of hanging.
    let before = k.clock.now_ns();
    k.schedule();
    assert_eq!(k.thread(t2).unwrap().state, ThreadState::Runnable);
    assert!(k.clock.now_ns() > before, "time moved past the recovery");

    // And t2 is not merely runnable: within a bounded number of
    // scheduler steps it actually gets the CPU back from the daemons.
    let ran = (0..64).any(|_| k.schedule() == Some(t2));
    assert!(ran, "flushed waiter never got the CPU");
    assert!(k
        .faults
        .recoveries()
        .iter()
        .any(|r| r.action.starts_with("sched/deferred_wakeup_flush")));
    let snap = k.trace.snapshot().unwrap();
    assert!(snap.metrics.counter("recovery/actions") > 0);
    assert!(snap.metrics.counter("fault/sched_wakeup") > 0);
}

#[test]
fn fault_matrix_never_panics_and_recovers() {
    for seed in [11u64, 23, 47] {
        let (mut sys, _gfx) = booted();
        let (_launcher, path, _ipa) = installed_app(&mut sys);
        sys.kernel.trace = cider_trace::TraceSink::enabled_default();
        sys.kernel.faults = FaultLayer::with_plan(FaultPlan::matrix(seed));

        // App launch under faults: dyld resolution, Mach allocation,
        // and zone exhaustion may all fire. Failure must be a clean
        // error, success a working app.
        let launched = CiderPress::launch(&mut sys, &_gfx, &path);
        if let Ok(mut cp) = launched {
            for ev in synth_tap(64, 64, 0) {
                // Drops are absorbed by the pump, never escalated.
                cp.deliver_input(&mut sys, &ev).unwrap();
            }
        }

        // VFS and process churn: only the injected errnos may appear.
        let (_p, tid) = sys.spawn_process();
        sys.kernel.vfs.mkdir_p("/tmp").unwrap();
        use cider_abi::types::OpenFlags;
        for i in 0..40 {
            let flags = OpenFlags::CREAT | OpenFlags::RDWR;
            match sys.kernel.sys_open(tid, &format!("/tmp/f{i}"), flags) {
                Ok(fd) => {
                    for r in [
                        sys.kernel.sys_write(tid, fd, b"x").map(|_| ()),
                        sys.kernel.sys_read(tid, fd, 1).map(|_| ()),
                        sys.kernel.sys_close(tid, fd),
                    ] {
                        if let Err(e) = r {
                            assert_eq!(e, Errno::EIO, "seed {seed}");
                        }
                    }
                }
                Err(e) => assert_eq!(e, Errno::ENOSPC, "seed {seed}"),
            }
            match sys.kernel.sys_fork(tid) {
                Ok((child_pid, child_tid)) => {
                    sys.kernel.sys_exit(child_tid, 0).unwrap();
                    sys.kernel.sys_waitpid(tid, child_pid).unwrap();
                }
                Err(e) => assert_eq!(e, Errno::ENOMEM, "seed {seed}"),
            }
        }

        // App-framework scenarios under the same matrix: bundle loads
        // may vanish mid-lookup (BundleMissing) and jetsam passes may
        // take spurious foreground victims (JetsamKill). Either way
        // the scenario fails with a clean errno or completes with the
        // supervisor having recovered the kill — never a panic.
        match scenarios::install_scenario_bundle(
            &mut sys,
            "Faulty",
            "com.example.faulty",
        ) {
            Ok(spec) => {
                for _ in 0..8 {
                    if let Err(e) =
                        scenarios::background_jetsam_relaunch(&mut sys, &spec)
                    {
                        // EIO: a spurious JetsamKill took the wrong
                        // process; the rest are injected VFS/exec
                        // errnos surfacing through launch.
                        assert!(
                            matches!(
                                e,
                                Errno::EIO
                                    | Errno::ENOENT
                                    | Errno::ENOSPC
                                    | Errno::ENOMEM
                                    | Errno::ENOEXEC
                            ),
                            "seed {seed}: dirty scenario errno {e:?}"
                        );
                    }
                }
            }
            Err(e) => assert_eq!(e, Errno::ENOSPC, "seed {seed}"),
        }

        // Daemon death: the supervisor must bring notifyd back even
        // when the respawn path itself is being fault-injected.
        let victim = sys.services.notifyd;
        sys.kernel.sys_exit(victim.tid, 9).unwrap();
        let mut respawned = false;
        for _ in 0..8 {
            let actions = sys.services.supervise(&mut sys.kernel).unwrap();
            if actions.iter().any(|a| a == "respawn(notifyd)") {
                respawned = true;
                break;
            }
        }
        assert!(respawned, "seed {seed}: notifyd never came back");
        assert_ne!(sys.services.notifyd.pid, victim.pid);

        // The ledger saw injections, the trace saw the recoveries, and
        // the IPC subsystem is still internally consistent.
        assert!(
            sys.kernel.faults.injected_total() > 0,
            "seed {seed}: matrix never fired"
        );
        assert!(!sys.kernel.faults.recoveries().is_empty());
        let snap = sys.kernel.trace.snapshot().unwrap();
        assert!(snap.metrics.counter("fault/injected") > 0);
        assert!(snap.metrics.counter("recovery/actions") > 0);
        with_state(&mut sys.kernel, |_, st| {
            st.machipc.check_invariants();
        });
    }
}

#[test]
fn spurious_jetsam_kill_is_recovered_by_the_app_supervisor() {
    use cider_abi::memorystatus::{AppState, LifecycleEvent};
    use cider_frameworks::AppSupervisor;

    let (mut sys, _gfx) = booted();
    sys.kernel.trace = cider_trace::TraceSink::enabled_default();
    let spec = scenarios::install_scenario_bundle(
        &mut sys,
        "Spiky",
        "com.example.spiky",
    )
    .unwrap();
    let (_, mut app, _tid) =
        scenarios::launch_to_foreground(&mut sys, &spec).unwrap();

    // No watermark pressure at all — only the transient-spike fault,
    // whose kill window reaches the foreground band inclusive.
    sys.kernel.faults = FaultLayer::with_plan(
        FaultPlan::new(3).with(FaultSite::JetsamKill, 1000),
    );
    let kernel_tid = sys.kernel_task.1;
    let killed = sys.kernel.sys_jetsam_tick(kernel_tid).unwrap();
    assert!(killed.contains(&app.pid), "spike must reach the foreground");
    assert_eq!(sys.kernel.memorystatus.stats.fault_kills, 1);
    assert_eq!(sys.kernel.memorystatus.stats.pressure_kills, 0);

    // The supervisor notices the kill and relaunches the app.
    app.apply(&mut sys.kernel, LifecycleEvent::Jetsam).unwrap();
    let mut sup = AppSupervisor::new(&spec.binary_path, &spec.bundle_id);
    sup.check(&mut sys, &mut app).unwrap().expect("relaunched");
    assert_eq!(app.state(), AppState::Launching);
    assert!(sys
        .kernel
        .faults
        .recoveries()
        .iter()
        .any(|r| r.action.starts_with("app/relaunch")));
    let snap = sys.kernel.trace.snapshot().unwrap();
    assert!(snap.metrics.counter("app/jetsam_kill/fault") > 0);
}

#[test]
fn vanished_bundle_resource_degrades_to_the_fallback_localization() {
    use cider_frameworks::Bundle;

    let (mut sys, _gfx) = booted();
    sys.kernel.trace = cider_trace::TraceSink::enabled_default();
    let spec = scenarios::install_scenario_bundle(
        &mut sys,
        "Ghost",
        "com.example.ghost",
    )
    .unwrap();
    let (_pid, tid) = sys.launch_ios_app(&spec.binary_path, &["app"]).unwrap();
    let bundle = Bundle::open(&mut sys.kernel, tid, &spec.bundle_dir).unwrap();

    // One injection budgeted: the requested `fr` localization
    // vanishes mid-lookup and the load degrades to `en`.
    sys.kernel.faults = FaultLayer::with_plan(FaultPlan::new(9).site(
        FaultSite::BundleMissing,
        cider_fault::SiteConfig::with_probability(1000).budget(1),
    ));
    let (path, bytes) = bundle
        .load_resource(&mut sys.kernel, "Main", "strings", Some("fr"))
        .unwrap();
    assert!(path.contains("en.lproj"), "fell back past fr: {path}");
    assert_eq!(bytes, b"title=Scenario");
    assert!(sys
        .kernel
        .faults
        .recoveries()
        .iter()
        .any(|r| r.action.starts_with("bundle/fallback")));
    assert!(sys.kernel.faults.injected_total() > 0);
}

// ----------------------------------------------------------------------
// Warm start under fault injection: a corrupt shared cache must cost a
// cold walk, never a failed launch.
// ----------------------------------------------------------------------

use cider_bench::config::{SystemConfig, TestBed};
use cider_bench::lmbench;

#[test]
fn corrupt_shared_cache_falls_back_to_cold_walk_and_still_launches() {
    let mut bed = TestBed::builder(SystemConfig::CiderIos)
        .traced()
        .warm_start()
        .build();
    let (_pid, tid) = bed.spawn_measured().unwrap();
    // Every consult of the cache from here on reports corruption.
    bed.enable_faults(
        FaultPlan::new(7).with(FaultSite::SharedCacheCorrupt, 1000),
    );
    for i in 0..3 {
        lmbench::fork_exec_lat(&mut bed, tid, true).unwrap_or_else(|e| {
            panic!("launch {i}: corruption must degrade, not fail: {e:?}")
        });
    }
    let stats = bed.sys.kernel.warm.stats;
    assert!(stats.invalidations > 0, "cache was never invalidated");
    assert!(
        stats.cold_bakes > stats.warm_execs,
        "every launch should have fallen back cold: {stats:?}"
    );
    let snap = bed.trace_snapshot().unwrap();
    assert!(snap.metrics.counter("dyld/cache_invalidations") > 0);
    assert!(snap.metrics.counter("fault/shared_cache_corrupt") > 0);
}

/// The full fault matrix (which now arms `shared_cache_corrupt`
/// automatically) over a warm-start launch storm, on the CI seeds:
/// injected faults surface as clean errnos or silent cold walks, and
/// the cache machinery keeps working.
#[test]
fn fault_matrix_auto_covers_the_warm_start_machinery() {
    let mut invalidations = 0;
    for seed in [11u64, 23, 47] {
        let mut bed = TestBed::builder(SystemConfig::CiderIos)
            .traced()
            .warm_start()
            .build();
        let (_pid, tid) = bed.spawn_measured().unwrap();
        bed.enable_faults(FaultPlan::matrix(seed));
        for _ in 0..8 {
            // Any failure must be a clean injected errno, never a
            // panic or a wedged kernel.
            let _ = lmbench::fork_exec_lat(&mut bed, tid, true);
        }
        assert!(
            bed.sys.kernel.faults.injected_total() > 0,
            "seed {seed}: matrix never fired"
        );
        let stats = &bed.sys.kernel.warm.stats;
        assert!(
            stats.cold_bakes + stats.warm_execs > 0,
            "seed {seed}: warm machinery never engaged"
        );
        invalidations += stats.invalidations;
    }
    assert!(
        invalidations > 0,
        "shared_cache_corrupt never fired across the CI seeds — \
         the matrix is not covering the new site"
    );
}
