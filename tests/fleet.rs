//! Fleet determinism: the contract that makes parallel simulation
//! trustworthy.
//!
//! Two layers are pinned here. Per device: running a device through
//! the fleet driver is byte-identical (by trace fingerprint) to
//! running the same derived spec directly through [`run_device`] —
//! the pool adds nothing and removes nothing. Fleet-level: a whole
//! mixed-persona fleet under fault injection renders byte-identical
//! aggregated JSON across repeat runs and across host-thread counts,
//! because aggregation happens in device-id order and host wall-clock
//! never enters the report.

use cider_fault::FaultPlan;
use cider_fleet::{
    run_device, run_fleet, FleetReport, FleetSpec, PersonaMix, Workload,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// fleet(N=1) is exactly one direct `run_device` call: the same
    /// fingerprint, clock, and unit count, whatever the seed and
    /// workload.
    #[test]
    fn single_device_fleet_matches_direct_run(
        seed in 0u64..1_000_000,
        ops in 1u32..8,
        ios in any::<bool>(),
    ) {
        let mix = if ios {
            PersonaMix::ALL_IOS
        } else {
            PersonaMix::ALL_ANDROID
        };
        let spec =
            FleetSpec::new(1, seed, Workload::LmbenchMix { ops })
                .mix(mix);
        let fleet = run_fleet(&spec);
        let direct = run_device(&spec.device_specs()[0]);
        prop_assert_eq!(
            fleet.results[0].trace_fingerprint,
            direct.trace_fingerprint
        );
        prop_assert_eq!(fleet.results[0].virtual_ns, direct.virtual_ns);
        prop_assert_eq!(
            fleet.results[0].units_completed,
            direct.units_completed
        );
    }
}

fn faulted_fleet(threads: usize) -> FleetSpec {
    FleetSpec::new(64, 42, Workload::LmbenchMix { ops: 4 })
        .mix(PersonaMix::EVEN)
        .fault_plan(FaultPlan::matrix(23))
        .host_threads(threads)
}

#[test]
fn fleet_json_is_identical_across_runs_and_thread_counts() {
    let first = FleetReport::from_run(&run_fleet(&faulted_fleet(1)));
    let again = FleetReport::from_run(&run_fleet(&faulted_fleet(1)));
    let wide = FleetReport::from_run(&run_fleet(&faulted_fleet(8)));
    assert_eq!(first.to_json(), again.to_json(), "repeat run diverged");
    assert_eq!(first.to_json(), wide.to_json(), "thread count leaked");
    // The faults were real, not vacuous.
    assert!(first.groups["all"].faults_total > 0);
}

/// CoW first-write fault charges land on the faulting thread's virtual
/// clock; if one were lost or double-charged depending on host
/// scheduling, the warm-storm report would differ between 1 and 8
/// worker threads. The fault matrix rides along so cache invalidations
/// (shared_cache_corrupt) are part of the replayed schedule too.
#[test]
fn warm_storm_fleet_is_host_thread_invariant() {
    let spec = |threads: usize| {
        FleetSpec::new(24, 11, Workload::LaunchStormWarm { launches: 6 })
            .mix(PersonaMix::EVEN)
            .fault_plan(FaultPlan::matrix(47))
            .host_threads(threads)
    };
    let one = FleetReport::from_run(&run_fleet(&spec(1)));
    let wide = FleetReport::from_run(&run_fleet(&spec(8)));
    assert_eq!(
        one.to_json(),
        wide.to_json(),
        "CoW fault charges desynced virtual time across host threads"
    );
    assert!(one.groups["all"].launches_per_vsec_milli.is_some());
    assert!(one.groups["all"].faults_total > 0, "matrix never fired");
}

/// The IPC storm drives the v2 fast path — typed rights, lock-free
/// queues, OOL remap, batched ring flushes — on every device. Message
/// delivery order inside the lock-free queues is (stamp, seq) virtual
/// order, so the report must be byte-identical across 1 and 8 host
/// threads; the fault matrix rides along so injected Mach errors
/// (port allocation, send, OOL remap refusal, ring overflow) are part
/// of the replayed schedule too.
#[test]
fn ipc_storm_fleet_is_host_thread_invariant() {
    let spec = |threads: usize| {
        FleetSpec::new(24, 11, Workload::IpcStorm { msgs: 6 })
            .mix(PersonaMix::EVEN)
            .fault_plan(FaultPlan::matrix(47))
            .host_threads(threads)
    };
    let one = FleetReport::from_run(&run_fleet(&spec(1)));
    let wide = FleetReport::from_run(&run_fleet(&spec(8)));
    assert_eq!(
        one.to_json(),
        wide.to_json(),
        "IPC v2 delivery order desynced across host threads"
    );
    assert!(one.groups["all"].latencies.contains_key("ipc/unit"));
    assert!(one.groups["all"].faults_total > 0, "matrix never fired");
}

#[test]
fn launch_storm_fleet_reports_per_persona_throughput() {
    let spec = FleetSpec::new(16, 7, Workload::LaunchStorm { launches: 4 })
        .mix(PersonaMix::EVEN)
        .host_threads(4);
    let report = FleetReport::from_run(&run_fleet(&spec));
    for group in ["all", "cider_ios", "cider_android"] {
        let g = &report.groups[group];
        assert!(
            g.launches_per_vsec_milli.is_some(),
            "{group} missing throughput"
        );
        assert!(g.latencies.contains_key("launch/latency"));
    }
}
