//! Golden-snapshot tests for the evaluation tables: the rendered
//! Figure 5 and Figure 6 output is pinned byte-for-byte under
//! `tests/golden/`. The virtual clock makes both tables fully
//! deterministic, so any drift is a real behaviour change — either a
//! deliberate model change (regenerate the snapshots) or a regression.
//!
//! Regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_tables
//! ```

use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, got).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nregenerate with UPDATE_GOLDEN=1 cargo test \
             --test golden_tables",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name} drifted from its golden snapshot; if the change is \
         intended, regenerate with UPDATE_GOLDEN=1 cargo test --test \
         golden_tables"
    );
}

#[test]
fn fig5_table_matches_golden() {
    check("fig5.txt", &cider_bench::fig5::run().to_string());
}

#[test]
fn fig6_table_matches_golden() {
    check("fig6.txt", &cider_bench::fig6::run().to_string());
}

#[test]
fn app_scenario_table_matches_golden() {
    check("fig_apps.txt", &cider_bench::apps::run().to_string());
}
