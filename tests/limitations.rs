//! The paper's §6.4 limitations, reproduced as observable behaviours:
//! devices the prototype doesn't support, the Facetime/Yelp dichotomy
//! (hard dependency vs. fall-back path), the WebKit multi-threaded
//! OpenGL ES restriction, and the unmapped security models.

use cider_abi::errno::Errno;
use cider_abi::persona::Persona;
use cider_core::persona::{attach_persona_ext, persona_ext_mut};
use cider_core::system::CiderSystem;
use cider_gfx::stack::{install_gfx, GfxConfig, SharedGfx};
use cider_kernel::profile::DeviceProfile;

fn booted() -> (CiderSystem, SharedGfx) {
    let mut sys = CiderSystem::new(DeviceProfile::nexus7());
    let (gfx, _) = install_gfx(&mut sys, GfxConfig::default());
    (sys, gfx)
}

fn foreign_thread(sys: &mut CiderSystem) -> cider_abi::ids::Tid {
    let (_, tid) = sys.spawn_process();
    let xnu = sys.xnu_personality;
    let linux = sys.kernel.linux_personality();
    attach_persona_ext(&mut sys.kernel, tid, Persona::Foreign, xnu).unwrap();
    persona_ext_mut(&mut sys.kernel, tid)
        .unwrap()
        .install(Persona::Domestic, linux);
    tid
}

#[test]
fn camera_dependent_app_cannot_run() {
    // "an app such as Facetime that requires use of the camera does not
    // currently work with Cider" — the camera has no I/O Kit bridge
    // entry and no diplomatic library.
    let (mut sys, _) = booted();
    let tid = foreign_thread(&mut sys);
    let camera_service = cider_core::with_state(&mut sys.kernel, |_, st| {
        st.iokit.find_service("IOCameraNub")
    });
    assert!(camera_service.is_none());
    // No AVCapture diplomatic library was installed either.
    assert_eq!(
        sys.diplomat_call(
            tid,
            "AVFoundation.framework/AVCapture",
            "AVCaptureSessionStart",
            &[],
        ),
        Err(Errno::ENOSYS),
        "hard camera dependency fails"
    );
}

#[test]
fn yelp_style_app_continues_without_location() {
    // "the iOS Yelp app runs on Cider even though GPS and location
    // services are currently unsupported" — the location query fails,
    // the rest of the app keeps working.
    let (mut sys, _) = booted();
    let tid = foreign_thread(&mut sys);
    let gps = cider_core::with_state(&mut sys.kernel, |_, st| {
        st.iokit.find_service("IOGPSNub")
    });
    assert!(gps.is_none(), "location unavailable");
    // The fall-back path: the app still allocates surfaces and renders.
    let buf = sys
        .diplomat_call(
            tid,
            "IOSurface.framework/IOSurface",
            "IOSurfaceCreate",
            &[128, 128],
        )
        .expect("rest of the app functions");
    assert!(buf > 0);
}

#[test]
fn webkit_multithreaded_gl_is_hazardous() {
    // "the iOS WebKit framework is only partially supported due to its
    // multi-threaded use of the OpenGL ES API" — the diplomatic GL
    // library shares one current-context slot, so two foreign threads
    // using GL concurrently stomp each other's context.
    let (mut sys, gfx) = booted();
    let t1 = foreign_thread(&mut sys);
    let t2 = sys.kernel.spawn_thread(t1).unwrap();
    let lib = "OpenGLES.framework/OpenGLES";

    let ctx1 = sys
        .diplomat_call(t1, lib, "EAGLContext_initWithAPI", &[])
        .unwrap();
    let ctx2 = sys
        .diplomat_call(t2, lib, "EAGLContext_initWithAPI", &[])
        .unwrap();
    sys.diplomat_call(t1, lib, "EAGLContext_setCurrentContext", &[ctx1])
        .unwrap();
    sys.diplomat_call(
        t1,
        lib,
        "EAGLContext_renderbufferStorage",
        &[ctx1, 64, 64],
    )
    .unwrap();

    // Thread 2 switches the (shared) current context mid-frame...
    sys.diplomat_call(t2, lib, "EAGLContext_setCurrentContext", &[ctx2])
        .unwrap();
    // ...so thread 1's draw lands in thread 2's context.
    sys.diplomat_call(t1, lib, "glDrawArrays", &[4, 0, 30])
        .unwrap();
    {
        let g = gfx.lock().unwrap();
        let c1 = g
            .egl
            .context(cider_gfx::gles::ContextId(ctx1 as u64))
            .unwrap();
        let c2 = g
            .egl
            .context(cider_gfx::gles::ContextId(ctx2 as u64))
            .unwrap();
        assert_eq!(c1.frame_draw_calls, 0, "thread 1's frame lost the draw");
        assert_eq!(c2.frame_draw_calls, 1, "it landed in thread 2's context");
    }
    // Presenting thread 1's frame now fails: the current context (2)
    // has no renderbuffer storage attached.
    assert_eq!(
        sys.diplomat_call(t1, lib, "EAGLContext_presentRenderbuffer", &[]),
        Err(Errno::EBADF),
        "WebKit-style concurrent GL breaks, as §6.4 reports"
    );
}

#[test]
fn ios_security_model_is_not_mapped() {
    // "Cider does not map iOS security to Android security" — the
    // overlay FS carries no iOS entitlement metadata: any process can
    // read another app's container.
    let (mut sys, _) = booted();
    sys.kernel
        .vfs
        .write_file_overlay(
            "/var/mobile/Library/Preferences/com.example.plist",
            b"secret".to_vec(),
        )
        .unwrap();
    let (_, other_tid) = sys.spawn_process();
    // A completely unrelated (domestic) process reads it freely.
    let fd = sys
        .kernel
        .sys_open(
            other_tid,
            "/var/mobile/Library/Preferences/com.example.plist",
            cider_abi::types::OpenFlags::RDONLY,
        )
        .expect("no runtime entitlement check exists");
    assert_eq!(sys.kernel.sys_read(other_tid, fd, 16).unwrap(), b"secret");
}

#[test]
fn hotplugging_a_device_class_enables_it() {
    // §6.4: "Devices with a simple interface, such as GPS, can be
    // supported with I/O Kit drivers and diplomatic functions" — adding
    // the Linux driver publishes the nub for matching.
    let (mut sys, _) = booted();
    sys.add_device("mpu6050", "sensor", "/dev/iio0").unwrap();
    cider_core::with_state(&mut sys.kernel, |_, st| {
        assert!(st.iokit.find_service("IOSensorNub").is_some());
    });
}
