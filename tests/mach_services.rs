//! Mach IPC and I/O Kit integration at the trap level: the wire-encoded
//! `mach_msg_trap`, the bootstrap/notifyd protocols, and the framebuffer
//! user client an iOS app queries through the registry.

use bytes::Bytes;
use cider_abi::ids::PortName;
use cider_abi::syscall::{MachTrap, XnuTrap};
use cider_core::services::msg_ids;
use cider_core::system::CiderSystem;
use cider_core::wire;
use cider_gfx::fbdriver::selectors;
use cider_gfx::stack::{install_gfx, GfxConfig};
use cider_kernel::dispatch::{SyscallArgs, SyscallData};
use cider_kernel::profile::DeviceProfile;
use cider_loader::framework_set::FrameworkSet;
use cider_loader::MachOBuilder;
use cider_xnu::ipc::UserMessage;

fn booted_with_app() -> (CiderSystem, cider_abi::ids::Pid, cider_abi::ids::Tid)
{
    let mut sys = CiderSystem::new(DeviceProfile::nexus7());
    let (_, _) = install_gfx(&mut sys, GfxConfig::default());
    sys.kernel
        .register_program("app_main", std::sync::Arc::new(|_, _| 0));
    let mut b = MachOBuilder::executable("app_main");
    for dep in FrameworkSet::app_default_deps() {
        b = b.depends_on(&dep);
    }
    sys.kernel
        .vfs
        .write_file_overlay("/Applications/ms.app/ms", b.build().to_bytes())
        .unwrap();
    let (pid, tid) = sys
        .launch_ios_app("/Applications/ms.app/ms", &["ms"])
        .unwrap();
    (sys, pid, tid)
}

fn mach_trap(
    sys: &mut CiderSystem,
    tid: cider_abi::ids::Tid,
    trap: MachTrap,
    args: SyscallArgs,
) -> cider_kernel::dispatch::UserTrapResult {
    sys.trap(tid, XnuTrap::Mach(trap).encode(), &args)
}

#[test]
fn task_self_and_reply_port_traps() {
    let (mut sys, _, tid) = booted_with_app();
    let r1 =
        mach_trap(&mut sys, tid, MachTrap::TaskSelfTrap, SyscallArgs::none());
    let r2 =
        mach_trap(&mut sys, tid, MachTrap::TaskSelfTrap, SyscallArgs::none());
    assert_eq!(r1.reg, r2.reg, "task self port is stable");
    let reply =
        mach_trap(&mut sys, tid, MachTrap::MachReplyPort, SyscallArgs::none());
    assert_ne!(reply.reg, r1.reg);
    assert!(reply.reg > 0);
}

#[test]
fn wire_level_mach_msg_roundtrip() {
    let (mut sys, _, tid) = booted_with_app();
    // Allocate a port and a send right through the traps.
    let port = mach_trap(
        &mut sys,
        tid,
        MachTrap::MachPortAllocate,
        SyscallArgs::none(),
    )
    .reg;
    let send = mach_trap(
        &mut sys,
        tid,
        MachTrap::MachPortInsertRight,
        SyscallArgs::regs([port, 0, 0, 0, 0, 0, 0]),
    )
    .reg;

    // SEND.
    let msg = UserMessage::simple(
        PortName(send as u32),
        77,
        Bytes::from(&b"wire payload"[..]),
    );
    let mut args = SyscallArgs::regs([1, 0, 0, 0, 0, 0, 0]);
    args.data = SyscallData::Bytes(wire::encode_user_message(&msg).into());
    let r = mach_trap(&mut sys, tid, MachTrap::MachMsgTrap, args);
    assert_eq!(r.reg, 0, "KERN_SUCCESS");

    // RECEIVE.
    let rcv = SyscallArgs::regs([2, 0, port, 0, 0, 0, 0]);
    let r = mach_trap(&mut sys, tid, MachTrap::MachMsgTrap, rcv);
    assert_eq!(r.reg, 0);
    let got = wire::decode_received_message(&r.out_data).unwrap();
    assert_eq!(got.msg_id, 77);
    assert_eq!(&got.body[..], b"wire payload");

    // Receive again: empty queue reports MACH_RCV_TIMED_OUT.
    let rcv = SyscallArgs::regs([2, 0, port, 0, 0, 0, 0]);
    let r = mach_trap(&mut sys, tid, MachTrap::MachMsgTrap, rcv);
    assert_eq!(r.reg, 0x1000_4003_i64);
}

#[test]
fn ios_app_talks_to_notifyd_like_on_ios() {
    // "every app monitors a Mach IPC port for incoming low-level event
    // notifications" (§5.2) — here the full register/post/deliver cycle.
    // notifyd's delivery fan-out rides the IPC v2 trap ring, so the
    // ring-batch counter must rise across the post.
    let (mut sys, _, tid) = booted_with_app();
    sys.kernel.trace = cider_trace::TraceSink::enabled_default();
    let notify_port = sys
        .bootstrap_look_up(tid, "com.apple.system.notification_center")
        .unwrap();
    let delivery = sys.mach_port_allocate(tid).unwrap();
    let mut reg = UserMessage::simple(
        notify_port,
        msg_ids::NOTIFY_REGISTER,
        Bytes::from(&b"com.apple.springboard.ready"[..]),
    );
    reg.ports.push(cider_xnu::ipc::PortDescriptor {
        name: delivery,
        disposition: cider_xnu::ipc::PortDisposition::MakeSend,
    });
    sys.mach_msg_send(tid, reg).unwrap();
    sys.run_services();

    let post = UserMessage::simple(
        notify_port,
        msg_ids::NOTIFY_POST,
        Bytes::from(&b"com.apple.springboard.ready"[..]),
    );
    let flushes_before = sys
        .kernel
        .trace
        .snapshot()
        .map(|s| s.metrics.counter("ipc/ring_flush"))
        .unwrap_or(0);
    sys.mach_msg_send(tid, post).unwrap();
    sys.run_services();

    let got = sys.mach_msg_receive(tid, delivery).unwrap();
    assert_eq!(got.msg_id, msg_ids::NOTIFY_DELIVER);
    let flushes_after = sys
        .kernel
        .trace
        .snapshot()
        .map(|s| s.metrics.counter("ipc/ring_flush"))
        .unwrap();
    assert!(
        flushes_after > flushes_before,
        "notifyd delivery did not go through a ring batch \
         ({flushes_before} -> {flushes_after})"
    );
    cider_core::with_state(&mut sys.kernel, |_, st| {
        st.machipc.check_invariants()
    });
}

#[test]
fn framebuffer_reachable_from_the_registry() {
    // §5.1's AppleM2CLCD story: the app locates the display through the
    // I/O Kit registry and drives it via external methods. (The driver
    // class was registered at install_gfx time — on kernel boot.)
    let (mut sys, _, _) = booted_with_app();
    cider_core::with_state(&mut sys.kernel, |_, st| {
        assert!(
            st.iokit.find_service("AppleM2CLCD").is_some(),
            "driver instance attached at boot"
        );
        let nub = st.iokit.find_service("IODisplayNub").expect("bridged");
        assert_eq!(
            st.iokit.property_string(nub, "IOLinuxDevice"),
            Some("/dev/fb0"),
            "the registry entry points at the Linux device node"
        );
        let conn = st.iokit.service_open(nub).unwrap();
        let (size, _) = st
            .iokit
            .connect_call_method(conn, selectors::GET_SIZE, &[], &[])
            .unwrap();
        assert_eq!(size, vec![1280, 800]);
        let mut last = 0;
        for _ in 0..3 {
            let (out, _) = st
                .iokit
                .connect_call_method(conn, selectors::SWAP_SUBMIT, &[], &[])
                .unwrap();
            last = out[0];
        }
        assert_eq!(last, 3, "frame counter advanced per swap");
        st.iokit.service_close(conn).unwrap();
    });
}

#[test]
fn task_teardown_returns_all_ports() {
    let (mut sys, pid, tid) = booted_with_app();
    for _ in 0..5 {
        mach_trap(
            &mut sys,
            tid,
            MachTrap::MachPortAllocate,
            SyscallArgs::none(),
        );
    }
    let live_before = cider_core::with_state(&mut sys.kernel, |_, st| {
        st.machipc.live_ports()
    });
    assert!(live_before >= 5);
    // XNU exit tears the task's IPC space down.
    let exit_nr = XnuTrap::Unix(cider_abi::syscall::XnuSyscall::Exit).encode();
    sys.trap(tid, exit_nr, &SyscallArgs::regs([0, 0, 0, 0, 0, 0, 0]));
    cider_core::with_state(&mut sys.kernel, |_, st| {
        assert!(!st.has_task_space(pid));
        st.machipc.check_invariants();
    });
}
