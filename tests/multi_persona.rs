//! Multi-persona integration: the §4 kernel ABI claims exercised across
//! crates — simultaneous personas in one process, cross-ecosystem
//! signals with renumbering, trap-level syscall translation, and the
//! diplomat TLS discipline.

use cider_abi::errno::Errno;
use cider_abi::persona::Persona;
use cider_abi::signal::{Signal, XnuSignal};
use cider_abi::syscall::{XnuSyscall, XnuTrap};
use cider_core::persona::{persona_ext_mut, persona_of, set_persona};
use cider_core::system::CiderSystem;
use cider_gfx::stack::{install_gfx, GfxConfig};
use cider_kernel::dispatch::{SyscallArgs, SyscallData};
use cider_kernel::process::SigDisposition;
use cider_kernel::profile::DeviceProfile;
use cider_loader::framework_set::FrameworkSet;
use cider_loader::MachOBuilder;

fn booted() -> CiderSystem {
    let mut sys = CiderSystem::new(DeviceProfile::nexus7());
    let (_, _) = install_gfx(&mut sys, GfxConfig::default());
    sys.kernel
        .register_program("app_main", std::sync::Arc::new(|_, _| 0));
    sys
}

fn launch_ios(
    sys: &mut CiderSystem,
) -> (cider_abi::ids::Pid, cider_abi::ids::Tid) {
    let mut b = MachOBuilder::executable("app_main");
    for dep in FrameworkSet::app_default_deps() {
        b = b.depends_on(&dep);
    }
    sys.kernel
        .vfs
        .write_file_overlay("/Applications/mp.app/mp", b.build().to_bytes())
        .unwrap();
    sys.launch_ios_app("/Applications/mp.app/mp", &["mp"])
        .unwrap()
}

#[test]
fn one_process_two_simultaneous_personas() {
    let mut sys = booted();
    let (_, t_foreign) = launch_ios(&mut sys);
    let t_domestic = sys.kernel.spawn_thread(t_foreign).unwrap();
    let linux = sys.kernel.linux_personality();
    persona_ext_mut(&mut sys.kernel, t_domestic)
        .unwrap()
        .install(Persona::Domestic, linux);
    set_persona(&mut sys.kernel, t_domestic, Persona::Domestic).unwrap();

    // Both threads trap with their own ABIs, concurrently.
    let xnu_getpid = XnuTrap::Unix(XnuSyscall::Getpid).encode();
    let linux_getpid =
        cider_abi::syscall::LinuxSyscall::Getpid.number() as i64;
    let rf = sys.trap(t_foreign, xnu_getpid, &SyscallArgs::none());
    let rd = sys.trap(t_domestic, linux_getpid, &SyscallArgs::none());
    assert_eq!(rf.reg, rd.reg, "same process, same pid");
    assert_eq!(
        persona_of(&sys.kernel, t_foreign).unwrap(),
        Persona::Foreign
    );
    assert_eq!(
        persona_of(&sys.kernel, t_domestic).unwrap(),
        Persona::Domestic
    );
}

#[test]
fn signals_cross_ecosystems_with_renumbering() {
    let mut sys = booted();
    let (ios_pid, ios_tid) = launch_ios(&mut sys);
    let (android_pid, android_tid) = sys.spawn_process();

    // Both install a SIGUSR1 handler (internal numbering via typed API).
    sys.kernel
        .sys_sigaction(ios_tid, Signal::SIGUSR1, SigDisposition::Handler(9))
        .unwrap();
    sys.kernel
        .sys_sigaction(
            android_tid,
            Signal::SIGUSR1,
            SigDisposition::Handler(9),
        )
        .unwrap();

    // Android → iOS: posted with the Linux number, delivered as XNU 30.
    sys.kernel
        .sys_kill(android_tid, ios_pid, Signal::SIGUSR1)
        .unwrap();
    sys.kernel.deliver_pending(ios_tid).unwrap();
    let d = &sys.kernel.thread(ios_tid).unwrap().delivered;
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].user_number, XnuSignal::SIGUSR1.as_raw()); // 30
    assert_eq!(
        d[0].frame_bytes,
        cider_abi::signal::sigframe::XNU_FRAME_BYTES
    );

    // iOS → Android through the XNU kill trap (BSD numbering in, Linux
    // numbering out).
    let kill_nr = XnuTrap::Unix(XnuSyscall::Kill).encode();
    let args = SyscallArgs::regs([
        android_pid.as_raw() as i64,
        XnuSignal::SIGUSR1.as_raw() as i64, // 30, the BSD number
        0,
        0,
        0,
        0,
        0,
    ]);
    let r = sys.trap(ios_tid, kill_nr, &args);
    assert!(!r.flags.carry);
    sys.kernel.deliver_pending(android_tid).unwrap();
    let d = &sys.kernel.thread(android_tid).unwrap().delivered;
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].user_number, Signal::SIGUSR1.as_raw()); // 10
    assert_eq!(
        d[0].frame_bytes,
        cider_abi::signal::sigframe::LINUX_FRAME_BYTES
    );
}

#[test]
fn xnu_error_convention_on_the_wire() {
    let mut sys = booted();
    let (_, tid) = launch_ios(&mut sys);
    // Opening a missing path: carry flag set, BSD errno in the register.
    let open_nr = XnuTrap::Unix(XnuSyscall::Open).encode();
    let mut args = SyscallArgs::none();
    args.data = SyscallData::Path("/definitely/missing".into());
    let r = sys.trap(tid, open_nr, &args);
    assert!(r.flags.carry);
    assert_eq!(r.reg, 2, "ENOENT is 2 in both numberings");

    // EAGAIN-class errors renumber: read from an empty pipe.
    let (rfd, _w) = sys.kernel.sys_pipe(tid).unwrap();
    let read_nr = XnuTrap::Unix(XnuSyscall::Read).encode();
    let args = SyscallArgs::regs([rfd.as_raw() as i64, 0, 1, 0, 0, 0, 0]);
    let r = sys.trap(tid, read_nr, &args);
    assert!(r.flags.carry);
    assert_eq!(r.reg, 35, "EAGAIN is 35 on XNU, not Linux's 11");
}

#[test]
fn stat64_translates_struct_layout() {
    let mut sys = booted();
    let (_, tid) = launch_ios(&mut sys);
    sys.kernel
        .vfs
        .write_file("/tmp/st", vec![9u8; 1234])
        .unwrap();
    let nr = XnuTrap::Unix(XnuSyscall::Stat64).encode();
    let mut args = SyscallArgs::none();
    args.data = SyscallData::Path("/tmp/st".into());
    let r = sys.trap(tid, nr, &args);
    assert!(!r.flags.carry);
    // Decode the returned stat64: size at offset 16, birthtime present.
    let size = u64::from_le_bytes(r.out_data[16..24].try_into().unwrap());
    assert_eq!(size, 1234);
    assert_eq!(r.out_data.len(), 64, "stat64 layout with birthtime");
}

#[test]
fn posix_spawn_via_clone_and_exec() {
    let mut sys = booted();
    let (_, tid) = launch_ios(&mut sys);
    sys.kernel.register_program(
        "hello_world",
        std::sync::Arc::new(|k, tid| {
            let _ = k.sys_write(tid, cider_abi::ids::Fd::STDOUT, b"spawned\n");
            0
        }),
    );
    let hello = cider_loader::ElfBuilder::executable("hello_world")
        .needs("libc.so")
        .build();
    sys.kernel
        .vfs
        .write_file("/system/bin/hello", hello.to_bytes())
        .unwrap();

    let nr = XnuTrap::Unix(XnuSyscall::PosixSpawn).encode();
    let mut args = SyscallArgs::none();
    args.data = SyscallData::Exec {
        path: "/system/bin/hello".into(),
        argv: vec!["hello".into()],
    };
    let r = sys.trap(tid, nr, &args);
    assert!(!r.flags.carry, "posix_spawn failed: {}", r.reg);
    let child_pid = cider_abi::ids::Pid(r.reg as u32);
    let child = sys.kernel.process(child_pid).unwrap();
    assert_eq!(child.program.format, "elf", "child execed the ELF");
    // The child's thread dropped to the domestic persona.
    let child_tid = child.threads[0];
    assert_eq!(
        persona_of(&sys.kernel, child_tid).unwrap(),
        Persona::Domestic
    );
    sys.kernel.run_entry(child_tid).unwrap();
    assert_eq!(sys.kernel.console_of(child_pid).unwrap(), b"spawned\n");
    assert_eq!(sys.kernel.sys_waitpid(tid, child_pid).unwrap(), 0);
}

#[test]
fn diplomat_updates_foreign_errno_tls() {
    let mut sys = booted();
    let (_, tid) = launch_ios(&mut sys);
    // IOSurfaceCreate with zero dimensions fails with EINVAL in the
    // domestic library; the diplomat converts it into the foreign TLS.
    let r = sys.diplomat_call(
        tid,
        "IOSurface.framework/IOSurface",
        "IOSurfaceCreate",
        &[0, 0],
    );
    assert_eq!(r, Err(Errno::EINVAL));
    let ext = persona_ext_mut(&mut sys.kernel, tid).unwrap();
    assert_eq!(
        ext.state(Persona::Foreign).unwrap().tls.errno_raw(),
        22,
        "EINVAL visible to foreign code"
    );
    // And the thread is back in its foreign persona.
    assert_eq!(persona_of(&sys.kernel, tid).unwrap(), Persona::Foreign);
}

#[test]
fn psynch_traps_park_and_wake_threads() {
    let mut sys = booted();
    let (_, t1) = launch_ios(&mut sys);
    let t2 = sys.kernel.spawn_thread(t1).unwrap();

    const MUTEX: i64 = 0xA000;
    let wait_nr = XnuTrap::Unix(XnuSyscall::PsynchMutexwait).encode();
    let drop_nr = XnuTrap::Unix(XnuSyscall::PsynchMutexdrop).encode();
    let args = SyscallArgs::regs([MUTEX, 0, 0, 0, 0, 0, 0]);

    // t1 acquires; t2 blocks.
    let r = sys.trap(t1, wait_nr, &args);
    assert!(!r.flags.carry);
    let r = sys.trap(t2, wait_nr, &args);
    assert!(r.flags.carry, "contended: EAGAIN via carry");
    assert!(matches!(
        sys.kernel.thread(t2).unwrap().state,
        cider_kernel::process::ThreadState::Blocked(_)
    ));

    // t1 drops: ownership hands off and t2 wakes.
    let r = sys.trap(t1, drop_nr, &args);
    assert!(!r.flags.carry);
    assert_eq!(
        sys.kernel.thread(t2).unwrap().state,
        cider_kernel::process::ThreadState::Runnable
    );
    cider_core::with_state(&mut sys.kernel, |_, st| {
        assert_eq!(
            st.psynch.mutex_owner(MUTEX as u64),
            Some(cider_xnu::ForeignThread(t2.as_raw() as u64))
        );
    });
}
