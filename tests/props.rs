//! Property-based tests over the core invariants: Mach port-right
//! conservation under arbitrary operation sequences, VFS consistency,
//! serialisation round trips, and parser robustness on arbitrary bytes.

use bytes::Bytes;
use cider_abi::ids::PortName;
use cider_abi::rights::ReceiveRight;
use cider_apps::vm::{assemble, disassemble, Insn};
use cider_core::wire;
use cider_ducttape::adapter::{DuctTape, DuctTapeState};
use cider_kernel::kernel::Kernel;
use cider_kernel::profile::DeviceProfile;
use cider_kernel::vfs::Vfs;
use cider_loader::{Elf, MachO};
use cider_xnu::ipc::{
    MachIpc, PortDescriptor, PortDisposition, SpaceId, UserMessage,
};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Mach IPC: port-right conservation.
// ----------------------------------------------------------------------

/// Abstract IPC operations; indices are taken modulo the live sets so
/// every generated sequence is executable.
#[derive(Debug, Clone)]
enum IpcOp {
    AllocatePort {
        space: u8,
    },
    MakeSend {
        space: u8,
        pick: u8,
    },
    CopySend {
        from: u8,
        pick: u8,
        to: u8,
    },
    Deallocate {
        space: u8,
        pick: u8,
    },
    DestroyReceive {
        space: u8,
        pick: u8,
    },
    Send {
        space: u8,
        pick: u8,
        with_reply: bool,
        carry_right: bool,
    },
    Receive {
        space: u8,
        pick: u8,
    },
}

fn ipc_op_strategy() -> impl Strategy<Value = IpcOp> {
    prop_oneof![
        (any::<u8>()).prop_map(|space| IpcOp::AllocatePort { space }),
        (any::<u8>(), any::<u8>())
            .prop_map(|(space, pick)| IpcOp::MakeSend { space, pick }),
        (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(from, pick, to)| IpcOp::CopySend { from, pick, to }),
        (any::<u8>(), any::<u8>())
            .prop_map(|(space, pick)| IpcOp::Deallocate { space, pick }),
        (any::<u8>(), any::<u8>())
            .prop_map(|(space, pick)| IpcOp::DestroyReceive { space, pick }),
        (any::<u8>(), any::<u8>(), any::<bool>(), any::<bool>()).prop_map(
            |(space, pick, with_reply, carry_right)| IpcOp::Send {
                space,
                pick,
                with_reply,
                carry_right,
            }
        ),
        (any::<u8>(), any::<u8>())
            .prop_map(|(space, pick)| IpcOp::Receive { space, pick }),
    ]
}

fn pick_name(
    ipc: &MachIpc,
    space: SpaceId,
    pick: u8,
    want_recv: bool,
) -> Option<PortName> {
    // Enumerate names via the space's public iterator.
    let names: Vec<PortName> = ipc
        .space_names(space)
        .into_iter()
        .filter(|(_, right)| {
            if want_recv {
                *right == cider_xnu::ipc::RightType::Receive
            } else {
                matches!(
                    right,
                    cider_xnu::ipc::RightType::Send
                        | cider_xnu::ipc::RightType::SendOnce
                )
            }
        })
        .map(|(n, _)| n)
        .collect();
    if names.is_empty() {
        return None;
    }
    Some(names[pick as usize % names.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mach_port_rights_are_conserved(ops in prop::collection::vec(ipc_op_strategy(), 1..60)) {
        let mut k = Kernel::boot(DeviceProfile::nexus7());
        let (_, tid) = k.spawn_process();
        let mut st = DuctTapeState::new();
        let mut ipc = MachIpc::new();
        {
            let mut api = DuctTape::new(&mut k, &mut st, tid);
            ipc.bootstrap(&mut api);
        }
        let spaces: Vec<SpaceId> = (0..3).map(|_| ipc.create_space()).collect();
        let sp = |i: u8| spaces[i as usize % spaces.len()];

        for op in ops {
            let mut api = DuctTape::new(&mut k, &mut st, tid);
            match op {
                IpcOp::AllocatePort { space } => {
                    let _ = ipc.alloc_receive(&mut api, sp(space));
                }
                IpcOp::MakeSend { space, pick } => {
                    if let Some(n) = pick_name(&ipc, sp(space), pick, true) {
                        if let Ok(recv) = ipc.receive_right(sp(space), n) {
                            let _ = ipc.insert_send(sp(space), recv);
                        }
                    }
                }
                IpcOp::CopySend { from, pick, to } => {
                    if let Some(n) = pick_name(&ipc, sp(from), pick, false) {
                        // `pick_name` may yield a send-once right, which
                        // `send_right` correctly refuses to validate.
                        if let Ok(send) = ipc.send_right(sp(from), n) {
                            let _ = ipc.copy_send(sp(from), send, sp(to));
                        }
                    }
                }
                IpcOp::Deallocate { space, pick } => {
                    if let Some(n) = pick_name(&ipc, sp(space), pick, false) {
                        let _ = ipc.port_deallocate(&mut api, sp(space), n);
                    }
                }
                IpcOp::DestroyReceive { space, pick } => {
                    if let Some(n) = pick_name(&ipc, sp(space), pick, true) {
                        let _ = ipc.port_destroy(&mut api, sp(space), n);
                    }
                }
                IpcOp::Send { space, pick, with_reply, carry_right } => {
                    if let Some(dest) = pick_name(&ipc, sp(space), pick, false) {
                        let mut msg = UserMessage::simple(
                            dest,
                            1,
                            Bytes::from(&b"p"[..]),
                        );
                        if with_reply {
                            if let Some(r) =
                                pick_name(&ipc, sp(space), pick, true)
                            {
                                msg.local_port = r;
                            }
                        }
                        if carry_right {
                            if let Some(r) =
                                pick_name(&ipc, sp(space), pick.wrapping_add(1), true)
                            {
                                msg.ports.push(PortDescriptor {
                                    name: r,
                                    disposition: PortDisposition::MakeSend,
                                });
                            }
                        }
                        let _ = ipc.send(&mut api, sp(space), msg);
                    }
                }
                IpcOp::Receive { space, pick } => {
                    if let Some(n) = pick_name(&ipc, sp(space), pick, true) {
                        let _ = ipc.receive(
                            &mut api,
                            sp(space),
                            ReceiveRight::from_name(n),
                        );
                    }
                }
            }
            // The invariant holds after *every* operation.
            ipc.check_invariants();
        }
    }
}

// ----------------------------------------------------------------------
// IPC v2: the lock-free queue is pinned to a reference VecDeque model,
// and OOL payloads survive both the page-remap path and the copy
// fallback bit for bit.
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum QueueOp {
    Enqueue { stamp: u64 },
    EnqueueTail,
    Dequeue,
}

fn queue_op_strategy() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        (0u64..64).prop_map(|stamp| QueueOp::Enqueue { stamp }),
        Just(QueueOp::EnqueueTail),
        Just(QueueOp::Dequeue),
    ]
}

proptest! {
    /// Reference model: stable insertion sorted by stamp (each new claim
    /// takes the largest sequence number, so it lands after every entry
    /// with an equal-or-smaller stamp), FIFO pop — exactly the
    /// `(stamp, seq)` delivery rule the lock-free queue guarantees.
    #[test]
    fn lockfree_queue_matches_vecdeque_model(
        ops in prop::collection::vec(queue_op_strategy(), 1..80)
    ) {
        use cider_xnu::ipc::LockFreeQueue;
        use std::collections::VecDeque;

        let mut q: LockFreeQueue<u32> = LockFreeQueue::new();
        let mut model: VecDeque<(u64, u32)> = VecDeque::new();
        let mut next_item = 0u32;
        for op in ops {
            match op {
                QueueOp::Enqueue { stamp } => {
                    q.enqueue(stamp, next_item);
                    let at = model
                        .iter()
                        .rposition(|&(s, _)| s <= stamp)
                        .map(|i| i + 1)
                        .unwrap_or(0);
                    model.insert(at, (stamp, next_item));
                    next_item += 1;
                }
                QueueOp::EnqueueTail => {
                    q.enqueue_tail(next_item);
                    let stamp = model.back().map(|&(s, _)| s).unwrap_or(0);
                    model.push_back((stamp, next_item));
                    next_item += 1;
                }
                QueueOp::Dequeue => {
                    prop_assert_eq!(
                        q.dequeue_head(),
                        model.pop_front().map(|(_, v)| v)
                    );
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
            let got: Vec<u32> = q.iter().copied().collect();
            let want: Vec<u32> = model.iter().map(|&(_, v)| v).collect();
            prop_assert_eq!(got, want);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under v2, out-of-line regions round-trip bit-identically whether
    /// the host remaps the pages or refuses and forces the copy
    /// fallback — and the remap accounting matches exactly the
    /// above-threshold bytes.
    #[test]
    fn ool_round_trip_is_bit_identical(
        blobs in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..3 * 4096),
            1..4,
        ),
        body in prop::collection::vec(any::<u8>(), 0..64),
        refuse in any::<bool>(),
    ) {
        use cider_xnu::api::MockForeignKernel;
        use cider_xnu::ipc::OOL_INLINE_THRESHOLD;

        let mut api = MockForeignKernel::new();
        api.refuse_remap = refuse;
        let mut ipc = MachIpc::new();
        ipc.bootstrap(&mut api);
        ipc.set_v2(true);
        let space = ipc.create_space();
        let recv = ipc.alloc_receive(&mut api, space).unwrap();
        let send = ipc.insert_send(space, recv).unwrap();

        let mut msg =
            UserMessage::simple(send.name(), 42, Bytes::from(body.clone()));
        msg.ool = blobs.iter().cloned().map(Bytes::from).collect();
        let large: u64 = blobs
            .iter()
            .filter(|b| b.len() >= OOL_INLINE_THRESHOLD)
            .map(|b| b.len() as u64)
            .sum();
        ipc.send(&mut api, space, msg).unwrap();
        let got = ipc.receive(&mut api, space, recv).unwrap();
        prop_assert_eq!(got.body, Bytes::from(body));
        let got_ool: Vec<Vec<u8>> =
            got.ool.iter().map(|b| b.to_vec()).collect();
        prop_assert_eq!(got_ool, blobs);
        // Every above-threshold byte remaps when the host allows it;
        // none do when it refuses and the copy fallback runs.
        prop_assert_eq!(
            ipc.stats.ool_bytes_remapped,
            if refuse { 0 } else { large }
        );
        ipc.check_invariants();
    }
}

// ----------------------------------------------------------------------
// VFS consistency.
// ----------------------------------------------------------------------

fn path_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-c]{1,3}", 1..4)
        .prop_map(|comps| format!("/{}", comps.join("/")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vfs_write_then_read_is_identity(
        path in path_strategy(),
        data in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut fs = Vfs::new();
        let parent: Vec<&str> =
            path.trim_start_matches('/').split('/').collect();
        if parent.len() > 1 {
            fs.mkdir_p(&format!("/{}", parent[..parent.len() - 1].join("/")))
                .unwrap();
        }
        fs.write_file(&path, data.clone()).unwrap();
        prop_assert_eq!(fs.read_file(&path).unwrap(), data);
        prop_assert!(fs.exists(&path));
        fs.unlink(&path).unwrap();
        prop_assert!(!fs.exists(&path));
    }

    #[test]
    fn vfs_overlay_always_shadows(
        path in path_strategy(),
        lower in prop::collection::vec(any::<u8>(), 1..32),
        upper in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let mut fs = Vfs::new();
        let parent: Vec<&str> =
            path.trim_start_matches('/').split('/').collect();
        if parent.len() > 1 {
            fs.mkdir_p(&format!("/{}", parent[..parent.len() - 1].join("/")))
                .unwrap();
        }
        fs.write_file(&path, lower.clone()).unwrap();
        fs.write_file_overlay(&path, upper.clone()).unwrap();
        let r = fs.resolve(&path).unwrap();
        prop_assert!(r.in_overlay);
        prop_assert_eq!(fs.read_file(&path).unwrap(), upper);
    }
}

// ----------------------------------------------------------------------
// Serialisation round trips and parser robustness.
// ----------------------------------------------------------------------

fn insn_strategy() -> impl Strategy<Value = Insn> {
    let r = any::<u8>().prop_map(|v| v % 32);
    let f = any::<u8>().prop_map(|v| v % 16);
    prop_oneof![
        (r.clone(), any::<i64>()).prop_map(|(d, v)| Insn::ConstI(d, v)),
        (f.clone(), any::<i64>())
            .prop_map(|(d, v)| Insn::ConstF(d, v as f64 / 7.0)),
        (r.clone(), r.clone()).prop_map(|(d, s)| Insn::Move(d, s)),
        (r.clone(), r.clone(), r.clone())
            .prop_map(|(d, a, b)| Insn::Add(d, a, b)),
        (r.clone(), r.clone(), r.clone())
            .prop_map(|(d, a, b)| Insn::Div(d, a, b)),
        (f.clone(), f.clone(), f.clone())
            .prop_map(|(d, a, b)| Insn::FMul(d, a, b)),
        (r.clone(), r.clone(), r.clone())
            .prop_map(|(d, a, b)| Insn::CmpLt(d, a, b)),
        any::<u32>().prop_map(Insn::Jmp),
        (r.clone(), any::<u32>()).prop_map(|(a, t)| Insn::Jz(a, t)),
        r.clone().prop_map(Insn::ArrNew),
        (r.clone(), r.clone()).prop_map(|(d, i)| Insn::ALoad(d, i)),
        r.clone().prop_map(Insn::Halt),
    ]
}

fn user_message_strategy() -> impl Strategy<Value = UserMessage> {
    (
        1u32..1000,
        any::<i32>(),
        prop::collection::vec(any::<u8>(), 0..128),
        prop::collection::vec((1u32..1000, 0u8..6), 0..4),
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..3),
    )
        .prop_map(|(dest, msg_id, body, ports, ool)| {
            let disp = |d: u8| match d {
                0 => PortDisposition::MoveReceive,
                1 => PortDisposition::MoveSend,
                2 => PortDisposition::CopySend,
                3 => PortDisposition::MakeSend,
                4 => PortDisposition::MakeSendOnce,
                _ => PortDisposition::MoveSendOnce,
            };
            UserMessage {
                remote_port: PortName(dest),
                remote_disposition: PortDisposition::CopySend,
                local_port: PortName::NULL,
                local_disposition: PortDisposition::MakeSendOnce,
                msg_id,
                body: Bytes::from(body),
                ports: ports
                    .into_iter()
                    .map(|(n, d)| PortDescriptor {
                        name: PortName(n),
                        disposition: disp(d),
                    })
                    .collect(),
                ool: ool.into_iter().map(Bytes::from).collect(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dex_roundtrip(prog in prop::collection::vec(insn_strategy(), 0..64)) {
        let blob = assemble(&prog);
        prop_assert_eq!(disassemble(&blob).unwrap(), prog);
    }

    #[test]
    fn mach_message_wire_roundtrip(msg in user_message_strategy()) {
        let bytes = wire::encode_user_message(&msg);
        prop_assert_eq!(wire::decode_user_message(&bytes).unwrap(), msg);
    }

    #[test]
    fn parsers_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = MachO::parse(&bytes);
        let _ = Elf::parse(&bytes);
        let _ = disassemble(&bytes);
        let _ = wire::decode_user_message(&bytes);
        let _ = wire::decode_received_message(&bytes);
        let _ = cider_apps::package::Ipa::parse(&bytes);
        let _ = cider_input::events::decode(&bytes);
        let _ = cider_input::events::decode_ios(&bytes);
    }

    #[test]
    fn psynch_mutex_handoff_is_fifo_and_exclusive(
        threads in prop::collection::vec(1u64..6, 2..12)
    ) {
        use cider_xnu::api::{ForeignThread, MockForeignKernel};
        use cider_xnu::psynch::{PsynchOutcome, PsynchState};
        let mut api = MockForeignKernel::new();
        let mut ps = PsynchState::new();
        const M: u64 = 0x9000;

        // Distinct threads contend in order; duplicates skipped.
        let mut waiters: Vec<u64> = Vec::new();
        let mut owner: Option<u64> = None;
        for &t in &threads {
            if owner == Some(t) || waiters.contains(&t) {
                continue;
            }
            api.thread = ForeignThread(t);
            match ps.mutexwait(&mut api, M) {
                PsynchOutcome::Acquired => {
                    prop_assert!(owner.is_none() || owner == Some(t));
                    owner = Some(t);
                }
                PsynchOutcome::Blocked => {
                    prop_assert!(owner.is_some());
                    waiters.push(t);
                }
            }
        }
        // Drain: ownership hands off strictly in FIFO order.
        while let Some(cur) = owner {
            api.thread = ForeignThread(cur);
            ps.mutexdrop(&mut api, M).unwrap();
            owner = ps.mutex_owner(M).map(|t| t.0);
            if let Some(next) = owner {
                prop_assert_eq!(next, waiters.remove(0));
            } else {
                prop_assert!(waiters.is_empty());
            }
        }
    }

    #[test]
    fn gralloc_refcounts_never_leak(
        ops in prop::collection::vec((0u8..3, any::<u8>()), 1..40)
    ) {
        use cider_gfx::gralloc::{BufferId, Gralloc, PixelFormat};
        let mut g = Gralloc::new();
        let mut live: Vec<(BufferId, u32)> = Vec::new(); // (id, refs)
        for (op, pick) in ops {
            match op {
                0 => {
                    let id =
                        g.alloc(4, 4, PixelFormat::Rgba8888).unwrap();
                    live.push((id, 1));
                }
                1 if !live.is_empty() => {
                    let i = pick as usize % live.len();
                    g.retain(live[i].0).unwrap();
                    live[i].1 += 1;
                }
                2 if !live.is_empty() => {
                    let i = pick as usize % live.len();
                    g.release(live[i].0).unwrap();
                    live[i].1 -= 1;
                    if live[i].1 == 0 {
                        let (id, _) = live.remove(i);
                        prop_assert!(g.get(id).is_err(), "freed");
                    }
                }
                _ => {}
            }
            prop_assert_eq!(g.live(), live.len());
        }
        let expected_bytes: u64 = live.len() as u64 * 4 * 4 * 4;
        prop_assert_eq!(g.allocated_bytes, expected_bytes);
    }

    #[test]
    fn vm_programs_never_panic(prog in prop::collection::vec(insn_strategy(), 1..48)) {
        // Arbitrary (even malformed) programs must fault cleanly, never
        // panic or run away.
        let mut k = Kernel::boot(DeviceProfile::nexus7());
        let mut vm = cider_apps::vm::Vm::new();
        let _ = vm.run(&mut k, &prog);
    }

    #[test]
    fn errno_translation_roundtrips(raw in 1i32..150) {
        use cider_abi::errno::{Errno, XnuErrno};
        if let Some(e) = Errno::from_raw(raw) {
            prop_assert_eq!(Errno::from(XnuErrno::from(e)), e);
        }
        if let Some(x) = XnuErrno::from_raw(raw) {
            prop_assert_eq!(XnuErrno::from(Errno::from(x)), x);
        }
    }

    #[test]
    fn signal_translation_roundtrips(raw in 1i32..32) {
        use cider_abi::signal::{Signal, XnuSignal};
        if let Some(s) = Signal::from_raw(raw) {
            let x = s.to_xnu().unwrap();
            prop_assert_eq!(x.to_linux(), Some(s));
        }
        if let Some(x) = XnuSignal::from_raw(raw) {
            if let Some(l) = x.to_linux() {
                prop_assert_eq!(l.to_xnu(), Some(x));
            }
        }
    }
}

// ----------------------------------------------------------------------
// Tracing is virtually free: enabling the trace subsystem must not
// change a single virtual-time measurement or syscall result.
// ----------------------------------------------------------------------

use cider_bench::config::{SystemConfig, TestBed};
use cider_bench::fig5::{self, Micro};

fn traced_micro_strategy() -> impl Strategy<Value = Micro> {
    prop_oneof![
        Just(Micro::NullSyscall),
        Just(Micro::Read),
        Just(Micro::Write),
        Just(Micro::OpenClose),
        Just(Micro::SignalHandler),
        Just(Micro::ForkExit),
        Just(Micro::Pipe),
        (1usize..64).prop_map(Micro::Select),
    ]
}

proptest! {
    #[test]
    fn tracing_never_perturbs_virtual_time(
        ops in prop::collection::vec(traced_micro_strategy(), 1..10),
        ios in any::<bool>(),
    ) {
        let config = if ios {
            SystemConfig::CiderIos
        } else {
            SystemConfig::CiderAndroid
        };
        let mut plain = TestBed::builder(config).build();
        let mut traced = TestBed::builder(config).traced().build();
        let (plain_pid, plain_tid) = plain.spawn_measured().unwrap();
        let (traced_pid, traced_tid) = traced.spawn_measured().unwrap();
        // Always end on a null syscall so the traced bed is guaranteed
        // to have crossed the instrumented trap path at least once.
        for &op in ops.iter().chain([Micro::NullSyscall].iter()) {
            let a = fig5::run_micro(&mut plain, plain_pid, plain_tid, op);
            let b = fig5::run_micro(&mut traced, traced_pid, traced_tid, op);
            prop_assert_eq!(a, b, "{:?} diverged under tracing", op);
        }
        prop_assert_eq!(
            plain.sys.kernel.clock.now_ns(),
            traced.sys.kernel.clock.now_ns()
        );
        // The traced bed really was recording all along.
        let snap = traced.trace_snapshot().unwrap();
        prop_assert!(snap.metrics.counter("kernel/traps") > 0);
        prop_assert!(!snap.events.is_empty());
    }
}

// ----------------------------------------------------------------------
// Personality metadata agrees with actual trap dispatch: whenever
// `translate_syscall` claims a foreign number renumbers to a domestic
// one, both dispatch tables must really hold the handlers and must
// name the same call; whenever it declines, the trap either has no
// installed foreign handler or is implemented by the Cider layer
// itself (psynch, bsdthread, posix_spawn, all Mach-class traps).
// ----------------------------------------------------------------------

use cider_abi::syscall::{MachTrap, XnuSyscall, XnuTrap};
use cider_core::xnu_abi::xnu_to_linux_syscall;
use cider_core::XnuPersonality;
use cider_kernel::dispatch::Personality as _;
use cider_kernel::LinuxPersonality;

fn trap_number_strategy() -> impl Strategy<Value = i64> {
    prop_oneof![
        // The dense region where real Unix-class numbers live.
        0i64..600,
        // Mach-trap encodings (negative numbers).
        (1i64..600).prop_map(|n| -n),
        // Machdep and diag windows.
        (0i64..64).prop_map(|n| 0x8000_0000 + n),
        (0i64..64).prop_map(|n| 0x4000_0000 + n),
        // Anything at all: metadata must never disagree, even on junk.
        any::<i64>(),
    ]
}

proptest! {
    #[test]
    fn translate_syscall_agrees_with_dispatch(raw in trap_number_strategy()) {
        let xnu = XnuPersonality::new();
        let linux = LinuxPersonality::new();
        match xnu.translate_syscall(raw) {
            Some(domestic) => {
                // Claimed translated: the foreign side must dispatch it...
                prop_assert!(
                    matches!(XnuTrap::decode(raw), Some(XnuTrap::Unix(_))),
                    "translate_syscall({raw}) = Some but not a Unix trap"
                );
                let Some(XnuTrap::Unix(call)) = XnuTrap::decode(raw) else {
                    unreachable!()
                };
                let (foreign_name, _) = xnu
                    .unix_table()
                    .lookup(call.number())
                    .expect("translated call has no foreign handler");
                // ...the domestic side must dispatch the target number...
                let (domestic_name, _) = linux
                    .table()
                    .lookup(domestic as i32)
                    .expect("translated call has no domestic handler");
                // ...and both entries must be the same call.
                prop_assert_eq!(foreign_name, domestic_name);
                prop_assert_eq!(
                    xnu_to_linux_syscall(call).map(|l| l.number() as i64),
                    Some(domestic)
                );
            }
            None => {
                // Declined: any installed Unix-class handler must be an
                // XNU-only call with no domestic renumbering.
                if let Some(XnuTrap::Unix(call)) = XnuTrap::decode(raw) {
                    if xnu.unix_table().lookup(call.number()).is_some() {
                        prop_assert!(
                            xnu_to_linux_syscall(call).is_none(),
                            "{raw} dispatches and renumbers yet untranslated"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn every_known_trap_translation_is_consistent() {
    let xnu = XnuPersonality::new();
    let linux = LinuxPersonality::new();
    // Exhaustive over the foreign Unix-class ABI: every translation
    // target dispatches, and every refusal has a structural reason.
    for &call in XnuSyscall::ALL {
        let raw = XnuTrap::Unix(call).encode();
        match xnu.translate_syscall(raw) {
            Some(domestic) => {
                assert!(
                    linux.table().lookup(domestic as i32).is_some(),
                    "{call:?} translates to undispatched {domestic}"
                );
            }
            // Declining is only legitimate when the personality does
            // not dispatch the call (e.g. Sigprocmask renumbers but has
            // no installed handler) or no domestic renumbering exists.
            None => assert!(
                xnu.unix_table().lookup(call.number()).is_none()
                    || xnu_to_linux_syscall(call).is_none(),
                "{call:?} dispatches and renumbers yet declined"
            ),
        }
    }
    // Mach-class traps are implemented by the Cider layer; none may
    // claim a domestic counterpart.
    for &trap in MachTrap::ALL {
        let raw = XnuTrap::Mach(trap).encode();
        assert_eq!(xnu.translate_syscall(raw), None, "{trap:?}");
    }
}

fn probe_number_strategy() -> impl Strategy<Value = i32> {
    prop_oneof![
        // The dense regions the tables actually populate.
        -8i32..600,
        // Arbitrary numbers: the flat arrays must agree with the
        // reference map on junk, negatives, and out-of-range probes.
        any::<i32>(),
    ]
}

proptest! {
    /// The dense flat-array tables answer every probe exactly like a
    /// reference `BTreeMap` built from the same `entries()` — names,
    /// handler presence, and the installed-number census all agree.
    #[test]
    fn dense_lookup_agrees_with_reference_btreemap(
        probe in probe_number_strategy()
    ) {
        let xnu = XnuPersonality::new();
        let linux = LinuxPersonality::new();
        for table in [xnu.unix_table(), xnu.mach_table(), linux.table()] {
            let reference: std::collections::BTreeMap<_, _> =
                table.entries().collect();
            prop_assert_eq!(
                table.lookup(probe).map(|(name, _)| name),
                reference.get(&probe).copied()
            );
            prop_assert_eq!(
                table.name(probe),
                reference.get(&probe).copied()
            );
            prop_assert_eq!(
                table.handler(probe).is_some(),
                reference.contains_key(&probe)
            );
            // Every registered number resolves, with the right name.
            for (&nr, &name) in &reference {
                let (got, _) =
                    table.lookup(nr).expect("registered number resolves");
                prop_assert_eq!(got, name);
            }
            prop_assert_eq!(table.len(), reference.len());
        }
    }
}

// ----------------------------------------------------------------------
// Fault injection: an empty plan is bit-identical to the fault layer
// being absent, and the fault schedule is a pure function of the seed.
// ----------------------------------------------------------------------

use cider_fault::FaultPlan;

proptest! {
    #[test]
    fn empty_fault_plan_is_bit_identical(
        ops in prop::collection::vec(traced_micro_strategy(), 1..10),
        seed in any::<u64>(),
        ios in any::<bool>(),
    ) {
        let config = if ios {
            SystemConfig::CiderIos
        } else {
            SystemConfig::CiderAndroid
        };
        let mut plain = TestBed::builder(config).build();
        let mut armed = TestBed::builder(config).build();
        // A seeded plan with no sites armed: the layer is installed
        // but must be indistinguishable from its absence.
        armed.enable_faults(FaultPlan::new(seed));
        let (plain_pid, plain_tid) = plain.spawn_measured().unwrap();
        let (armed_pid, armed_tid) = armed.spawn_measured().unwrap();
        for &op in &ops {
            let a = fig5::run_micro(&mut plain, plain_pid, plain_tid, op);
            let b = fig5::run_micro(&mut armed, armed_pid, armed_tid, op);
            prop_assert_eq!(a, b, "{:?} diverged under empty plan", op);
        }
        prop_assert_eq!(
            plain.sys.kernel.clock.now_ns(),
            armed.sys.kernel.clock.now_ns()
        );
        prop_assert_eq!(armed.sys.kernel.faults.injected_total(), 0);
    }

    #[test]
    fn same_seed_same_fault_trace(
        ops in prop::collection::vec(traced_micro_strategy(), 1..10),
        seed in any::<u64>(),
        ios in any::<bool>(),
    ) {
        let config = if ios {
            SystemConfig::CiderIos
        } else {
            SystemConfig::CiderAndroid
        };
        let plan = FaultPlan::matrix(seed);
        let mut a = TestBed::builder(config).build();
        let mut b = TestBed::builder(config).build();
        // Spawn fault-free (the matrix can fail exec), then arm.
        let (a_pid, a_tid) = a.spawn_measured().unwrap();
        let (b_pid, b_tid) = b.spawn_measured().unwrap();
        a.enable_faults(plan.clone());
        b.enable_faults(plan);
        for &op in &ops {
            let ra = fig5::run_micro(&mut a, a_pid, a_tid, op);
            let rb = fig5::run_micro(&mut b, b_pid, b_tid, op);
            prop_assert_eq!(ra, rb, "{:?} diverged across replays", op);
        }
        prop_assert_eq!(
            a.sys.kernel.clock.now_ns(),
            b.sys.kernel.clock.now_ns()
        );
        // The fault ledgers — site, sequence number, and virtual
        // timestamp of every injection — must replay exactly.
        prop_assert_eq!(
            a.sys.kernel.faults.ledger(),
            b.sys.kernel.faults.ledger()
        );
    }
}

// ----------------------------------------------------------------------
// Scheduling is deterministic: the context-switch trace — timestamp,
// outgoing thread, incoming thread, in order — is a pure function of
// the scheduler seed and the workload.
// ----------------------------------------------------------------------

use cider_trace::EventKind;

fn ctx_switch_trace(seed: u64, n: usize, ios: bool) -> Vec<(u64, u32, u32)> {
    let config = if ios {
        SystemConfig::CiderIos
    } else {
        SystemConfig::CiderAndroid
    };
    let mut bed = TestBed::builder(config).traced().build();
    bed.sys.kernel.sched.reseed(seed);
    let (pid, tid) = bed.spawn_measured().unwrap();
    fig5::run_micro(&mut bed, pid, tid, Micro::LatCtx(n))
        .expect("lat_ctx runs");
    bed.trace_snapshot()
        .unwrap()
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::ContextSwitch { from, to } => {
                Some((e.ctx.ts_ns, from, to))
            }
            _ => None,
        })
        .collect()
}

proptest! {
    #[test]
    fn same_seed_same_context_switch_trace(
        seed in any::<u64>(),
        n in 2usize..8,
        ios in any::<bool>(),
    ) {
        let a = ctx_switch_trace(seed, n, ios);
        let b = ctx_switch_trace(seed, n, ios);
        prop_assert!(!a.is_empty(), "lat_ctx must context-switch");
        prop_assert_eq!(a, b, "seed {} n {} ios {}", seed, n, ios);
    }
}

/// The CI determinism seeds, pinned so a scheduler change that breaks
/// replay fails loudly on exactly the seeds the workflow runs.
#[test]
fn context_switch_trace_replays_on_ci_seeds() {
    for seed in [11u64, 23, 47] {
        for ios in [false, true] {
            let a = ctx_switch_trace(seed, 4, ios);
            let b = ctx_switch_trace(seed, 4, ios);
            assert!(!a.is_empty(), "seed {seed}: no context switches");
            assert_eq!(a, b, "seed {seed} ios {ios}: trace diverged");
        }
    }
}

// ----------------------------------------------------------------------
// Warm start changes only virtual time, never observable semantics: a
// launch storm on a warm-start bed must produce the same syscall
// results and the same end-of-run kernel state (ids, processes,
// threads, VFS, IPC) as the cold machine. Timing sections (clock,
// scheduler, per-launch durations), fault streams and the warm cache
// record itself are the *intended* deltas and are excluded.
// ----------------------------------------------------------------------

/// Checkpoint sections that must be warm/cold invariant.
const WARM_INVARIANT_SECTIONS: [&str; 5] = [
    "kernel/ids",
    "kernel/procs",
    "kernel/threads",
    "kernel/vfs",
    "kernel/ipc",
];

#[allow(clippy::type_complexity)]
fn launch_observation(
    seed: u64,
    warm: bool,
    launches: usize,
) -> (Vec<String>, Vec<(String, Vec<(String, String)>)>) {
    let builder = TestBed::builder(SystemConfig::CiderIos);
    let builder = if warm { builder.warm_start() } else { builder };
    let mut bed = builder.build();
    bed.sys.kernel.sched.reseed(seed);
    let (_pid, tid) = bed.spawn_measured().unwrap();
    let mut results = Vec::new();
    for _ in 0..launches {
        results.push(
            match cider_bench::lmbench::fork_exec_lat(&mut bed, tid, true) {
                Ok(_) => "ok".to_string(),
                Err(e) => format!("err:{}", e.name()),
            },
        );
    }
    let sections = bed
        .sys
        .kernel
        .ckpt_sections()
        .into_iter()
        .filter(|(name, _)| WARM_INVARIANT_SECTIONS.contains(&name.as_str()))
        .collect();
    (results, sections)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn warm_start_is_observation_identical_to_cold(
        seed in any::<u64>(),
        launches in 1usize..3,
    ) {
        let (cold_res, cold_state) = launch_observation(seed, false, launches);
        let (warm_res, warm_state) = launch_observation(seed, true, launches);
        prop_assert_eq!(cold_res, warm_res, "syscall results diverged");
        prop_assert_eq!(cold_state, warm_state, "kernel state diverged");
    }
}

/// The acceptance seeds, pinned: warm ≡ cold on exactly the seeds the
/// CI fault-matrix and determinism jobs run.
#[test]
fn warm_equals_cold_on_ci_seeds() {
    for seed in [11u64, 23, 47] {
        let (cold_res, cold_state) = launch_observation(seed, false, 2);
        let (warm_res, warm_state) = launch_observation(seed, true, 2);
        assert_eq!(cold_res, warm_res, "seed {seed}: results diverged");
        assert_eq!(cold_state, warm_state, "seed {seed}: state diverged");
        assert!(
            cold_res.iter().all(|r| r == "ok"),
            "seed {seed}: launches failed: {cold_res:?}"
        );
    }
}

// ----------------------------------------------------------------------
// Copy-on-write forks diverge from eager forks only in *when* the PTE
// copies are charged: touching k of the child's n deferred pages costs
// exactly k page copies, and the remaining debt is the exact gap to
// the eager fork's clock.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cow_fork_charges_exactly_the_touched_pages(
        pages in 1u64..6,
        touched in prop::collection::vec(any::<u8>(), 0..12),
    ) {
        use cider_kernel::mm::{MappingKind, Prot, PAGE_SIZE};

        let run = |cow: bool| -> (u64, u64, u64) {
            let mut k = Kernel::boot(DeviceProfile::nexus7());
            k.warm.set_enabled(cow);
            let (pid, tid) = k.spawn_process();
            let base = k
                .process_mut(pid)
                .unwrap()
                .mm
                .map(
                    pages * PAGE_SIZE,
                    Prot::RW,
                    MappingKind::Anonymous,
                    "[heap]",
                )
                .unwrap();
            let before = k.clock.now_ns();
            let (child, ctid) = k.sys_fork(tid).unwrap();
            let fork_ns = k.clock.now_ns() - before;
            let mut materialized = 0;
            for &t in &touched {
                let addr = base + (u64::from(t) % pages) * PAGE_SIZE;
                materialized += k.sys_page_write(ctid, addr).unwrap();
            }
            let debt =
                k.process(child).unwrap().mm.cow_pending_ptes();
            (fork_ns, materialized, debt)
        };

        let (eager_ns, eager_mat, eager_debt) = run(false);
        let (cow_ns, cow_mat, cow_debt) = run(true);
        let pte = DeviceProfile::nexus7().pte_copy_ns;
        let distinct = {
            let mut seen: Vec<u64> = touched
                .iter()
                .map(|&t| u64::from(t) % pages)
                .collect();
            seen.sort_unstable();
            seen.dedup();
            seen.len() as u64
        };

        // Eager: every PTE is copied at fork, writes are free.
        prop_assert_eq!(eager_mat, 0);
        prop_assert_eq!(eager_debt, 0);
        // CoW: the fork is cheaper by exactly the deferred copies, and
        // each distinct touched page materializes exactly one PTE.
        prop_assert_eq!(cow_mat, distinct);
        prop_assert_eq!(cow_debt, pages - distinct);
        prop_assert_eq!(eager_ns - cow_ns, pages * pte);
    }
}

// ----------------------------------------------------------------------
// App lifecycle: the state machine takes exactly the transitions
// `AppLifecycle::legal` admits for any seeded event stream — an
// illegal event leaves the state, the transition count, and the
// memorystatus band untouched — and jetsam under a fixed pressure
// schedule is byte-identical across runs and fleet host-thread counts.
// ----------------------------------------------------------------------

use cider_abi::memorystatus::{AppState, LifecycleEvent};
use cider_frameworks::AppLifecycle;

fn lifecycle_event_strategy() -> impl Strategy<Value = LifecycleEvent> {
    (0usize..LifecycleEvent::ALL.len()).prop_map(|i| LifecycleEvent::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lifecycle_takes_only_legal_transitions(
        events in prop::collection::vec(lifecycle_event_strategy(), 1..48)
    ) {
        let mut k = Kernel::boot(DeviceProfile::nexus7());
        let (pid, _tid) = k.spawn_process();
        let mut app = AppLifecycle::attach(&mut k, pid);
        prop_assert_eq!(app.state(), AppState::Launching);
        let mut taken = 0u64;
        for ev in events {
            let before = app.state();
            let band_before = k.memorystatus.band(pid);
            match AppLifecycle::legal(before, ev) {
                Some(next) => {
                    prop_assert_eq!(app.apply(&mut k, ev), Ok(next));
                    prop_assert_eq!(app.state(), next);
                    taken += 1;
                    // A legal transition re-bands the process (a
                    // jetsammed process is gone from memorystatus, so
                    // its band stays wherever exit left it).
                    if next != AppState::Jetsammed {
                        prop_assert_eq!(
                            k.memorystatus.band(pid),
                            Some(next.jetsam_band())
                        );
                    }
                }
                None => {
                    let err = app.apply(&mut k, ev).unwrap_err();
                    prop_assert_eq!(err.state, before);
                    prop_assert_eq!(err.event, ev);
                    // Rejected: nothing moved.
                    prop_assert_eq!(app.state(), before);
                    prop_assert_eq!(k.memorystatus.band(pid), band_before);
                }
            }
            prop_assert_eq!(app.transitions, taken);
        }
    }
}

/// Jetsam under the scenario's fixed watermark pressure is
/// byte-identical across runs and across fleet host-thread counts, on
/// exactly the seeds the CI determinism jobs run.
#[test]
fn jetsam_pressure_is_byte_identical_across_runs_and_threads() {
    use cider_fleet::{run_fleet, FleetSpec, PersonaMix, Workload};
    for seed in [11u64, 23, 47] {
        let spec = |threads: usize| {
            FleetSpec::new(4, seed, Workload::AppLifecycle { cycles: 2 })
                .mix(PersonaMix::EVEN)
                .host_threads(threads)
        };
        let once = run_fleet(&spec(1));
        let again = run_fleet(&spec(1));
        let wide = run_fleet(&spec(8));
        assert_eq!(
            once.fleet_fingerprint(),
            again.fleet_fingerprint(),
            "seed {seed}: jetsam replay diverged across runs"
        );
        assert_eq!(
            once.fleet_fingerprint(),
            wide.fleet_fingerprint(),
            "seed {seed}: jetsam replay diverged across host threads"
        );
        for r in &once.results {
            assert_eq!(
                r.units_completed, 2,
                "seed {seed} device {}: lifecycle cycles failed",
                r.device_id
            );
            assert!(
                r.kernel_metrics.counter("app/jetsam_kill") > 0,
                "seed {seed} device {}: no jetsam kills",
                r.device_id
            );
        }
    }
}
