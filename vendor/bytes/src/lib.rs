//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny subset of `bytes` it actually uses: [`Bytes`], a
//! cheaply cloneable, immutable, contiguous byte container. Reference
//! counting uses `Arc`, matching the real crate, so values holding
//! `Bytes` stay `Send` and whole simulated devices can migrate across
//! fleet worker threads.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty byte string.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Borrows the contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(&[1u8, 2, 3][..]);
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![7; 128]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_slice(), b.as_slice()));
    }

    #[test]
    fn deref_gives_slice_apis() {
        let a = Bytes::from(&b"hello"[..]);
        assert_eq!(&a[1..3], b"el");
        assert_eq!(String::from_utf8_lossy(&a), "hello");
    }

    #[test]
    fn debug_escapes() {
        let a = Bytes::from(&b"a\"\x01"[..]);
        assert_eq!(format!("{a:?}"), "b\"a\\\"\\x01\"");
    }
}
