//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal walltime benchmark harness with the API subset the
//! Cider benches use: [`Criterion`], `benchmark_group`, `bench_function`,
//! `Bencher::iter`, and `final_summary`. Results print as
//! `group/name  median  (min .. max)` per-iteration times. There is no
//! statistical analysis, plotting, or baseline comparison.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Target measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Applies command-line settings (only a name substring filter is
    /// supported: any bare trailing argument).
    pub fn configure_from_args(mut self) -> Criterion {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                s if s.starts_with("--") => {
                    // Unknown criterion flag: skip it and its value when
                    // one follows in `--flag value` form.
                    if !s.contains('=') {
                        let _ = it.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        self.run_one(&name, f);
        self
    }

    /// Prints the closing summary line.
    pub fn final_summary(&mut self) {
        println!("(vendored criterion: walltime medians, no analysis)");
    }

    fn run_one<F>(&self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        let mut ns: Vec<f64> = b.samples;
        if ns.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        ns.sort_by(|a, b| a.total_cmp(b));
        let median = ns[ns.len() / 2];
        println!(
            "{name:<60} {:>12} ({} .. {})",
            format_ns(median),
            format_ns(ns[0]),
            format_ns(ns[ns.len() - 1]),
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; collects timing samples.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `f`, auto-scaling iterations per sample so each sample is
    /// long enough to measure.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up: run until the warm-up budget elapses, and estimate
        // the per-iteration cost while doing so.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter_ns = (warm_start.elapsed().as_nanos() as f64
            / warm_iters.max(1) as f64)
            .max(1.0);

        // Pick iterations per sample so the whole measurement roughly
        // fits the measurement budget.
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let iters = ((budget_ns / self.sample_size as f64) / per_iter_ns)
            .clamp(1.0, 1e7) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3))
    }

    #[test]
    fn bench_runs_and_collects_samples() {
        let mut c = fast();
        let mut group = c.benchmark_group("g");
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = fast();
        c.filter = Some("nomatch".into());
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn format_scales() {
        assert_eq!(format_ns(12.0), "12.0ns");
        assert_eq!(format_ns(1500.0), "1.500us");
        assert_eq!(format_ns(2.5e6), "2.500ms");
        assert_eq!(format_ns(3.0e9), "3.000s");
    }
}
