//! `any::<T>()` — whole-domain strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII with a sprinkling of wider code points, always
        // valid chars.
        match rng.below(10) {
            0 => char::from_u32(0x80 + rng.next_u32() % 0x700)
                .unwrap_or('\u{fffd}'),
            _ => (0x20 + rng.below(0x5f) as u8) as char,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = rng.range_inclusive(0, 40) as i32 - 20;
        let sign = if rng.bool() { 1.0 } else { -1.0 };
        sign * mantissa * 2f64.powi(exp)
    }
}

macro_rules! tuple_arbitrary {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

tuple_arbitrary!(A);
tuple_arbitrary!(A, B);
tuple_arbitrary!(A, B, C);
tuple_arbitrary!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::new(11);
        let s = any::<u8>();
        let vals: Vec<u8> = (0..64).map(|_| s.generate(&mut rng)).collect();
        let distinct: std::collections::BTreeSet<_> = vals.iter().collect();
        assert!(distinct.len() > 16, "{distinct:?}");
    }

    #[test]
    fn floats_are_finite() {
        let mut rng = TestRng::new(12);
        for _ in 0..100 {
            assert!(f64::arbitrary(&mut rng).is_finite());
        }
    }

    #[test]
    fn chars_are_valid() {
        let mut rng = TestRng::new(13);
        for _ in 0..100 {
            let c = char::arbitrary(&mut rng);
            let mut buf = [0u8; 4];
            c.encode_utf8(&mut buf);
        }
    }
}
