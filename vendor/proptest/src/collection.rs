//! Collection strategies: `vec` and size ranges.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// An inclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length.
    pub lo: usize,
    /// Maximum length (inclusive).
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy and length range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_inclusive(self.size.lo as u64, self.size.hi as u64)
            as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(
    element: S,
    size: impl Into<SizeRange>,
) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::new(21);
        let s = vec(0u8..5, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn fixed_size_from_usize() {
        let mut rng = TestRng::new(22);
        let s = vec(0u32..10, 3);
        assert_eq!(s.generate(&mut rng).len(), 3);
    }
}
