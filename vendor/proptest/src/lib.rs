//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, fully deterministic property-testing harness with the
//! same surface the repository's property tests use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`, `any::<T>()`, integer-range and
//! tuple strategies, `prop::collection::vec`, simple regex string
//! strategies (character classes with `{m,n}` repetition), `prop_oneof!`,
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! - Generation is seeded from the test name, so every run of every test
//!   sees the same case sequence (the repository's determinism invariant
//!   extends to its test suite).
//! - There is no shrinking; a failing case prints its inputs verbatim.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::Strategy;

/// Defines property tests.
///
/// Supported grammar (the subset of real proptest used here):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::Config::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(
                    config,
                    stringify!($name),
                );
                // Build each strategy once; generate per case.
                $(let $arg = &($strat);)+
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for_case(case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            $arg, &mut rng,
                        );
                    )+
                    let repr = || {
                        let mut s = String::new();
                        $(
                            s.push_str(&format!(
                                "  {} = {:?}\n", stringify!($arg), $arg,
                            ));
                        )+
                        s
                    };
                    let repr = repr();
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest {}: case {}/{} failed with inputs:\n{}",
                            stringify!($name),
                            case + 1,
                            runner.cases(),
                            repr,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Chooses uniformly among several strategies producing the same value
/// type. Weighted arms (`weight => strategy`) are accepted and the weights
/// honoured.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
