//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::Config as ProptestConfig;
pub use crate::{
    prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
};

/// The `prop::` module path used by `prop::collection::vec` etc.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}
