//! Deterministic pseudo-random generation (SplitMix64).

/// A small, fast, deterministic RNG. Not cryptographic; exactly what a
/// reproducible test harness wants.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            // Avoid the all-zero fixpoint-ish start; SplitMix64 handles
            // any seed, but mixing in a constant spreads nearby seeds.
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded generation (Lemire); bias is negligible
        // for test-case generation and the method is branch-free.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]` (as u64 arithmetic
    /// over an offset, so callers handle signed types by biasing).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// A random bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Hashes a string to a seed (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = TestRng::new(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.range_inclusive(0, 2) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn name_seeds_differ() {
        assert_ne!(seed_from_name("a"), seed_from_name("b"));
    }
}
