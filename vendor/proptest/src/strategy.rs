//! The [`Strategy`] trait and combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::rng::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until the predicate holds (up
    /// to a bounded number of attempts).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Allows `&S` wherever a strategy is expected.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Uniform (or weighted) choice among strategies of one value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: Debug> Union<T> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight arithmetic covers the full range")
    }
}

// ----------------------------------------------------------------------
// Integer / primitive range strategies.
// ----------------------------------------------------------------------

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_inclusive(
                    self.start as u64,
                    (self.end - 1) as u64,
                ) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_inclusive(
                    *self.start() as u64,
                    *self.end() as u64,
                ) as $t
            }
        }
    )*};
}

unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Bias into unsigned space to span negative ranges.
                const BIAS: u64 = 1 << (<$t>::BITS - 1);
                let lo = (self.start as i64 as u64).wrapping_add(BIAS);
                let hi = ((self.end - 1) as i64 as u64).wrapping_add(BIAS);
                (rng.range_inclusive(lo, hi).wrapping_sub(BIAS)) as i64 as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                const BIAS: u64 = 1 << (<$t>::BITS - 1);
                let lo = (*self.start() as i64 as u64).wrapping_add(BIAS);
                let hi = (*self.end() as i64 as u64).wrapping_add(BIAS);
                (rng.range_inclusive(lo, hi).wrapping_sub(BIAS)) as i64 as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

// ----------------------------------------------------------------------
// Tuple strategies.
// ----------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-5i32..6).generate(&mut rng);
            assert!((-5..6).contains(&s));
            let i = (1u64..=3).generate(&mut rng);
            assert!((1..=3).contains(&i));
        }
    }

    #[test]
    fn map_and_union() {
        let mut rng = TestRng::new(2);
        let s = Union::new(vec![
            (0u8..1).prop_map(|_| "lo").boxed(),
            (0u8..1).prop_map(|_| "hi").boxed(),
        ]);
        let mut saw = (false, false);
        for _ in 0..100 {
            match s.generate(&mut rng) {
                "lo" => saw.0 = true,
                _ => saw.1 = true,
            }
        }
        assert_eq!(saw, (true, true));
    }

    #[test]
    fn just_clones() {
        let mut rng = TestRng::new(3);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::new(4);
        for _ in 0..100 {
            let v = (0u8..10)
                .prop_filter("even", |v| v % 2 == 0)
                .generate(&mut rng);
            assert_eq!(v % 2, 0);
        }
    }
}
