//! String strategies from a small regex subset.
//!
//! A `&str` used as a strategy is interpreted as a pattern made of
//! literal characters and character classes (`[a-c0-9_]`), each followed
//! by an optional `{n}` or `{m,n}` repetition. This covers the patterns
//! the repository's property tests use (e.g. `"[a-c]{1,3}"`); anything
//! fancier panics with a clear message rather than silently generating
//! the wrong language.

use crate::rng::TestRng;
use crate::strategy::Strategy;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// A compiled string pattern.
#[derive(Debug, Clone)]
pub struct StringPattern {
    pieces: Vec<Piece>,
}

fn parse(pattern: &str) -> StringPattern {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom =
            match c {
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = chars.next().unwrap_or_else(|| {
                            panic!("unterminated class in {pattern:?}")
                        });
                        if lo == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars.next().unwrap_or_else(|| {
                                panic!("unterminated range in {pattern:?}")
                            });
                            assert!(
                                lo <= hi,
                                "inverted range {lo}-{hi} in {pattern:?}"
                            );
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    assert!(!ranges.is_empty(), "empty class in {pattern:?}");
                    Atom::Class(ranges)
                }
                '\\' => Atom::Literal(chars.next().unwrap_or_else(|| {
                    panic!("dangling escape in {pattern:?}")
                })),
                '(' | ')' | '|' | '*' | '+' | '?' | '.' => panic!(
                    "unsupported regex construct {c:?} in {pattern:?} \
                 (the vendored proptest supports classes and literals \
                 with {{m,n}} repetition only)"
                ),
                c => Atom::Literal(c),
            };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for r in chars.by_ref() {
                if r == '}' {
                    break;
                }
                spec.push(r);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repeat min"),
                    n.trim().parse().expect("repeat max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    StringPattern { pieces }
}

impl StringPattern {
    fn generate_into(&self, rng: &mut TestRng, out: &mut String) {
        for piece in &self.pieces {
            let n = rng.range_inclusive(piece.min as u64, piece.max as u64);
            for _ in 0..n {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let span = (*hi as u64) - (*lo as u64) + 1;
                            if pick < span {
                                let c =
                                    char::from_u32(*lo as u32 + pick as u32)
                                        .expect(
                                            "class range yields valid chars",
                                        );
                                out.push(c);
                                break;
                            }
                            pick -= span;
                        }
                    }
                }
            }
        }
    }
}

impl Strategy for StringPattern {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        self.generate_into(rng, &mut out);
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Compiling per call keeps the API identical to real proptest
        // (where `&str` itself is a strategy); patterns here are tiny.
        parse(self).generate(rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::new(31);
        for _ in 0..200 {
            let s = "[a-c]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literals_and_multi_range_classes() {
        let mut rng = TestRng::new(32);
        let s = "x[0-9a-f]{2}y".generate(&mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with('x') && s.ends_with('y'));
        assert!(s[1..3]
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_uppercase()));
    }

    #[test]
    fn exact_count() {
        let mut rng = TestRng::new(33);
        assert_eq!("[ab]{4}".generate(&mut rng).len(), 4);
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn alternation_rejected() {
        let mut rng = TestRng::new(34);
        let _ = "a|b".generate(&mut rng);
    }
}
