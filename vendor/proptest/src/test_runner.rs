//! Test configuration and the per-test runner.

use crate::rng::{seed_from_name, TestRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// Drives one property test: owns the config and derives a deterministic
/// RNG per case from the test's name.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
    base_seed: u64,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: Config, test_name: &str) -> TestRunner {
        TestRunner {
            base_seed: seed_from_name(test_name),
            config,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// RNG for one case; derived, not sequential, so inserting cases
    /// never perturbs later ones.
    pub fn rng_for_case(&self, case: u32) -> TestRng {
        TestRng::new(
            self.base_seed ^ (case as u64).wrapping_mul(0xa076_1d64_78bd_642f),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rngs_are_stable_and_distinct() {
        let r = TestRunner::new(Config::with_cases(8), "demo");
        let a1 = r.rng_for_case(0).next_u64();
        let a2 = r.rng_for_case(0).next_u64();
        let b = r.rng_for_case(1).next_u64();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn default_cases() {
        assert_eq!(Config::default().cases, 256);
        assert_eq!(Config::with_cases(9).cases, 9);
    }
}
